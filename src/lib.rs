//! Umbrella crate re-exporting the whole RCR workspace.
//!
//! See the README for an architecture overview. Most users should depend
//! on the individual crates; this facade exists for the examples and
//! integration tests.
//!
//! # Example
//!
//! The relaxation chain in three lines: a nonconvex rank objective,
//! relaxed to a trace objective, solved as an SDP (the paper's
//! Eqs. 8–10):
//!
//! ```
//! use rcr::convex::rankmin::{synth_low_rank_plus_diag, trace_min_decompose};
//! use rcr::convex::sdp::SdpSettings;
//! use rcr::linalg::Matrix;
//!
//! # fn main() -> Result<(), rcr::convex::ConvexError> {
//! let v = Matrix::from_rows(&[&[1.0], &[2.0], &[-1.0]]).expect("literal");
//! let r_s = synth_low_rank_plus_diag(&v, &[0.5, 0.3, 0.4])?;
//! let result = trace_min_decompose(&r_s, &SdpSettings::default())?;
//! assert_eq!(result.rank, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use rcr_convex as convex;
pub use rcr_core as core;
pub use rcr_linalg as linalg;
pub use rcr_minlp as minlp;
pub use rcr_nn as nn;
pub use rcr_numerics as numerics;
pub use rcr_pso as pso;
pub use rcr_qos as qos;
pub use rcr_runtime as runtime;
pub use rcr_scenarios as scenarios;
pub use rcr_serve as serve;
pub use rcr_signal as signal;
pub use rcr_verify as verify;
