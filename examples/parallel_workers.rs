//! The deterministic-parallelism contract, end to end.
//!
//! ```sh
//! cargo run --release --example parallel_workers
//! RCR_WORKERS=4 cargo run --release --example parallel_workers
//! ```
//!
//! Runs the three parallel seams — PSO particle evaluation, the
//! IBP/CROWN verifier sweeps, and batched RRA candidate scoring — and
//! prints the results as exact bit patterns. The output must be
//! byte-for-byte identical for every worker count (`RCR_WORKERS` or the
//! per-call `workers` fields): parallelism is a throughput knob, never a
//! results knob.

use rcr::linalg::Matrix;
use rcr::pso::swarm::{PsoSettings, Swarm};
use rcr::qos::workload::{Scenario, ScenarioConfig};
use rcr::runtime::resolve_workers;
use rcr::verify::bounds::interval_bounds_parallel;
use rcr::verify::crown::crown_output_bounds_parallel;
use rcr::verify::net::AffineReluNet;

/// Deterministic pseudo-random weights (splitmix64 folded to [-1, 1]).
fn weights(n: usize, mut state: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = resolve_workers(0);
    println!("effective workers: {workers} (set RCR_WORKERS to change)");

    // --- 1. PSO: per-particle RNG streams make the swarm trajectory
    // independent of how particles are spread over threads.
    let rastrigin = |x: &[f64]| {
        10.0 * x.len() as f64
            + x.iter()
                .map(|&v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
                .sum::<f64>()
    };
    let settings = PsoSettings {
        swarm_size: 24,
        max_iter: 80,
        seed: 7,
        workers: 0, // auto: RCR_WORKERS, else serial
        ..Default::default()
    };
    let run = Swarm::minimize(rastrigin, &[(-5.12, 5.12); 6], &settings)?;
    println!(
        "pso     best {:+.6e}  bits {:016x}  evals {}",
        run.best_value,
        run.best_value.to_bits(),
        run.evaluations
    );

    // --- 2. Verification: output-node and row sweeps fan out.
    let net = AffineReluNet::new(vec![
        (Matrix::from_vec(16, 4, weights(64, 1))?, weights(16, 2)),
        (Matrix::from_vec(8, 16, weights(128, 3))?, weights(8, 4)),
    ])?;
    let input_box = [(-0.5, 0.5); 4];
    let ibp = interval_bounds_parallel(&net, &input_box, workers)?;
    let crown = crown_output_bounds_parallel(&net, &input_box, workers)?;
    let (ilo, ihi) = ibp.output()[0];
    println!(
        "ibp     out0 [{ilo:+.6}, {ihi:+.6}]  bits {:016x}/{:016x}",
        ilo.to_bits(),
        ihi.to_bits()
    );
    let (clo, chi) = crown[0];
    println!(
        "crown   out0 [{clo:+.6}, {chi:+.6}]  bits {:016x}/{:016x}",
        clo.to_bits(),
        chi.to_bits()
    );

    // --- 3. QoS: batched candidate scoring through the BatchSolve seam.
    let scenario = Scenario::generate(
        &ScenarioConfig {
            users: 4,
            resource_blocks: 8,
            ..Default::default()
        },
        2026,
    )?;
    let candidates: Vec<Vec<usize>> = (0..6)
        .map(|s| (0..8).map(|k| (k + s) % 4).collect())
        .collect();
    for (i, result) in scenario
        .rra
        .evaluate_batch(&candidates, 0)
        .iter()
        .enumerate()
    {
        let sol = result.as_ref().map_err(|e| e.to_string())?;
        println!(
            "rra #{i}  rate {:>9.3} Mb/s  bits {:016x}  qos {}",
            sol.total_rate_bps / 1e6,
            sol.total_rate_bps.to_bits(),
            if sol.qos_satisfied { "ok" } else { "violated" }
        );
    }

    Ok(())
}
