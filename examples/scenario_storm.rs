//! Diurnal-storm scenario demo: replay the committed 100k-request,
//! million-user manifest against a live service and print the per-class
//! report — the workload behind EXPERIMENTS.md E17.
//!
//! The committed run manifest pins the trace with a 128-bit digest, so
//! the first thing this example does is *prove the replay*: regenerate
//! the trace from the spec and check the digest bit-for-bit. Then the
//! trace is offered open-loop at 2× virtual speed — a million distinct
//! users means no solution reuse, so the wave crest lands far past the
//! cold-solve capacity and the lanes show their priority order starkly:
//! what little the service can solve goes to URLLC, eMBB expires in
//! queue, and mMTC is mostly bounced at admission before it can waste
//! queue space it would never survive.
//!
//! ```sh
//! cargo run --release --example scenario_storm
//! ```

use rcr::scenarios::{run_scenario, trace_digest, LoadMode, RunManifest};
use rcr::serve::ServiceConfig;

const COMMITTED: &str = include_str!("../crates/scenarios/manifests/diurnal_storm.json");
const SPEED: f64 = 2.0;

fn main() {
    let run = RunManifest::parse(COMMITTED.trim()).expect("committed manifest parses");
    let manifest = &run.manifest;
    println!(
        "scenario {:?}: {} requests, {} users across {} cells",
        manifest.name, manifest.requests, manifest.population, manifest.cells
    );

    let digest = trace_digest(manifest).expect("valid manifest");
    assert_eq!(
        digest, run.trace_digest,
        "replay contract broken: regenerated trace digest differs from the committed one"
    );
    println!("trace digest {digest} — replay verified");

    let report = run_scenario(
        manifest,
        ServiceConfig::default(),
        LoadMode::Open { speed: SPEED },
    )
    .expect("load run completes");
    report
        .reconcile(Some(&ServiceConfig::default().queue))
        .expect("harness and service books reconcile");

    println!("offered open-loop at {SPEED}x virtual speed:");
    print!("{}", report.render());
}
