//! The solver as a service: a loopback `rcr-serve` instance under a
//! mixed URLLC/eMBB/mMTC request trace.
//!
//! ```sh
//! cargo run --release --example qos_service
//! ```
//!
//! Spawns the QoS-class-aware service with its TCP frontend on an
//! ephemeral loopback port, drives a 60-request mixed-class trace over
//! the line-delimited JSON protocol from a plain `TcpStream` client,
//! then prints the per-class outcome counters and latency histograms.

use rcr::qos::QosClass;
use rcr::serve::{
    wire, Outcome, Payload, ScenarioSpec, Service, ServiceConfig, SolveRequest, SolverKind,
    TcpFrontend,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = Service::spawn(ServiceConfig::default()).expect("valid policy");
    let frontend = TcpFrontend::bind("127.0.0.1:0", service.client())?;
    println!("service listening on {}", frontend.local_addr());

    // A mixed trace: URLLC requests carry tight-but-feasible deadlines,
    // eMBB/mMTC generous ones; every tenth request is already expired
    // on arrival to show the deadline-miss path.
    let requests: Vec<SolveRequest> = (0..60u64)
        .map(|id| {
            let class = QosClass::ALL[(id % 3) as usize];
            let deadline = if id % 10 == 7 {
                Duration::ZERO
            } else {
                match class {
                    QosClass::Urllc => Duration::from_millis(250),
                    _ => Duration::from_secs(10),
                }
            };
            SolveRequest {
                id,
                class,
                deadline,
                solver: SolverKind::Greedy,
                payload: Payload::Scenario(ScenarioSpec {
                    users: 3,
                    resource_blocks: 6,
                    seed: id + 1,
                }),
            }
        })
        .collect();

    // Pipeline everything over one connection, then read the answers.
    let stream = TcpStream::connect(frontend.local_addr())?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    for request in &requests {
        writer.write_all(wire::encode_request(request)?.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;

    let mut solved = 0u32;
    let mut expired = 0u32;
    for _ in &requests {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let response = wire::parse_response(line.trim_end())?;
        match &response.outcome {
            Outcome::Solved(s) => {
                solved += 1;
                println!(
                    "  #{:<3} {:<5} solved  rate {:>7.2} Mbit/s  batch {}  queue {:?}",
                    response.id,
                    response.class.name(),
                    s.solution.total_rate_bps / 1e6,
                    s.batch_size,
                    response.queue_time,
                );
            }
            Outcome::Expired(miss) => {
                expired += 1;
                println!(
                    "  #{:<3} {:<5} expired ({:?}, late by {:?})",
                    response.id,
                    response.class.name(),
                    miss.phase,
                    miss.late_by,
                );
            }
            other => println!("  #{:<3} {other:?}", response.id),
        }
    }
    println!(
        "\n{solved} solved, {expired} expired out of {} requests",
        requests.len()
    );

    drop(writer);
    drop(reader);
    drop(frontend);
    let snapshot = service.shutdown();
    println!("\n{}", snapshot.render());
    Ok(())
}
