//! Convex relaxation adversarial training and the verifier ladder.
//!
//! ```sh
//! cargo run --release --example robust_verification
//! ```
//!
//! Trains two classifiers — one standard, one hardened with
//! relaxation-guided adversarial examples — and certifies both with the
//! paper's two verifier arms (relaxed: IBP and CROWN; exact:
//! branch-and-bound), plus a certified-radius computation.

use rcr::core::robust::{certify, train_classifier, BlobData, RobustTrainConfig, TrainMode};
use rcr::verify::exact::{certified_radius, BnbSettings};
use rcr::verify::net::Specification;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train_data = BlobData::generate(60, 1);
    let eval_data = BlobData::generate(40, 2);
    let eps = 0.2;

    for mode in [TrainMode::Standard, TrainMode::RelaxationAdversarial] {
        let cfg = RobustTrainConfig {
            mode,
            epochs: 80,
            epsilon: eps,
            seed: 5,
            ..Default::default()
        };
        let mut model = train_classifier(&train_data, &cfg)?;
        let report = certify(&mut model, &eval_data, eps, &BnbSettings::default())?;
        println!("{mode:?} (ε = {eps}):");
        println!(
            "  clean accuracy:      {:.0}%",
            100.0 * report.clean_accuracy
        );
        println!(
            "  verified robust:     IBP {:.0}%  |  CROWN {:.0}%  |  exact {:.0}%",
            100.0 * report.verified_ibp,
            100.0 * report.verified_crown,
            100.0 * report.verified_exact
        );
        println!(
            "  mean relaxation gap: IBP {:.3}  |  CROWN {:.3}",
            report.mean_ibp_gap, report.mean_crown_gap
        );

        // Certified radius around one well-classified point per class.
        let net = model.to_affine_relu()?;
        for (center, label) in [([-1.0, 0.0], 0usize), ([1.0, 0.0], 1usize)] {
            let spec = Specification::margin(2, label, 1 - label)?;
            let radius =
                certified_radius(&net, &center, &spec, 1.0, 1e-3, &BnbSettings::default())?;
            println!("  certified radius at class-{label} center: {radius:.3}");
        }
        println!();
    }
    println!("reading: the relaxed verifiers are sound but conservative (their");
    println!("verified%% trails the exact verdict — the 'convex relaxation barrier');");
    println!("relaxation-adversarial training widens all certified margins.");
    Ok(())
}
