//! Spectrum sensing: STFT-based burst detection with the squeezed MSY3I.
//!
//! ```sh
//! cargo run --release --example spectrum_sensing
//! ```
//!
//! Follows the paper's §IV-A motivation: STFT "is often used as the basis
//! for signal detection and classification in 5G and beyond". A synthetic
//! time-domain signal with narrowband bursts is turned into a power
//! spectrogram; the MSY3I detector is then trained on the synthetic burst
//! dataset and scored; finally the phase-convention pitfall is
//! demonstrated on the very same spectrogram pipeline.

use rcr::nn::detect::{BurstConfig, BurstDataset};
use rcr::nn::msy3i::{BackboneKind, Msy3iConfig, Msy3iModel};
use rcr::signal::spectrogram::Spectrogram;
use rcr::signal::stft::{PhaseConvention, StftPlan};
use rcr::signal::window::{window, WindowKind, WindowSymmetry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A time-domain scene: two tone bursts in noise.
    let n = 2048usize;
    let mut signal = vec![0.0f64; n];
    let mut lcg = 0x2545F4914F6CDD1Du64;
    let mut noise = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((lcg >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.1
    };
    for (i, s) in signal.iter_mut().enumerate() {
        *s = noise();
        let t = i as f64;
        if (300..700).contains(&i) {
            *s += (0.8 * t).sin(); // burst 1
        }
        if (1200..1600).contains(&i) {
            *s += (2.2 * t).sin(); // burst 2, higher frequency
        }
    }

    // --- 2. STFT → power spectrogram.
    let g = window(WindowKind::Hann, WindowSymmetry::Periodic, 64)?;
    let plan = StftPlan::new(g, 16, 64, PhaseConvention::TimeInvariant)?;
    let stft = plan.analyze(&signal)?;
    let spec = Spectrogram::from_stft(&stft)?;
    println!(
        "spectrogram: {} frames x {} bins, total power {:.1}",
        spec.num_frames(),
        spec.num_bins(),
        spec.total_power()
    );
    // Where does the energy sit? Rough burst localization by frame power.
    let frame_power: Vec<f64> = spec.rows().iter().map(|r| r.iter().sum()).collect();
    let hot: Vec<usize> = frame_power
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.25 * frame_power.iter().cloned().fold(0.0, f64::max))
        .map(|(i, _)| i)
        .collect();
    println!(
        "high-energy frames: {} of {} (bursts live here)",
        hot.len(),
        spec.num_frames()
    );

    // --- 3. Train the squeezed MSY3I detector on the burst dataset.
    let burst_cfg = BurstConfig {
        count: 128,
        bursts: (1, 1),
        noise: 0.1,
        ..Default::default()
    };
    let train = BurstDataset::generate(&burst_cfg, 1)?;
    let eval = BurstDataset::generate(
        &BurstConfig {
            count: 32,
            ..burst_cfg
        },
        2,
    )?;
    let mut model = Msy3iModel::build(&Msy3iConfig {
        kind: BackboneKind::Squeezed,
        seed: 7,
        ..Default::default()
    })?;
    let report = model.train(&train, &eval, 80, 8, 6e-3)?;
    println!(
        "MSY3I (squeezed, {} params): loss {:.3} → {:.3}, AP@0.5 = {:.3}",
        model.param_count(),
        report.loss.first().unwrap(),
        report.loss.last().unwrap(),
        report.ap
    );

    // --- 4. The §IV-B pitfall: the stored-window convention carries a
    //        phase skew. Magnitudes (hence spectrograms) agree; phases do
    //        not — until the a-priori correction matrix is applied.
    let g2 = window(WindowKind::Hann, WindowSymmetry::Periodic, 64)?;
    let plan_sti = StftPlan::new(g2, 16, 64, PhaseConvention::SimplifiedTimeInvariant)?;
    let stft_sti = plan_sti.analyze(&signal)?;
    let bin = 5usize; // odd bin: the skew 2π·5·(Lg/2)/M never aliases to 0
    let frame = hot.first().copied().unwrap_or(0);
    let a = stft.frames()[frame][bin];
    let b = stft_sti.frames()[frame][bin];
    let corrected = stft_sti.convert(PhaseConvention::TimeInvariant);
    let c = corrected.frames()[frame][bin];
    println!("phase at (frame {frame}, bin {bin}):");
    println!("  Eq.5 (time-invariant):        {:+.4} rad", a.arg());
    println!(
        "  Eq.6 (stored-window):         {:+.4} rad  ← skewed",
        b.arg()
    );
    println!(
        "  Eq.6 corrected point-wise:    {:+.4} rad  ← matches Eq.5",
        c.arg()
    );
    Ok(())
}
