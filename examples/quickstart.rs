//! Quickstart: a five-minute tour of the RCR framework.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Touches one piece of every layer of the Fig. 1 stack: a convex QCQP
//! (Eq. 7), the trace-minimization SDP (Eqs. 8–10), a PSO run with
//! adaptive inertia (Eqs. 1–2), an STFT phase-convention conversion
//! (Eqs. 5–6), and a complete robustness verification.

use rcr::convex::qcqp::{QcqpProblem, QcqpSettings, QuadraticForm};
use rcr::convex::rankmin::{synth_low_rank_plus_diag, trace_min_decompose};
use rcr::convex::sdp::SdpSettings;
use rcr::linalg::Matrix;
use rcr::pso::benchfn::BenchFunction;
use rcr::pso::inertia::InertiaSchedule;
use rcr::pso::swarm::{PsoSettings, Swarm};
use rcr::signal::stft::{PhaseConvention, StftPlan};
use rcr::signal::window::{window, WindowKind, WindowSymmetry};
use rcr::verify::exact::{verify_complete, BnbSettings};
use rcr::verify::net::{AffineReluNet, Specification};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A convex QCQP (Eq. 7): minimize ½‖x − (3,0)‖² inside the unit ball.
    let objective = QuadraticForm::new(Matrix::identity(2), vec![-3.0, 0.0], 0.0)?;
    let ball = QuadraticForm::new(Matrix::identity(2), vec![0.0, 0.0], -0.5)?;
    let qcqp = QcqpProblem::new(objective, vec![ball], None)?;
    let sol = qcqp.solve(&QcqpSettings::default())?;
    println!(
        "QCQP:     x* = ({:.4}, {:.4}), gap bound {:.1e}",
        sol.x[0], sol.x[1], sol.gap_bound
    );

    // 2. Rank minimization via the trace relaxation (Eqs. 8–10).
    let v = Matrix::from_rows(&[&[1.0], &[2.0], &[-1.0]])?;
    let r_s = synth_low_rank_plus_diag(&v, &[0.5, 0.3, 0.4])?;
    let rank = trace_min_decompose(&r_s, &SdpSettings::default())?;
    println!("RMP→SDP:  planted rank 1 recovered as rank {}", rank.rank);

    // 3. PSO with adaptive inertia (Eqs. 1–2) on the Rastrigin surface.
    let settings = PsoSettings {
        inertia: InertiaSchedule::AdaptiveDiversity { min: 0.4, max: 0.9 },
        seed: 7,
        ..Default::default()
    };
    let f = BenchFunction::Rastrigin;
    let pso = Swarm::minimize(|x| f.eval(x), &f.bounds(2), &settings)?;
    println!(
        "PSO:      rastrigin best = {:.2e} in {} generations",
        pso.best_value, pso.iterations
    );

    // 4. STFT phase conventions (Eqs. 5–6): analyze in the stored-window
    //    convention, convert to time-invariant by the phase-factor matrix.
    let signal: Vec<f64> = (0..256).map(|i| (0.21 * i as f64).sin()).collect();
    let g = window(WindowKind::Hann, WindowSymmetry::Periodic, 32)?;
    let plan = StftPlan::new(g, 8, 32, PhaseConvention::SimplifiedTimeInvariant)?;
    let stft = plan.analyze(&signal)?;
    let converted = stft.convert(PhaseConvention::TimeInvariant);
    println!(
        "STFT:     {} frames x {} bins, converted Eq.6 → Eq.5 by point-wise phase factors",
        converted.num_frames(),
        converted.num_bins()
    );

    // 5. Complete robustness verification: f(x) = |x| stays above −0.1.
    let net = AffineReluNet::new(vec![
        (Matrix::from_rows(&[&[1.0], &[-1.0]])?, vec![0.0, 0.0]),
        (Matrix::from_rows(&[&[1.0, 1.0]])?, vec![0.0]),
    ])?;
    let spec = Specification {
        c: vec![1.0],
        offset: 0.1,
    };
    let report = verify_complete(&net, &[(-1.0, 1.0)], &spec, &BnbSettings::default())?;
    println!(
        "Verify:   |x| + 0.1 > 0 on [-1,1] → {:?} ({} nodes)",
        report.verdict, report.nodes
    );

    Ok(())
}
