//! Drifting-channel warm-start demo: the workload behind the
//! EXPERIMENTS.md "Warm-start under channel drift" table and the
//! `warm/` group in `BENCH_7.json`.
//!
//! A box QP stands in for one scheduling epoch of the rate-allocation
//! problem: the quadratic term `P` (interference structure) and the
//! constraint geometry stay fixed while the linear term `q` (measured
//! channel gains) takes a fresh small perturbation every epoch. Each
//! epoch is solved twice — cold (`QpProblem::solve`, fresh KKT
//! factorization, ADMM from zero) and through a `WarmCache`
//! (factorization reused, ADMM seeded from the previous epoch's
//! optimum) — and both must agree on the objective to 1e-5 (both run
//! to the same 1e-7 residual tolerance; at n = 128 that leaves a few
//! 1e-6 of objective slack between distinct tolerance-feasible points).
//!
//! ```sh
//! cargo run --release --example warm_drift
//! ```

use rcr::convex::qp::{QpProblem, QpSettings};
use rcr::convex::warm::WarmCache;
use rcr::linalg::Matrix;
use std::time::Instant;

/// Deterministic pseudo-random values in [-1, 1] (splitmix64).
fn weights(n: usize, mut state: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    const N: usize = 128;
    const EPOCHS: u64 = 60;
    const DRIFT: f64 = 1e-5;

    let g = Matrix::from_vec(N, N, weights(N * N, 0x44)).expect("gram seed");
    let mut p = g
        .transpose()
        .matmul(&g)
        .expect("gram")
        .scale(1.0 / N as f64);
    for i in 0..N {
        p[(i, i)] += 0.05 + 0.002 * i as f64;
    }
    let q0: Vec<f64> = weights(N, 0x55).into_iter().map(|v| 3.0 * v).collect();
    let make = |k: u64| -> QpProblem {
        let noise = weights(N, 0x66 ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let q: Vec<f64> = q0.iter().zip(&noise).map(|(a, b)| a + DRIFT * b).collect();
        QpProblem::new(
            p.clone(),
            q,
            Matrix::identity(N),
            vec![-1.0; N],
            vec![1.0; N],
        )
        .expect("qp")
    };

    let settings = QpSettings::default();
    let mut cache = WarmCache::new(8);
    let mut cold_us = Vec::new();
    let mut warm_us = Vec::new();
    let mut cold_iters = 0u64;
    let mut warm_iters = 0u64;
    let mut factor_reuses = 0u64;
    let mut worst_gap = 0.0f64;

    for k in 0..EPOCHS {
        let prob = make(k);
        let t0 = Instant::now();
        let cold = prob.solve(&settings).expect("cold solve");
        cold_us.push(t0.elapsed().as_secs_f64() * 1e6);
        let t1 = Instant::now();
        let (warm, report) = cache.solve_qp(&prob, &settings).expect("warm solve");
        warm_us.push(t1.elapsed().as_secs_f64() * 1e6);
        cold_iters += cold.iterations as u64;
        warm_iters += warm.iterations as u64;
        factor_reuses += u64::from(report.factorization_reused);
        worst_gap = worst_gap.max((warm.objective - cold.objective).abs());
    }

    assert!(
        worst_gap < 1e-5,
        "warm and cold objectives diverged: {worst_gap:e}"
    );
    cold_us.sort_by(f64::total_cmp);
    warm_us.sort_by(f64::total_cmp);
    let stats = cache.stats();
    let epochs = EPOCHS as f64;

    println!("drifting-channel QP, n = {N}, {EPOCHS} epochs, drift {DRIFT:.0e}");
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} KKT factorization reuses",
        stats.hits,
        stats.misses,
        100.0 * stats.hits as f64 / epochs,
        factor_reuses,
    );
    println!(
        "iterations per epoch: cold {:.1}, warm {:.1}",
        cold_iters as f64 / epochs,
        warm_iters as f64 / epochs,
    );
    for (label, us) in [("cold", &cold_us), ("warm", &warm_us)] {
        println!(
            "{label}: p50 {:.0} us, p99 {:.0} us",
            percentile(us, 0.50),
            percentile(us, 0.99),
        );
    }
    println!(
        "p50 speedup: {:.1}x",
        percentile(&cold_us, 0.50) / percentile(&warm_us, 0.50)
    );
    println!("worst warm-vs-cold objective gap: {worst_gap:.1e}");
}
