//! 5G downlink scheduling: the paper's motivating RRA problem end to end.
//!
//! ```sh
//! cargo run --release --example qos_scheduling
//! ```
//!
//! Generates a cell with mixed eMBB/URLLC/mMTC users, solves the
//! resource-block assignment + power allocation MINLP with all three
//! solvers, and prints the allocation with per-user QoS outcomes.

use rcr::core::qos_entry::{compare_solvers, SolverKind};
use rcr::minlp::BnbSettings;
use rcr::pso::swarm::PsoSettings;
use rcr::qos::admission::admit;
use rcr::qos::rra::RraProblem;
use rcr::qos::workload::{Scenario, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ScenarioConfig {
        users: 4,
        resource_blocks: 8,
        class_mix: (0.4, 0.3, 0.3),
        ..Default::default()
    };
    let scenario = Scenario::generate(&config, 2026)?;

    println!(
        "cell: {} users on {} resource blocks",
        config.users, config.resource_blocks
    );
    for (u, (class, dist)) in scenario
        .classes
        .iter()
        .zip(scenario.rra.channel().distances_m())
        .enumerate()
    {
        println!(
            "  user {u}: {:>5} at {:>5.0} m, min rate {:.2} Mb/s",
            class.name(),
            dist,
            scenario.rra.min_rates_bps[u] / 1e6
        );
    }
    println!();

    let pso = PsoSettings {
        swarm_size: 20,
        max_iter: 60,
        seed: 3,
        ..Default::default()
    };
    let comparison = compare_solvers(&scenario, &BnbSettings::default(), &pso)?;
    println!(
        "relaxation upper bound: {:.2} Mb/s (no allocation can exceed this)",
        comparison.relaxation_bound_bps / 1e6
    );
    println!();

    for outcome in &comparison.outcomes {
        match &outcome.solution {
            Some(sol) => {
                println!(
                    "{:<12} rate {:>7.2} Mb/s  SE {:>5.2} b/s/Hz  QoS {}  ({:.0} ms)",
                    outcome.solver.name(),
                    sol.total_rate_bps / 1e6,
                    sol.spectral_efficiency,
                    if sol.qos_satisfied { "met" } else { "VIOLATED" },
                    outcome.seconds * 1e3
                );
                if outcome.solver == SolverKind::Exact {
                    println!("             RB owners: {:?}", sol.owners);
                    for (u, r) in sol.power.user_rates_bps.iter().enumerate() {
                        println!(
                            "             user {u}: {:.2} Mb/s (min {:.2})",
                            r / 1e6,
                            scenario.rra.min_rates_bps[u] / 1e6
                        );
                    }
                }
            }
            None => println!("{:<12} failed / infeasible", outcome.solver.name()),
        }
    }

    // --- Admission control (RRM): overload the cell and watch the RRM
    //     evict the cheapest guarantees first.
    println!();
    println!("-- overload: everyone demands 4 Mb/s --");
    let overloaded = RraProblem::new(
        scenario.rra.channel().clone(),
        scenario.rra.noise_power_w,
        scenario.rra.power_budget_w,
        scenario.rra.rb_bandwidth_hz,
        vec![4e6; config.users],
    )?;
    let adm = admit(&overloaded, &scenario.classes)?;
    for (u, (&kept, class)) in adm.admitted.iter().zip(&scenario.classes).enumerate() {
        println!(
            "  user {u} ({:>5}): {}",
            class.name(),
            if kept { "admitted" } else { "rejected" }
        );
    }
    println!(
        "  admitted weight {:.0}, serving rate {:.2} Mb/s ({} feasibility checks)",
        adm.weight,
        adm.solution.total_rate_bps / 1e6,
        adm.feasibility_checks
    );
    Ok(())
}
