//! Integration: the solver service end to end — a mixed-class request
//! trace through the in-process client (accounting, deadline safety,
//! worker-count determinism) and a loopback TCP round-trip through the
//! line-delimited JSON protocol.

use rcr::qos::QosClass;
use rcr::serve::{
    wire, LanePolicy, Outcome, Payload, QueuePolicy, ReuseConfig, ScenarioSpec, Service,
    ServiceConfig, SolveRequest, SolverKind, TcpFrontend, Ticket,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A fixed 200-request trace across the three classes. Requests whose
/// `id % 10 == 7` carry an already-expired (zero) deadline; everything
/// else gets a generous one so outcomes are machine-independent.
fn trace() -> Vec<SolveRequest> {
    (0..200u64)
        .map(|id| {
            let class = QosClass::ALL[(id % 3) as usize];
            let deadline = if id % 10 == 7 {
                Duration::ZERO
            } else {
                Duration::from_secs(60)
            };
            SolveRequest {
                id,
                class,
                deadline,
                solver: SolverKind::Greedy,
                payload: Payload::Scenario(ScenarioSpec {
                    users: 3,
                    resource_blocks: 6,
                    seed: id * 13 + 1,
                }),
            }
        })
        .collect()
}

fn config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        // Deep lanes so the 200-request burst is never rejected: this
        // test pins accounting, not backpressure (unit tests cover it).
        queue: QueuePolicy {
            urllc: LanePolicy {
                capacity: 512,
                max_batch: 1,
                max_age: Duration::ZERO,
            },
            embb: LanePolicy {
                capacity: 512,
                max_batch: 16,
                max_age: Duration::from_millis(1),
            },
            mmtc: LanePolicy {
                capacity: 512,
                max_batch: 32,
                max_age: Duration::from_millis(2),
            },
            ..QueuePolicy::default()
        },
        ..ServiceConfig::default()
    }
}

/// Runs the trace through an in-process client; returns
/// `(id, class, outcome-tag, solved owners, solved rate bits)` per
/// request, in id order.
fn run_trace(workers: usize) -> Vec<(u64, QosClass, &'static str, Vec<usize>, u64)> {
    run_trace_with(config(workers))
}

fn run_trace_with(config: ServiceConfig) -> Vec<(u64, QosClass, &'static str, Vec<usize>, u64)> {
    let service = Service::spawn(config).expect("valid policy");
    let client = service.client();
    let tickets: Vec<(u64, QosClass, Ticket)> = trace()
        .into_iter()
        .map(|r| (r.id, r.class, client.submit(r)))
        .collect();
    let mut rows: Vec<(u64, QosClass, &'static str, Vec<usize>, u64)> = tickets
        .into_iter()
        .map(|(id, class, ticket)| {
            let resp = ticket.wait().expect("every request gets a response");
            assert_eq!(resp.id, id);
            assert_eq!(resp.class, class);
            let (owners, bits) = match &resp.outcome {
                Outcome::Solved(s) => (
                    s.solution.owners.clone(),
                    s.solution.total_rate_bps.to_bits(),
                ),
                _ => (Vec::new(), 0),
            };
            (id, class, resp.outcome.tag(), owners, bits)
        })
        .collect();
    rows.sort_by_key(|r| r.0);
    let snapshot = service.shutdown();
    assert_eq!(
        snapshot.total_responses(),
        200,
        "every request accounted for exactly once"
    );
    rows
}

#[test]
fn duration_max_deadline_is_clamped_not_panicked() {
    // `now + Duration::MAX` overflows `Instant`; submit_with must clamp
    // the deadline to "effectively never" and still solve the request.
    let service = Service::spawn(config(1)).expect("valid policy");
    let client = service.client();
    let ticket = client.submit(SolveRequest {
        id: 1,
        class: QosClass::Embb,
        deadline: Duration::MAX,
        solver: SolverKind::Greedy,
        payload: Payload::Scenario(ScenarioSpec {
            users: 3,
            resource_blocks: 6,
            seed: 11,
        }),
    });
    let resp = ticket.wait().expect("a response arrives");
    assert_eq!(resp.outcome.tag(), "solved", "{:?}", resp.outcome);
    service.shutdown();
}

#[test]
fn mixed_trace_accounts_for_every_request() {
    let rows = run_trace(2);
    assert_eq!(rows.len(), 200);
    let mut solved = 0;
    let mut expired = 0;
    for (id, _, tag, _, _) in &rows {
        match *tag {
            "solved" => {
                assert_ne!(id % 10, 7, "request {id} was solved after its deadline");
                solved += 1;
            }
            // Zero-deadline requests must expire — and nothing may be
            // "solved after deadline": an expired-at-enqueue id can
            // never come back solved.
            "expired" => {
                assert_eq!(id % 10, 7, "request {id} expired unexpectedly");
                expired += 1;
            }
            other => panic!("request {id}: unexpected outcome {other}"),
        }
    }
    assert_eq!(expired, 20);
    assert_eq!(solved, 180);
}

#[test]
fn solved_responses_always_meet_their_deadline() {
    let service = Service::spawn(config(4)).expect("valid policy");
    let client = service.client();
    let deadline = Duration::from_secs(60);
    let tickets: Vec<Ticket> = trace()
        .into_iter()
        .filter(|r| r.deadline > Duration::ZERO)
        .map(|r| client.submit(r))
        .collect();
    for ticket in tickets {
        let resp = ticket.wait().unwrap();
        if matches!(resp.outcome, Outcome::Solved(_)) {
            assert!(
                resp.queue_time + resp.solve_time <= deadline,
                "solved response exceeded its deadline budget"
            );
        }
    }
    service.shutdown();
}

#[test]
fn fixed_trace_solver_outputs_bit_identical_across_worker_counts() {
    let serial = run_trace(1);
    let parallel = run_trace(4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2, "request {}: outcome differs", a.0);
        assert_eq!(a.3, b.3, "request {}: owners differ", a.0);
        assert_eq!(a.4, b.4, "request {}: rate bits differ", a.0);
    }
}

#[test]
fn reuse_cache_preserves_bit_identity_across_worker_counts() {
    // The exact-match reuse cache must be invisible to outputs: the
    // same fixed trace, serial and 4-way parallel, with the cache on,
    // produces responses bit-identical to the cache-off runs above.
    let with_reuse = |workers: usize| ServiceConfig {
        reuse: ReuseConfig {
            enabled: true,
            capacity: 128,
        },
        ..config(workers)
    };
    let baseline = run_trace(1);
    let serial = run_trace_with(with_reuse(1));
    let parallel = run_trace_with(with_reuse(4));
    for run in [&serial, &parallel] {
        assert_eq!(baseline.len(), run.len());
        for (a, b) in baseline.iter().zip(run.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.2, b.2, "request {}: outcome differs under reuse", a.0);
            assert_eq!(a.3, b.3, "request {}: owners differ under reuse", a.0);
            assert_eq!(a.4, b.4, "request {}: rate bits differ under reuse", a.0);
        }
    }
}

#[test]
fn loopback_tcp_round_trip() {
    let service = Service::spawn(config(2)).expect("valid policy");
    let frontend = TcpFrontend::bind("127.0.0.1:0", service.client()).expect("bind loopback");
    let addr = frontend.local_addr();

    let stream = TcpStream::connect(addr).expect("connect loopback");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    // Pipeline a small mixed trace, then read the responses back.
    let requests: Vec<SolveRequest> = trace().into_iter().take(30).collect();
    for request in &requests {
        let line = wire::encode_request(request).expect("encodable");
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();

    let mut seen = Vec::new();
    for _ in 0..requests.len() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response line");
        let resp = wire::parse_response(line.trim_end()).expect("parseable response");
        match (&resp.outcome, resp.id % 10 == 7) {
            (Outcome::Solved(s), false) => {
                assert!(!s.solution.owners.is_empty());
                assert!(s.solution.total_rate_bps > 0.0);
            }
            (Outcome::Expired(_), true) => {}
            (outcome, _) => panic!("request {}: unexpected {outcome:?}", resp.id),
        }
        seen.push(resp.id);
    }
    seen.sort_unstable();
    let expected: Vec<u64> = (0..30).collect();
    assert_eq!(seen, expected, "every pipelined request answered once");

    // The metrics op answers over the same connection.
    writer.write_all(b"{\"op\":\"metrics\"}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let value = rcr::serve::json::parse(line.trim_end()).expect("metrics is valid JSON");
    let obj = value.as_object().expect("metrics is an object");
    assert_eq!(
        obj.get("outcome")
            .and_then(rcr::serve::json::JsonValue::as_str),
        Some("metrics")
    );
    // Per-class blocks carry the new lane high water + latency summary.
    let urllc = obj
        .get("URLLC")
        .and_then(rcr::serve::json::JsonValue::as_object)
        .expect("URLLC block");
    assert!(urllc.get_u64("solved").unwrap_or(0) > 0);
    assert!(urllc.get_u64("lane_depth_high_water").is_some());
    let lat = urllc
        .get("response_latency")
        .and_then(rcr::serve::json::JsonValue::as_object)
        .expect("per-class latency block");
    assert_eq!(
        lat.get_u64("count"),
        Some(urllc.get_u64("solved").unwrap()),
        "URLLC latency samples == solved responses for this trace"
    );

    drop(writer);
    drop(reader);
    drop(frontend);
    let snapshot = service.shutdown();
    assert_eq!(snapshot.total_responses(), 30);
    assert!(snapshot.class(QosClass::Urllc).solved > 0);
}

#[test]
fn wire_rejects_malformed_lines_without_dropping_the_connection() {
    let service = Service::spawn(ServiceConfig::default()).expect("valid policy");
    let frontend = TcpFrontend::bind("127.0.0.1:0", service.client()).expect("bind loopback");
    let stream = TcpStream::connect(frontend.local_addr()).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer.write_all(b"this is not json\n").unwrap();
    writer
        .write_all(b"{\"id\":1,\"class\":\"URLLC\",\"deadline_us\":60000000}\n")
        .unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"error\""), "got {line:?}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    let resp = wire::parse_response(line.trim_end()).unwrap();
    assert_eq!(resp.id, 1);
    assert!(matches!(resp.outcome, Outcome::Solved(_)));
}
