//! Cross-crate integration: the full Fig. 1 stack and the Fig. 2
//! paradigm harness driving every substrate crate at once.

use rcr::core::paradigm::{run_paradigm, Paradigm};
use rcr::core::stack::{RcrStack, StackConfig};

#[test]
fn rcr_stack_quick_run_produces_consistent_report() {
    let report = RcrStack::new(StackConfig::quick()).run().unwrap();
    // Phase 2 tuned every declared hyperparameter.
    for key in [
        "base_channels",
        "squeeze_ratio",
        "backbone",
        "learning_rate",
    ] {
        assert!(report.tuned.contains_key(key), "missing {key}");
    }
    // Tuned integers are inside their declared ranges.
    let bc = report.tuned["base_channels"];
    assert!((4.0..=10.0).contains(&bc));
    let lr = report.tuned["learning_rate"];
    assert!((1e-3..=1e-2).contains(&lr));
    // Phase 1 metrics are well-formed.
    assert!(report.detector_ap.is_finite());
    assert!(report.detector_params > 0);
    // The verification hierarchy holds on the robustness head.
    let c = &report.certification;
    assert!(c.verified_ibp <= c.verified_exact + 1e-12);
    assert!(c.verified_crown <= c.verified_exact + 1e-12);
}

#[test]
fn stability_paradigm_stable_and_accuracy_paradigm_flagged() {
    let stable = run_paradigm(Paradigm::StabilityFirst, 120, 3).unwrap();
    let fast = run_paradigm(Paradigm::AccuracyFirst, 120, 3).unwrap();
    // The stability paradigm's kernels pass conformance; the
    // accuracy-first kernels carry the documented phase defect.
    assert_eq!(stable.kernel_failures, 0);
    assert!(fast.kernel_failures > 0);
}
