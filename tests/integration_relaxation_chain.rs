//! Cross-crate integration: the §IV-C relaxation chain
//! (QCQP → RMP → TMP → SDP) built from real matrices flowing through
//! `rcr-linalg` → `rcr-convex`.

use rcr::convex::qcqp::{QcqpProblem, QcqpSettings, QuadraticForm};
use rcr::convex::rankmin::{synth_low_rank_plus_diag, trace_min_decompose};
use rcr::convex::sdp::{SdpProblem, SdpSettings};
use rcr::linalg::Matrix;

#[test]
fn qcqp_solution_is_feasible_and_optimal_against_grid() {
    // min ½‖x − (2, 1)‖² s.t. ‖x‖ ≤ 1: optimum is (2,1)/√5.
    let obj = QuadraticForm::new(Matrix::identity(2), vec![-2.0, -1.0], 0.0).unwrap();
    let ball = QuadraticForm::new(Matrix::identity(2), vec![0.0, 0.0], -0.5).unwrap();
    let prob = QcqpProblem::new(obj, vec![ball], None).unwrap();
    let sol = prob.solve(&QcqpSettings::default()).unwrap();
    let norm = (sol.x[0] * sol.x[0] + sol.x[1] * sol.x[1]).sqrt();
    assert!(norm <= 1.0 + 1e-6);
    let expected = [2.0 / 5.0f64.sqrt(), 1.0 / 5.0f64.sqrt()];
    assert!((sol.x[0] - expected[0]).abs() < 1e-4);
    assert!((sol.x[1] - expected[1]).abs() < 1e-4);
}

#[test]
fn nonconvex_rank_objective_rejected_but_sdp_relaxation_succeeds() {
    // The rank function cannot enter the QCQP solver (nonconvex gate), but
    // the trace relaxation solves the same decomposition as an SDP.
    let indefinite = QuadraticForm::new(Matrix::from_diag(&[1.0, -1.0]), vec![0.0; 2], 0.0);
    assert!(!indefinite.unwrap().is_convex(1e-9));

    let v = Matrix::from_rows(&[&[1.0], &[0.5], &[-2.0], &[1.5]]).unwrap();
    let d = [0.6, 0.8, 0.5, 0.9];
    let r_s = synth_low_rank_plus_diag(&v, &d).unwrap();
    let res = trace_min_decompose(&r_s, &SdpSettings::default()).unwrap();
    assert_eq!(res.rank, 1);
    let recon = &res.r_c + &res.r_n;
    assert!((&recon - &r_s).max_abs() < 1e-4);
}

#[test]
fn sdp_certificate_matches_eigen_analysis() {
    // min ⟨C, X⟩, tr X = 1, X ⪰ 0 equals λ_min(C); cross-check the SDP
    // against the Jacobi eigensolver on a 4x4 instance.
    let c = Matrix::from_rows(&[
        &[2.0, 0.3, 0.0, 0.1],
        &[0.3, 1.5, 0.2, 0.0],
        &[0.0, 0.2, 3.0, 0.4],
        &[0.1, 0.0, 0.4, 2.5],
    ])
    .unwrap();
    let eig_min = c.symmetric_eigen().unwrap().eigenvalues()[0];
    let prob = SdpProblem::new(c, vec![(Matrix::identity(4), 1.0)]).unwrap();
    let sol = prob.solve(&SdpSettings::default()).unwrap();
    assert!(
        (sol.objective - eig_min).abs() < 1e-4,
        "sdp {} vs eigen {eig_min}",
        sol.objective
    );
}
