//! Property-based invariants across the workspace (proptest).

use proptest::prelude::*;
use rcr::convex::envelope::{mccormick, Interval};
use rcr::linalg::{vector, Matrix};
use rcr::numerics::stable::{log_softmax, softmax};
use rcr::signal::fft::{fft, ifft};
use rcr::signal::Complex64;
use rcr::verify::bounds::interval_bounds;
use rcr::verify::net::AffineReluNet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_roundtrip(values in prop::collection::vec(-100.0f64..100.0, 1..64)) {
        let x: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!(b.im.abs() < 1e-8);
        }
    }

    #[test]
    fn softmax_is_distribution(logits in prop::collection::vec(-50.0f64..50.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // log_softmax consistency.
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            prop_assert!((a.ln() - b).abs() < 1e-7);
        }
    }

    #[test]
    fn psd_projection_is_psd_and_idempotent(
        entries in prop::collection::vec(-3.0f64..3.0, 9)
    ) {
        let a = Matrix::from_vec(3, 3, entries).unwrap().symmetrize().unwrap();
        let p = a.psd_projection().unwrap();
        prop_assert!(p.min_eigenvalue().unwrap() > -1e-8);
        let pp = p.psd_projection().unwrap();
        prop_assert!((&pp - &p).max_abs() < 1e-7);
    }

    #[test]
    fn mccormick_always_contains_product(
        x in -5.0f64..5.0, y in -5.0f64..5.0,
        w1 in 0.1f64..3.0, w2 in 0.1f64..3.0,
    ) {
        let xi = Interval::new(x - w1, x + w1).unwrap();
        let yi = Interval::new(y - w2, y + w2).unwrap();
        let iv = mccormick(x, y, xi, yi);
        prop_assert!(iv.lo <= x * y + 1e-9);
        prop_assert!(iv.hi >= x * y - 1e-9);
    }

    #[test]
    fn lu_solve_residual_small(
        entries in prop::collection::vec(-2.0f64..2.0, 16),
        rhs in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let mut a = Matrix::from_vec(4, 4, entries).unwrap();
        // Diagonal dominance guarantees solvability.
        for i in 0..4 {
            let v = a[(i, i)];
            a[(i, i)] = v + 10.0;
        }
        let x = a.solve(&rhs).unwrap();
        let r = a.matvec(&x).unwrap();
        prop_assert!(vector::norm_inf(&vector::sub(&r, &rhs)) < 1e-8);
    }

    #[test]
    fn ibp_bounds_contain_samples(
        w in prop::collection::vec(-2.0f64..2.0, 6),
        b in prop::collection::vec(-1.0f64..1.0, 3),
        probe in -1.0f64..1.0,
    ) {
        // 1-3-1 ReLU net with random weights; the IBP output box must
        // contain every sampled output.
        let w1 = Matrix::from_vec(3, 1, w[..3].to_vec()).unwrap();
        let w2 = Matrix::from_vec(1, 3, w[3..].to_vec()).unwrap();
        let net = AffineReluNet::new(vec![(w1, b.clone()), (w2, vec![0.0])]).unwrap();
        let bounds = interval_bounds(&net, &[(-1.0, 1.0)]).unwrap();
        let (lo, hi) = bounds.output()[0];
        let y = net.eval(&[probe]).unwrap()[0];
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }

    #[test]
    fn waterfill_respects_budget(
        gains in prop::collection::vec(0.1f64..100.0, 1..8),
        budget in 0.1f64..10.0,
    ) {
        let owners: Vec<usize> = (0..gains.len()).collect();
        let problem = rcr::qos::power::PowerProblem {
            min_rates_bps: vec![0.0; gains.len()],
            gains,
            owners,
            power_budget: budget,
            rb_bandwidth_hz: 1.0,
        };
        let sol = rcr::qos::power::solve_power(&problem).unwrap();
        prop_assert!(sol.powers.iter().sum::<f64>() <= budget * (1.0 + 1e-6));
        prop_assert!(sol.powers.iter().all(|&p| p >= 0.0));
        prop_assert!(sol.feasible);
    }
}
