//! Cross-crate integration: signal kernels × numerics — Parseval through
//! the compensated summers, conformance through the paradigm profiles,
//! and spectrogram energy consistency.

use rcr::numerics::summation::{kahan_sum, naive_sum};
use rcr::signal::fft::{rfft, spectral_energy};
use rcr::signal::profile::{ConformanceSuite, LibraryProfile};
use rcr::signal::spectrogram::Spectrogram;
use rcr::signal::stft::{PhaseConvention, StftPlan};
use rcr::signal::window::{window, WindowKind, WindowSymmetry};
use rcr::signal::Complex64;

fn chirp(n: usize) -> Vec<f64> {
    (0..n).map(|i| (1e-3 * (i * i) as f64).sin()).collect()
}

#[test]
fn parseval_with_compensated_summation() {
    let x = chirp(512);
    let time_energy = kahan_sum(&x.iter().map(|v| v * v).collect::<Vec<_>>());
    let full: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    let spec = rcr::signal::fft::fft(&full).unwrap();
    let freq_energy = spectral_energy(&spec) / x.len() as f64;
    assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    // The naive and compensated sums agree here (benign input), which
    // itself is a regression check on the compensated path.
    let naive = naive_sum(&x.iter().map(|v| v * v).collect::<Vec<_>>());
    assert!((naive - time_energy).abs() < 1e-9);
}

#[test]
fn spectrogram_energy_tracks_signal_energy() {
    let x = chirp(1024);
    let g = window(WindowKind::Hann, WindowSymmetry::Periodic, 64).unwrap();
    let plan = StftPlan::new(g, 16, 64, PhaseConvention::TimeInvariant).unwrap();
    let sp = Spectrogram::from_stft(&plan.analyze(&x).unwrap()).unwrap();
    // A louder signal yields a proportionally louder spectrogram.
    let x2: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
    let sp2 = Spectrogram::from_stft(&plan.analyze(&x2).unwrap()).unwrap();
    let ratio = sp2.total_power() / sp.total_power();
    assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
}

#[test]
fn rfft_halves_match_full_transform() {
    let x = chirp(128);
    let spec = rfft(&x).unwrap();
    let full: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    let full_spec = rcr::signal::fft::fft(&full).unwrap();
    for (a, b) in spec.iter().zip(&full_spec) {
        assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
    }
}

#[test]
fn fig3_matrix_shape_is_stable() {
    // The conformance matrix is the E3 deliverable: its shape (profiles x
    // checks) and the reference row must stay stable across refactors.
    let reports = ConformanceSuite::new().run_all().unwrap();
    assert_eq!(reports.len(), LibraryProfile::all().len());
    let checks = reports[0].outcomes.len();
    assert!(checks >= 7, "expected at least 7 checks, got {checks}");
    for r in &reports {
        assert_eq!(r.outcomes.len(), checks);
    }
    assert_eq!(reports[0].profile, LibraryProfile::Reference);
    assert_eq!(reports[0].failures(), 0);
}
