//! Cross-crate integration: the QoS pipeline — channel → RRA MINLP →
//! exact/PSO/greedy solvers → relaxation certificate.

use rcr::core::qos_entry::{compare_solvers, SolverKind};
use rcr::minlp::BnbSettings;
use rcr::pso::swarm::PsoSettings;
use rcr::qos::rra::relaxation_bound_bps;
use rcr::qos::workload::{Scenario, ScenarioConfig};

#[test]
fn solver_hierarchy_and_certificates() {
    let scenario = Scenario::generate(
        &ScenarioConfig {
            users: 3,
            resource_blocks: 6,
            ..Default::default()
        },
        77,
    )
    .unwrap();
    let pso = PsoSettings {
        swarm_size: 12,
        max_iter: 40,
        seed: 5,
        ..Default::default()
    };
    let cmp = compare_solvers(&scenario, &BnbSettings::default(), &pso).unwrap();

    let exact = cmp
        .outcomes
        .iter()
        .find(|o| o.solver == SolverKind::Exact)
        .and_then(|o| o.solution.as_ref())
        .expect("exact solver succeeds on this scenario");
    assert!(exact.qos_satisfied);

    // Certificates: optimum within the relaxation bound; heuristics never
    // beat the exact optimum.
    let bound = relaxation_bound_bps(&scenario.rra);
    assert!(exact.total_rate_bps <= bound * (1.0 + 1e-9));
    for o in &cmp.outcomes {
        if let Some(s) = &o.solution {
            assert!(
                s.total_rate_bps <= exact.total_rate_bps * (1.0 + 1e-9),
                "{:?}",
                o.solver
            );
            // Every reported allocation is physically consistent.
            let band = 180e3 * scenario.rra.resource_blocks() as f64;
            assert!((s.spectral_efficiency - s.total_rate_bps / band).abs() < 1e-9);
        }
    }
}

#[test]
fn urllc_heavy_mix_still_solvable_and_guarantees_rates() {
    let scenario = Scenario::generate(
        &ScenarioConfig {
            users: 3,
            resource_blocks: 8,
            class_mix: (0.0, 1.0, 0.0), // all URLLC
            ..Default::default()
        },
        5,
    )
    .unwrap();
    let exact = rcr::qos::rra::solve_exact(&scenario.rra, &BnbSettings::default()).unwrap();
    assert!(exact.qos_satisfied);
    for (rate, min) in exact
        .power
        .user_rates_bps
        .iter()
        .zip(&scenario.rra.min_rates_bps)
    {
        assert!(rate >= &(min - 1.0), "rate {rate} below min {min}");
    }
}
