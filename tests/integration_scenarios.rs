//! Scenario-engine integration tests: the replay contract on the
//! committed manifest, worker-count determinism of served traces, the
//! QoS shape under 2× overload, EDF-vs-FIFO at ≥0.9 utilization over a
//! 10⁵-item trace, and lane-full accounting under sustained overload.
//!
//! The `scenario_smoke` test is the hard gate wired into
//! `scripts/verify.sh --scenario-smoke`.

use rcr::qos::QosClass;
use rcr::scenarios::{
    run_scenario, simulate, trace_digest, ArrivalProcess, ClassMix, Digest128,
    DisciplineExpectation, FadingModel, LoadMode, OverloadExpectation, RunManifest,
    ScenarioManifest, SimItem, TraceGenerator,
};
use rcr::serve::{
    LanePolicy, Outcome, QueueDiscipline, QueuePolicy, ReuseConfig, Service, ServiceConfig,
    SolverKind,
};
use std::time::Instant;

/// The committed run manifest behind `examples/scenario_storm.rs` and
/// EXPERIMENTS.md E17.
const COMMITTED: &str = include_str!("../crates/scenarios/manifests/diurnal_storm.json");

/// A reuse-friendly scenario: long coherence blocks over a small
/// population mean ~`population` distinct problems per fading epoch, so
/// with the solution-reuse cache enabled most requests are cache hits
/// and each epoch boundary injects a burst of real ~5 ms greedy solves —
/// which is what lets a single-core CI box run honest 10⁵-request
/// overload experiments while capacity stays solve-bound.
fn cached_manifest(requests: u64, rate_per_sec: f64) -> ScenarioManifest {
    ScenarioManifest {
        name: "overload-shape".into(),
        seed: 0xC0FFEE,
        requests,
        cells: 4,
        population: 24,
        users_per_problem: 3,
        resource_blocks: 6,
        class_mix: ClassMix {
            urllc: 0.1,
            embb: 0.3,
            mmtc: 0.6,
        },
        // Half a virtual second per channel realization: within a block
        // the problem set is closed (cache hits), and every boundary
        // redraws all 24 users' channels at once.
        fading: FadingModel::BlockRayleigh {
            coherence_us: 500_000,
        },
        arrivals: ArrivalProcess::Poisson { rate_per_sec },
        deadlines_us: [2_000_000, 2_000_000, 2_000_000],
        solver: SolverKind::Greedy,
    }
}

fn cached_config() -> ServiceConfig {
    ServiceConfig {
        reuse: ReuseConfig {
            enabled: true,
            capacity: 512,
        },
        ..ServiceConfig::default()
    }
}

#[test]
fn committed_manifest_replays_bit_identically() {
    let run = RunManifest::parse(COMMITTED.trim()).expect("committed manifest parses");
    let first = trace_digest(&run.manifest).expect("valid manifest");
    assert_eq!(
        first, run.trace_digest,
        "replay contract broken: the spec+seed in manifests/diurnal_storm.json no longer \
         regenerates the committed trace"
    );
    let second = trace_digest(&run.manifest).expect("valid manifest");
    assert_eq!(
        first, second,
        "two generations of the same manifest diverged"
    );
}

#[test]
fn million_request_trace_streams_lazily() {
    // 10⁶ requests over a 10⁶-user population, consumed without ever
    // materializing the trace. The generator is an iterator, so this is
    // O(1) memory for block fading; the run finishing in test time at
    // all is the point.
    let mut m = cached_manifest(1_000_000, 500_000.0);
    m.population = 1_000_000;
    m.cells = 64;
    let mut count = 0u64;
    let mut last_at = 0u64;
    let mut last_id = 0u64;
    for t in TraceGenerator::new(&m).expect("valid manifest") {
        assert!(
            t.at_us > last_at || count == 0,
            "arrival times must increase"
        );
        last_at = t.at_us;
        last_id = t.request.id;
        count += 1;
    }
    assert_eq!(count, 1_000_000);
    assert_eq!(last_id, 999_999);
}

/// Submits a full trace and digests the sorted responses: id, outcome
/// tag, and for solved requests the exact allocation (owners + total
/// rate bits).
fn served_response_digest(workers: usize, manifest: &ScenarioManifest) -> String {
    let config = ServiceConfig {
        workers,
        ..cached_config()
    };
    let service = Service::spawn(config).expect("valid policy");
    let client = service.client();
    let mut responses = Vec::new();
    let mut settle = |ticket: rcr::serve::Ticket| {
        let resp = ticket.wait().expect("response");
        let (owners, rate_bits) = match &resp.outcome {
            Outcome::Solved(s) => (
                s.solution.owners.clone(),
                s.solution.total_rate_bps.to_bits(),
            ),
            other => panic!("generous-deadline trace must fully solve, got {other:?}"),
        };
        responses.push((resp.id, owners, rate_bits));
    };
    // Windowed submission so the lanes never fill — this test is about
    // solution identity, not admission control.
    let mut inflight = std::collections::VecDeque::new();
    for t in TraceGenerator::new(manifest).expect("valid manifest") {
        if inflight.len() == 64 {
            settle(inflight.pop_front().expect("non-empty window"));
        }
        inflight.push_back(client.submit(t.request));
    }
    for ticket in inflight {
        settle(ticket);
    }
    service.shutdown();
    responses.sort_by_key(|r| r.0);
    let mut d = Digest128::new(0x5E57_D16E);
    for (id, owners, rate_bits) in &responses {
        d.u64(*id);
        d.u64(owners.len() as u64);
        for &owner in owners {
            d.u64(owner as u64);
        }
        d.u64(*rate_bits);
    }
    d.hex()
}

#[test]
fn worker_count_does_not_change_served_solutions() {
    // The trace is a pure function of the manifest, and per-request seed
    // streams make each solve self-contained — so a 1-worker and a
    // 4-worker service must produce bit-identical allocations for every
    // request, whatever order the pool solved them in.
    let manifest = cached_manifest(2_000, 50_000.0);
    let one = served_response_digest(1, &manifest);
    let four = served_response_digest(4, &manifest);
    assert_eq!(
        one, four,
        "worker count changed solved allocations — scheduling leaked into results"
    );
}

/// The capped scenario gate run by `scripts/verify.sh --scenario-smoke`:
/// a 10⁴-request closed-loop run whose books must balance to the request
/// against the service's own metrics.
#[test]
fn scenario_smoke() {
    let manifest = cached_manifest(10_000, 50_000.0);
    let config = cached_config();
    let policy = config.queue;
    let report = run_scenario(&manifest, config, LoadMode::Closed { concurrency: 32 })
        .expect("smoke run completes");
    assert_eq!(report.offered(), 10_000);
    report
        .reconcile(Some(&policy))
        .expect("harness and service books reconcile");
    for class in QosClass::ALL {
        let c = report.class(class);
        assert!(c.offered > 0, "{} never offered", class.name());
        assert_eq!(
            c.solved,
            c.offered,
            "{} shed under a closed loop with 2 s deadlines",
            class.name()
        );
    }
}

#[test]
fn overload_sheds_mmtc_while_urllc_stays_flat() {
    // Phase 1 — baseline & calibration in one run: a closed loop never
    // overloads the service, and its achieved rate *is* the service's
    // capacity, so "2× overload" needs no machine-specific constant.
    //
    // Fading-epoch redraws are what overload the service with *real*
    // solve work (cache hits alone are nearly as fast as the submit path,
    // so a one-core producer could never overpressure a fully warmed
    // service). The epoch count scales with the build profile: a greedy
    // solve costs ~5 ms optimized and ~40 ms unoptimized, and the product
    // epochs × population × solve-time is what has to exceed the run's
    // wall budget.
    let debug = cfg!(debug_assertions);
    let epochs = if debug { 8 } else { 32 };
    let mut config = cached_config();
    // Trim batch sizes against head-of-line blocking: right after an
    // epoch boundary a whole batch can be cold solves, and a deep cold
    // batch would wall off the URLLC lane for longer than its arrivals
    // can sit in it.
    config.queue.urllc = LanePolicy {
        capacity: 512,
        max_batch: 1,
        max_age: std::time::Duration::ZERO,
    };
    config.queue.embb.max_batch = 8;
    config.queue.mmtc.max_batch = 8;
    // A shallower best-effort lane: mMTC tolerates loss, not staleness,
    // so bounce excess load instead of aging it out of a deep queue.
    config.queue.mmtc.capacity = 256;
    let policy = config.queue;
    // The arrival rate sets the *virtual* span (and with it the number of
    // fading epochs the trace crosses) even though a closed loop ignores
    // the timeline for pacing. mMTC gets a 1 s budget — delay-tolerant,
    // but stale sensor readings are worthless, so the deep-backlog tail
    // expires rather than riding the queue out.
    let scenario = {
        let mut m = cached_manifest(100_000, 30_000.0);
        m.deadlines_us = [2_000_000, 2_000_000, 1_000_000];
        // Pin the fading structure to the run, not the wall: `epochs`
        // boundaries over the trace's virtual span, each redrawing all 24
        // channels, keep the service solve-bound on any host — a faster
        // box compresses the span and would otherwise never cross one.
        m.fading = FadingModel::BlockRayleigh {
            coherence_us: (100_000.0 / 30_000.0 * 1e6) as u64 / epochs,
        };
        m
    };
    let baseline = run_scenario(
        &scenario,
        config.clone(),
        LoadMode::Closed { concurrency: 32 },
    )
    .expect("baseline run completes");
    baseline
        .reconcile(Some(&policy))
        .expect("baseline books reconcile");
    let capacity_rps = baseline.achieved_rps();
    assert!(
        capacity_rps > 500.0,
        "calibration run measured implausible capacity {capacity_rps:.0} req/s"
    );

    // Phase 2 — the same 10⁵-request scenario offered open-loop as a
    // diurnal storm averaging 2× the measured capacity. Starting from the
    // trough matters: the fresh service's reuse cache is cold, and on an
    // unoptimized build the first pass over the problem set takes whole
    // seconds — the ramp warms it under light load, the way a real
    // diurnal cycle would, instead of burying a cold cache at t=0.
    // The closed-loop figure under-reads the service's warm capacity (it
    // includes the cold first pass over the problem set), so the storm
    // averages 3× the measured rate — comfortably past 2× the true
    // capacity even when calibration reads low.
    // How far past calibrated capacity the storm crest reaches. The
    // unoptimized build backs off slightly: its submit path is itself
    // near capacity on one core, so extra storm just queues in the
    // producer and smears the URLLC lane instead of pressuring admission.
    let storm_factor = if debug { 3.5 } else { 4.0 };
    let period_us = (100_000.0 / (storm_factor * capacity_rps) * 1e6) as u64;
    let overload_manifest = {
        let mut m = scenario.clone();
        m.arrivals = ArrivalProcess::Diurnal {
            base_rate_per_sec: 0.2 * capacity_rps,
            // One full wave over the run: mean rate = base + (peak−base)/2
            // = storm_factor × measured capacity.
            peak_rate_per_sec: (2.0 * storm_factor - 0.2) * capacity_rps,
            period_us,
        };
        // Same epoch structure relative to this run's (much shorter)
        // virtual span.
        m.fading = FadingModel::BlockRayleigh {
            coherence_us: (period_us / epochs).max(1),
        };
        m
    };
    let overload = run_scenario(&overload_manifest, config, LoadMode::Open { speed: 1.0 })
        .expect("overload run completes");
    println!(
        "calibrated capacity {capacity_rps:.0} req/s\nbaseline:\n{}\noverload:\n{}",
        baseline.render(),
        overload.render()
    );
    overload
        .reconcile(Some(&policy))
        .expect("overload books reconcile");

    // The pressure must land on mMTC as QueueFull shedding — which
    // reconcile() above has already tied to the lane literally hitting
    // its configured capacity.
    assert!(
        overload.class(QosClass::Mmtc).rejected_full > 0,
        "2× overload produced no mMTC QueueFull rejections"
    );
    let mut violations: Vec<String> = Vec::new();
    // The cross-class shape that holds on any machine is the *shedding*
    // ordering, not solved-request latency: a class shed at the door
    // serves its shallow-lane survivors almost instantly, so mMTC's
    // solved-only median can sit far below a URLLC median that queued
    // through the crest keeping everything. What must never invert is
    // where the loss lands.
    let urllc_shed = overload.class(QosClass::Urllc).shed_fraction();
    let mmtc_shed = overload.class(QosClass::Mmtc).shed_fraction();
    if urllc_shed * 10.0 >= mmtc_shed {
        violations.push(format!(
            "URLLC shed {:.2}% is not an order of magnitude below mMTC shed {:.2}%",
            urllc_shed * 100.0,
            mmtc_shed * 100.0
        ));
    }
    // The absolute floor is sized for this single-core CI box: the
    // open-loop submitter competes with the batcher for the one core, so
    // "flat" means tens of milliseconds, not the baseline's ~100 µs —
    // and several times that again on an unoptimized build, where the
    // submit path alone nearly saturates the core at the storm's crest.
    // min_mmtc_shed sits below the library default: on one core the
    // submitting thread itself caps how hard the storm can actually
    // press (≈1.2× capacity sustained, whatever the manifest asks for),
    // so the observable shed is bounded by the host, not the policy.
    let expectation = OverloadExpectation {
        max_urllc_p99_ratio: 10.0,
        urllc_p99_floor_us: if cfg!(debug_assertions) {
            1_000_000
        } else {
            150_000
        },
        min_mmtc_shed: 0.18,
        min_urllc_solved: 0.95,
    };
    if let Err(violation) = expectation.check(&baseline, &overload) {
        violations.push(violation);
    }
    if !violations.is_empty() {
        panic!(
            "QoS shape violated: {}\nbaseline:\n{}\noverload:\n{}",
            violations.join("; "),
            baseline.render(),
            overload.render()
        );
    }
}

#[test]
fn edf_beats_fifo_at_high_utilization_over_a_generated_trace() {
    // A 1.2·10⁵-request MMPP trace at ~0.92 utilization against a 500 µs
    // server. Deadline budgets are heterogeneous per user (tight for even
    // users, loose for odd), so within every lane EDF has real choices to
    // make; FIFO serves the same arrivals in order.
    let manifest = ScenarioManifest {
        name: "edf-vs-fifo".into(),
        seed: 0xEDF0,
        requests: 120_000,
        cells: 8,
        population: 10_000,
        users_per_problem: 3,
        resource_blocks: 6,
        class_mix: ClassMix {
            urllc: 0.2,
            embb: 0.3,
            mmtc: 0.5,
        },
        fading: FadingModel::BlockRayleigh {
            coherence_us: 20_000,
        },
        arrivals: ArrivalProcess::Mmpp {
            slow_rate_per_sec: 800.0,
            fast_rate_per_sec: 6_000.0,
            mean_slow_us: 100_000.0,
            mean_fast_us: 25_000.0,
        },
        deadlines_us: [2_000, 20_000, 200_000],
        solver: SolverKind::Greedy,
    };
    const SERVICE_US: u64 = 540;
    let items: Vec<SimItem> = TraceGenerator::new(&manifest)
        .expect("valid manifest")
        .map(|t| SimItem {
            at_us: t.at_us,
            class: t.request.class,
            // Heterogeneous budgets, sized against the MMPP burst: a fast
            // phase backs the server up by ~55 ms of work, but the tight
            // class alone only by ~16 ms. So EDF can still meet 20 ms
            // budgets by triaging (loose 200 ms budgets soak the burst),
            // while FIFO makes tight work eat the whole backlog.
            deadline_us: if (t.request.id / 8) % 2 == 0 {
                200_000
            } else {
                20_000
            },
        })
        .collect();
    let span_us = items.last().expect("non-empty trace").at_us;
    let utilization = (items.len() as u64 * SERVICE_US) as f64 / span_us as f64;
    assert!(
        utilization >= 0.9,
        "trace only loads the simulated server to {utilization:.2}, need ≥ 0.9"
    );

    let lane = LanePolicy {
        capacity: 2_048,
        max_batch: 8,
        max_age: std::time::Duration::from_micros(500),
    };
    let policy = |discipline| QueuePolicy {
        urllc: lane,
        embb: lane,
        mmtc: lane,
        discipline,
    };
    let base = Instant::now();
    let edf =
        simulate(base, &items, SERVICE_US, &policy(QueueDiscipline::Edf)).expect("EDF sim runs");
    let fifo =
        simulate(base, &items, SERVICE_US, &policy(QueueDiscipline::Fifo)).expect("FIFO sim runs");
    assert_eq!(edf.total(), items.len() as u64, "sim lost arrivals");
    DisciplineExpectation::default()
        .check(&edf, &fifo)
        .unwrap_or_else(|violation| {
            panic!("scheduling shape violated at utilization {utilization:.2}: {violation}")
        });
}

#[test]
fn lane_full_accounting_reconciles_under_sustained_overload() {
    // A deliberately tiny mMTC lane under a firehose: QueueFull counts,
    // the lane's depth high-water, and the harness/service books must
    // reconcile *exactly* — the regression pin for lane-full accounting.
    let mut manifest = cached_manifest(4_000, 300_000.0);
    manifest.name = "lane-full-pin".into();
    manifest.class_mix = ClassMix {
        urllc: 0.05,
        embb: 0.05,
        mmtc: 0.9,
    };
    manifest.deadlines_us = [60_000_000, 60_000_000, 60_000_000];
    let mut config = cached_config();
    config.queue.mmtc = LanePolicy {
        capacity: 64,
        max_batch: 8,
        max_age: std::time::Duration::from_millis(1),
    };
    let policy = config.queue;
    let report = run_scenario(&manifest, config, LoadMode::Open { speed: 1.0 })
        .expect("overload run completes");
    report
        .reconcile(Some(&policy))
        .expect("lane-full books must reconcile exactly");
    let mmtc = report.class(QosClass::Mmtc);
    assert!(
        mmtc.rejected_full > 100,
        "expected a QueueFull storm on the 64-deep mMTC lane, got {}",
        mmtc.rejected_full
    );
    assert_eq!(
        report.snapshot.lane_high_water(QosClass::Mmtc),
        64,
        "high water must pin to the configured capacity once the lane rejects"
    );
    // Nothing expires under 60 s deadlines: every mMTC request either
    // solved or bounced off the full lane.
    assert_eq!(mmtc.solved + mmtc.rejected_full, mmtc.offered);
}
