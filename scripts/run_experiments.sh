#!/usr/bin/env bash
# Regenerates every experiment table (E1-E15) into experiments_output.txt.
# Usage: scripts/run_experiments.sh [output-file]
set -u
out="${1:-experiments_output.txt}"
cd "$(dirname "$0")/.."
: > "$out"
for bin in table_e1_stack table_e2_paradigms table_e3_issues table_e4_pso \
           table_e5_discrete table_e6_truncation table_e7_stft table_e8_qcqp \
           table_e9_sdp table_e10_verify table_e11_squeeze table_e12_qos \
           table_e13_gan table_e15_rrm; do
    echo "running $bin ..." >&2
    cargo run --release -p rcr-bench --bin "$bin" 2>/dev/null >> "$out"
    echo >> "$out"
done
echo "wrote $out" >&2
