#!/usr/bin/env bash
# The CI gate: release build, complete test suite, formatting, lints.
# Usage: scripts/verify.sh [--quick]
#   --quick  build + tests only (skips rcr-lint, fmt, clippy, and bench compilation)
set -eu
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) echo "verify.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release ==" >&2
cargo build --release

echo "== cargo test --workspace ==" >&2
cargo test --workspace -q

echo "== cargo test --test integration_serve (service loopback) ==" >&2
cargo test -q --test integration_serve

if [ "$quick" -eq 1 ]; then
  echo "verify.sh: quick gates passed (lint/fmt/clippy/benches skipped)" >&2
  exit 0
fi

echo "== rcr-lint (workspace static analysis) ==" >&2
# Hard gate: the project-specific linter must report zero violations.
# Its per-rule summary (including justified suppressions) goes to stderr.
cargo run -q --release -p rcr-lint

echo "== cargo fmt --check ==" >&2
cargo fmt --check

echo "== cargo clippy (warnings are errors) ==" >&2
cargo clippy --workspace --benches -- -D warnings

echo "verify.sh: all gates passed" >&2
