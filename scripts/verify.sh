#!/usr/bin/env bash
# The CI gate: release build, complete test suite, formatting, lints.
# Usage: scripts/verify.sh [--quick] [--bench-smoke] [--scenario-smoke]
#   --quick        build + tests only (skips rcr-lint, fmt, clippy, and bench compilation)
#   --bench-smoke  also run the benchmark suite in smoke mode and diff the
#                  results against the committed BENCH_7.json baseline
#                  (wall-time regressions beyond 25% of the host factor,
#                  allocation-count drift, and the pinned blocked-GEMM
#                  speedup / scratch-path allocation reductions all fail)
#   --scenario-smoke  also replay a capped 10⁴-request scenario through a
#                  live service (optimized build) and require exact
#                  per-class accounting — the fast end-to-end check that
#                  the scenario engine and the admission lanes agree
set -eu
cd "$(dirname "$0")/.."

quick=0
bench_smoke=0
scenario_smoke=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --scenario-smoke) scenario_smoke=1 ;;
    *) echo "verify.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release ==" >&2
cargo build --release

echo "== cargo test --workspace ==" >&2
cargo test --workspace -q

echo "== cargo test --test integration_serve (service loopback) ==" >&2
cargo test -q --test integration_serve

if [ "$quick" -eq 1 ]; then
  echo "verify.sh: quick gates passed (lint/fmt/clippy/benches skipped)" >&2
  exit 0
fi

echo "== rcr-lint (workspace static analysis) ==" >&2
# Hard gate: the project-specific linter must report zero violations
# across the lexical rules, the call-graph passes, the dataflow passes
# (unchecked-time-arithmetic, alloc-flow, float-reduction-order), and
# the unit-flow passes (db-linear-mix, unit-mismatch-at-call,
# rate-count-mix). Its per-rule summary (including justified
# suppressions) goes to stderr. CI sets RCR_LINT_FORMAT=github so
# findings annotate the PR diff.
cargo run -q --release -p rcr-lint -- "--format=${RCR_LINT_FORMAT:-human}"

echo "== rcr-lint SARIF log (emit + parse check) ==" >&2
# The SARIF artifact CI uploads must always be well-formed JSON, even
# on a green run — emit it (|| true: a failing run above already
# exited; here findings may legitimately exist under --no-baseline
# consumers) and re-parse it with the linter's own JSON reader.
sarif_log="$(pwd)/target/rcr-lint.sarif"
cargo run -q --release -p rcr-lint -- --format=sarif > "$sarif_log" || true
cargo run -q --release -p rcr-lint -- --check-json "$sarif_log"

echo "== cargo fmt --check ==" >&2
cargo fmt --check

echo "== cargo clippy (warnings are errors) ==" >&2
cargo clippy --workspace --benches -- -D warnings

if [ "$bench_smoke" -eq 1 ]; then
  echo "== bench smoke + regression gate (vs BENCH_7.json) ==" >&2
  # Cargo runs bench binaries with the package directory as CWD, so the
  # JSON path must be absolute to land in the workspace target/.
  bench_json="$(pwd)/target/bench_current.json"
  # One retry: the gate compares fastest samples, but on a shared host a
  # sustained contention phase can degrade a whole smoke run. A genuine
  # regression fails both attempts; a noise phase rarely spans two.
  gate_ok=0
  for attempt in 1 2; do
    cargo bench -p rcr-bench --bench bench_kernels --features alloc-count -- \
      --smoke --save-json "$bench_json"
    if cargo run -q -p rcr-bench --bin bench_gate -- "$bench_json" BENCH_7.json; then
      gate_ok=1
      break
    fi
    echo "verify.sh: bench gate attempt $attempt failed" >&2
  done
  if [ "$gate_ok" -ne 1 ]; then
    echo "verify.sh: bench regression gate failed on both attempts" >&2
    exit 1
  fi
fi

if [ "$scenario_smoke" -eq 1 ]; then
  echo "== scenario smoke (10⁴-request closed-loop replay, exact books) ==" >&2
  cargo test -q --release --test integration_scenarios scenario_smoke
fi

echo "verify.sh: all gates passed" >&2
