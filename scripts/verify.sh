#!/usr/bin/env bash
# The full CI gate: release build, complete test suite, formatting, lints.
# Usage: scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release ==" >&2
cargo build --release

echo "== cargo test --workspace ==" >&2
cargo test --workspace -q

echo "== cargo fmt --check ==" >&2
cargo fmt --check

echo "== cargo clippy (warnings are errors) ==" >&2
cargo clippy --workspace -- -D warnings

echo "verify.sh: all gates passed" >&2
