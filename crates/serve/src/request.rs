//! The typed request/response model of the solver service.
//!
//! A [`SolveRequest`] names a service class, a deadline budget, a solver,
//! and a payload (either a concrete [`RraProblem`] or a compact
//! [`ScenarioSpec`] the service expands deterministically). Every request
//! is answered by exactly one [`SolveResponse`] whose [`Outcome`] is one
//! of *solved*, *rejected* (backpressure), *expired* (deadline missed),
//! or *failed* (solver error) — the service never drops a request
//! silently.

use rcr_qos::rra::{RraProblem, RraSolution};
use rcr_qos::workload::{Scenario, ScenarioConfig};
use rcr_qos::{QosClass, QosError};
use std::time::Duration;

/// Which RRA solver a request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Greedy max-gain assignment with rate repair — microseconds per
    /// solve, the default for interactive traffic.
    #[default]
    Greedy,
    /// Exact branch-and-bound over the convex relaxation — optimal with
    /// a certificate, milliseconds to seconds.
    Exact,
    /// Discrete PSO metaheuristic — near-optimal, tunable budget.
    Pso,
    /// Robust convex relaxation — hedges the assignment against channel
    /// uncertainty via a margin-discounted box QP whose KKT factor the
    /// service pre-builds per batch through `rcr_linalg::BatchFactor`.
    Robust,
}

impl SolverKind {
    /// Canonical lower-case wire name (`"greedy"`, `"exact"`, `"pso"`,
    /// `"robust"`).
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Greedy => "greedy",
            SolverKind::Exact => "exact",
            SolverKind::Pso => "pso",
            SolverKind::Robust => "robust",
        }
    }

    /// Parses a wire name, case-insensitively.
    pub fn from_name(name: &str) -> Option<SolverKind> {
        let name = name.trim();
        [
            SolverKind::Greedy,
            SolverKind::Exact,
            SolverKind::Pso,
            SolverKind::Robust,
        ]
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
    }
}

/// A compact, wire-friendly problem description: a single-class cell of
/// `users` on `resource_blocks`, realized deterministically from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Number of users in the cell.
    pub users: usize,
    /// Number of resource blocks.
    pub resource_blocks: usize,
    /// Channel-realization seed; the same `(class, spec)` always expands
    /// to the same problem, which is what makes fixed request traces
    /// bit-reproducible across service runs and worker counts.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Expands the spec into a concrete [`RraProblem`] whose every user
    /// carries `class`.
    ///
    /// # Errors
    /// Propagates scenario-generation failures as [`QosError`].
    pub fn to_problem(&self, class: QosClass) -> Result<RraProblem, QosError> {
        let config = ScenarioConfig::single_class(class, self.users, self.resource_blocks);
        Scenario::generate(&config, self.seed).map(|s| s.rra)
    }
}

/// What a request asks the service to solve.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A concrete problem instance, handed over by an in-process caller.
    Problem(Box<RraProblem>),
    /// A spec the service expands via [`ScenarioSpec::to_problem`] — the
    /// form the TCP wire protocol carries.
    Scenario(ScenarioSpec),
}

/// One unit of service work.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Caller-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Service class — selects the admission lane and batching policy.
    pub class: QosClass,
    /// Deadline budget measured from enqueue; a response after this
    /// budget reports [`Outcome::Expired`], never a late solution.
    pub deadline: Duration,
    /// Solver to run.
    pub solver: SolverKind,
    /// The problem.
    pub payload: Payload,
}

/// Why a request was refused admission (backpressure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The class's lane was at capacity — the explicit alternative to
    /// unbounded buffering.
    QueueFull {
        /// Lane depth observed at enqueue.
        depth: usize,
        /// The lane's configured capacity.
        capacity: usize,
    },
    /// The service is shutting down and no longer admits work.
    ShuttingDown,
}

/// Where on its path a request's deadline was missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpiryPhase {
    /// Already past deadline when enqueue was attempted.
    AtEnqueue,
    /// Expired while waiting in its lane.
    InQueue,
    /// The solve finished after the deadline; the solution is withheld
    /// so a "solved" response always means "solved in time".
    AfterSolve,
}

/// A missed deadline, with where and by how much.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineMissed {
    /// Where the miss was detected.
    pub phase: ExpiryPhase,
    /// How far past the deadline the request was at detection.
    pub late_by: Duration,
}

/// The solved portion of a response.
#[derive(Debug, Clone)]
pub struct Solved {
    /// The allocation.
    pub solution: RraSolution,
    /// How many requests shared the batch this one was solved in.
    pub batch_size: usize,
}

/// Exactly one of these describes every request's fate.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Solved within deadline.
    Solved(Solved),
    /// Refused admission.
    Rejected(RejectReason),
    /// Deadline missed.
    Expired(DeadlineMissed),
    /// The solver itself failed.
    Failed(String),
}

impl Outcome {
    /// Canonical wire tag of the variant.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Solved(_) => "solved",
            Outcome::Rejected(_) => "rejected",
            Outcome::Expired(_) => "expired",
            Outcome::Failed(_) => "failed",
        }
    }
}

/// The service's answer to one [`SolveRequest`].
#[derive(Debug, Clone)]
pub struct SolveResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The request's service class.
    pub class: QosClass,
    /// What happened.
    pub outcome: Outcome,
    /// Time spent queued (enqueue → batch drain; zero for requests never
    /// admitted).
    pub queue_time: Duration,
    /// Time spent solving (zero for requests never solved).
    pub solve_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_names_round_trip() {
        for kind in [
            SolverKind::Greedy,
            SolverKind::Exact,
            SolverKind::Pso,
            SolverKind::Robust,
        ] {
            assert_eq!(SolverKind::from_name(kind.name()), Some(kind));
            assert_eq!(
                SolverKind::from_name(&kind.name().to_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(SolverKind::from_name("simplex"), None);
        assert_eq!(SolverKind::default(), SolverKind::Greedy);
    }

    #[test]
    fn scenario_spec_expands_deterministically() {
        let spec = ScenarioSpec {
            users: 3,
            resource_blocks: 6,
            seed: 9,
        };
        let a = spec.to_problem(QosClass::Embb).unwrap();
        let b = spec.to_problem(QosClass::Embb).unwrap();
        assert_eq!(a.min_rates_bps, b.min_rates_bps);
        assert_eq!(a.users(), 3);
        assert_eq!(a.resource_blocks(), 6);
        // Class changes the rate floors.
        let c = spec.to_problem(QosClass::Mmtc).unwrap();
        assert!(c.min_rates_bps[0] < a.min_rates_bps[0]);
    }

    #[test]
    fn outcome_tags() {
        assert_eq!(Outcome::Failed("x".into()).tag(), "failed");
        assert_eq!(
            Outcome::Rejected(RejectReason::ShuttingDown).tag(),
            "rejected"
        );
    }
}
