//! The long-running solver service: admission → lanes → dynamic batcher
//! → worker-pool fan-out → responses.
//!
//! One batcher thread owns the [`AdmissionQueue`]; submitters (the
//! in-process [`Client`], or TCP connection threads in [`crate::wire`])
//! enqueue under a mutex and wake the batcher through a condvar. The
//! batcher sweeps expired entries, drains the next ready batch, and fans
//! it across a persistent [`rcr_runtime::WorkerPool`] via the same
//! [`rcr_runtime::BatchSolve`] seam the offline batch APIs use.
//!
//! **Determinism.** A request's solution depends only on its own problem,
//! solver, and seed — never on batch composition, lane timing, or worker
//! count. Per-request PSO seeds derive from `seed_stream(base, id)`, so a
//! fixed request trace produces bit-identical solver outputs at any
//! `workers` setting; only timing metrics vary.
//!
//! **Deadline safety.** Expiry is checked at enqueue, at every batcher
//! wakeup, and again after the solve completes; a request whose solve
//! finished late is answered `Expired`, so a `Solved` response always
//! means solved *within* its deadline.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{AdmissionQueue, EnqueueRejection, QueuePolicy, Queued};
use crate::request::{
    DeadlineMissed, ExpiryPhase, Outcome, Payload, RejectReason, SolveRequest, SolveResponse,
    Solved, SolverKind,
};
use crate::reuse::{self, ReuseCache, ReuseConfig};
use crate::ServeError;
use rcr_minlp::BnbSettings;
use rcr_pso::swarm::PsoSettings;
use rcr_qos::robust::{self, RobustPlan};
use rcr_qos::rra::{self, RraProblem, RraSolution};
use rcr_qos::{QosClass, QosError};
use rcr_runtime::{seed_stream, BatchSolve, WorkerPool};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for batch fan-out: `0` = auto (`RCR_WORKERS`, with
    /// `auto` resolving to the machine's parallelism, else serial).
    pub workers: usize,
    /// Admission and batching policy per class lane.
    pub queue: QueuePolicy,
    /// Branch-and-bound settings for [`SolverKind::Exact`] requests.
    pub bnb: BnbSettings,
    /// PSO settings for [`SolverKind::Pso`] requests. The configured
    /// `seed` is a *base*: each request's swarm seed is derived from it
    /// and the request id, so results are per-request deterministic and
    /// independent of batching.
    pub pso: PsoSettings,
    /// Exact-match solution reuse (disabled by default). See
    /// [`crate::reuse`] for the determinism contract.
    pub reuse: ReuseConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue: QueuePolicy::default(),
            bnb: BnbSettings::default(),
            pso: PsoSettings {
                swarm_size: 12,
                max_iter: 40,
                ..Default::default()
            },
            reuse: ReuseConfig::default(),
        }
    }
}

/// Solver dispatch shared by every batch; `BatchSolve::solve_item` is the
/// unit the pool fans out.
#[derive(Debug)]
struct Engine {
    bnb: BnbSettings,
    pso: PsoSettings,
    reuse: Option<ReuseCache>,
}

/// One item of a drained batch, ready for the pool.
#[derive(Debug)]
struct WorkItem {
    problem: RraProblem,
    solver: SolverKind,
    request_id: u64,
    /// Pre-built robust plan from the batch pre-factor phase; `None` for
    /// non-robust items (and for robust items whose planning failed — the
    /// dispatch falls back to an inline plan so the planning error
    /// surfaces through the normal solve path).
    plan: Option<RobustPlan>,
}

impl Engine {
    fn solve_one(&self, item: &WorkItem) -> Result<RraSolution, QosError> {
        if let Some(cache) = &self.reuse {
            if reuse::cacheable(item.solver) {
                if let Some(hit) = cache.get(item.solver, &item.problem) {
                    // Bit-identical to a fresh solve: the cache only
                    // stores deterministic solver kinds keyed bit-exact.
                    return Ok(hit);
                }
            } else {
                cache.count_bypass();
            }
        }
        let result = self.dispatch(item);
        if let (Some(cache), Ok(solution)) = (&self.reuse, &result) {
            if reuse::cacheable(item.solver) {
                cache.put(item.solver, &item.problem, solution);
            }
        }
        result
    }

    fn dispatch(&self, item: &WorkItem) -> Result<RraSolution, QosError> {
        match item.solver {
            SolverKind::Greedy => rra::solve_greedy(&item.problem),
            SolverKind::Exact => rra::solve_exact(&item.problem, &self.bnb),
            SolverKind::Pso => {
                // Per-request stream off the configured base seed: the
                // same request solves identically in any batch.
                let settings = PsoSettings {
                    seed: seed_stream(self.pso.seed, item.request_id),
                    // Item-level parallelism only: nested swarm fan-out
                    // would oversubscribe the pool.
                    workers: 1,
                    ..self.pso
                };
                rra::solve_pso(&item.problem, &settings)
            }
            SolverKind::Robust => match &item.plan {
                // The batch pre-factor phase already built the KKT
                // Cholesky; this solve runs the ADMM iterations only.
                Some(plan) => robust::solve_robust(&item.problem, plan),
                None => robust::solve_robust_auto(&item.problem),
            },
        }
    }
}

impl BatchSolve for Engine {
    type Item = WorkItem;
    type Output = (Result<RraSolution, QosError>, Duration);

    fn solve_item(&self, _index: usize, item: &WorkItem) -> Self::Output {
        // rcr-lint: allow(determinism-taint, reason = "per-item wall time is deadline telemetry; the solution payload in .0 is clock-free")
        let start = Instant::now();
        let result = self.solve_one(item);
        (result, start.elapsed())
    }
}

/// A queued job: everything needed to answer the request later. The
/// class lives on the [`Queued`] wrapper, not here.
#[derive(Debug)]
struct Job {
    id: u64,
    solver: SolverKind,
    problem: RraProblem,
    responder: Sender<SolveResponse>,
}

#[derive(Debug)]
struct State {
    queue: AdmissionQueue<Job>,
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    wakeup: Condvar,
    metrics: Mutex<Metrics>,
    pool: WorkerPool,
    engine: Arc<Engine>,
}

impl Shared {
    fn snapshot(&self) -> MetricsSnapshot {
        let (high_water, lane_high_waters) = {
            let state = self.state.lock().expect("serve: state mutex poisoned");
            (
                state.queue.depth_high_water(),
                state.queue.lane_high_waters(),
            )
        };
        let reuse = self
            .engine
            .reuse
            .as_ref()
            .map(ReuseCache::counters)
            .unwrap_or_default();
        self.metrics
            .lock()
            .expect("serve: metrics mutex poisoned")
            .snapshot(high_water, lane_high_waters, reuse)
    }
}

/// A pending response, returned by [`Client::submit`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<SolveResponse>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    /// [`ServeError::ChannelClosed`] if the service dropped the request
    /// without responding (it never does under normal operation).
    pub fn wait(self) -> Result<SolveResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ChannelClosed)
    }

    /// Non-blocking poll; `None` until the response is ready.
    pub fn poll(&self) -> Option<SolveResponse> {
        self.rx.try_recv().ok()
    }
}

/// A cheap cloneable handle for submitting requests.
#[derive(Debug, Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Submits a request and returns a [`Ticket`] for its response.
    /// Admission outcomes (rejected / already-expired / payload
    /// conversion failure) are decided synchronously and delivered
    /// through the ticket immediately.
    pub fn submit(&self, request: SolveRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        self.submit_with(request, tx);
        Ticket { rx }
    }

    /// Like [`Client::submit`], but routes the response into an existing
    /// channel — used by connection handlers multiplexing many requests
    /// onto one writer.
    pub fn submit_with(&self, request: SolveRequest, responder: Sender<SolveResponse>) {
        let SolveRequest {
            id,
            class,
            deadline,
            solver,
            payload,
        } = request;
        let respond = |outcome: Outcome| {
            let _ = responder.send(SolveResponse {
                id,
                class,
                outcome,
                queue_time: Duration::ZERO,
                solve_time: Duration::ZERO,
            });
        };

        // Payload conversion happens on the submitter's thread: cheap,
        // and conversion errors never occupy a lane slot.
        let problem = match payload {
            Payload::Problem(p) => *p,
            Payload::Scenario(spec) => match spec.to_problem(class) {
                Ok(p) => p,
                Err(e) => {
                    self.count(class, |c| c.failed += 1);
                    respond(Outcome::Failed(e.to_string()));
                    return;
                }
            },
        };

        let now = Instant::now();
        // A client-supplied deadline large enough to overflow `Instant`
        // is effectively "never": clamp to ~30 years out (double failure
        // would need centuries of uptime; fall back to immediate expiry
        // rather than panic).
        const EFFECTIVELY_NEVER: Duration = Duration::from_secs(30 * 365 * 86_400);
        let deadline_at = now
            .checked_add(deadline)
            .or_else(|| now.checked_add(EFFECTIVELY_NEVER))
            .unwrap_or(now);
        let job = Job {
            id,
            solver,
            problem,
            responder: responder.clone(),
        };

        let mut state = self
            .shared
            .state
            .lock()
            .expect("serve: state mutex poisoned");
        if state.shutdown {
            drop(state);
            self.count(class, |c| c.rejected += 1);
            respond(Outcome::Rejected(RejectReason::ShuttingDown));
            return;
        }
        match state.queue.enqueue(job, class, now, deadline_at) {
            Ok(()) => {
                drop(state);
                self.count(class, |c| c.admitted += 1);
                self.shared.wakeup.notify_all();
            }
            Err(EnqueueRejection::QueueFull {
                depth, capacity, ..
            }) => {
                drop(state);
                self.count(class, |c| c.rejected += 1);
                respond(Outcome::Rejected(RejectReason::QueueFull {
                    depth,
                    capacity,
                }));
            }
            Err(EnqueueRejection::AlreadyExpired { late_by, .. }) => {
                drop(state);
                self.count(class, |c| c.expired += 1);
                respond(Outcome::Expired(DeadlineMissed {
                    phase: ExpiryPhase::AtEnqueue,
                    late_by,
                }));
            }
        }
    }

    /// Submits and blocks for the response.
    ///
    /// # Errors
    /// See [`Ticket::wait`].
    pub fn solve(&self, request: SolveRequest) -> Result<SolveResponse, ServeError> {
        self.submit(request).wait()
    }

    /// A point-in-time copy of the service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    fn count(&self, class: QosClass, f: impl FnOnce(&mut crate::metrics::ClassCounters)) {
        let mut m = self
            .shared
            .metrics
            .lock()
            .expect("serve: metrics mutex poisoned");
        f(m.class_mut(class));
    }
}

/// The running service; dropping it (or calling [`Service::shutdown`])
/// drains the queue and joins the batcher.
#[derive(Debug)]
pub struct Service {
    shared: Arc<Shared>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Spawns the batcher thread and worker pool.
    ///
    /// # Errors
    /// [`ServeError::InvalidPolicy`] if the queue policy is invalid
    /// (e.g. a lane with `max_batch == 0`); nothing is spawned.
    pub fn spawn(config: ServiceConfig) -> Result<Service, ServeError> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: AdmissionQueue::new(&config.queue)?,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            metrics: Mutex::new(Metrics::default()),
            pool: WorkerPool::new(config.workers),
            engine: Arc::new(Engine {
                bnb: config.bnb,
                pso: config.pso,
                reuse: ReuseCache::from_config(&config.reuse),
            }),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rcr-serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                // rcr-lint: allow(no-unwrap-in-lib, reason = "spawn fails only on OS resource exhaustion at service startup; the service cannot run without its batcher")
                .expect("serve: failed to spawn batcher thread")
        };
        Ok(Service {
            shared,
            batcher: Some(batcher),
        })
    }

    /// A submission handle.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A point-in-time copy of the service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Graceful shutdown: stops admitting, drains every queued request
    /// (in-flight batches included), joins the batcher, and returns the
    /// final metrics. Unexpired queued requests are *solved*, not
    /// dropped.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.shared.snapshot()
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .expect("serve: state mutex poisoned");
            state.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Delivers terminal responses for a set of expired queue entries.
fn respond_expired(shared: &Shared, expired: Vec<Queued<Job>>, now: Instant) {
    let mut metrics = shared
        .metrics
        .lock()
        .expect("serve: metrics mutex poisoned");
    for entry in expired {
        metrics.class_mut(entry.class).expired += 1;
        let late_by = now.saturating_duration_since(entry.deadline_at);
        let queue_time = now.saturating_duration_since(entry.enqueued_at);
        let _ = entry.item.responder.send(SolveResponse {
            id: entry.item.id,
            class: entry.class,
            outcome: Outcome::Expired(DeadlineMissed {
                phase: ExpiryPhase::InQueue,
                late_by,
            }),
            queue_time,
            solve_time: Duration::ZERO,
        });
    }
}

/// The batch pre-factor phase: plans every robust item's relaxation in
/// one `rcr_linalg::BatchFactor` pass (batched Gram eigendecompositions
/// and KKT Cholesky factorizations across the pool's worker count), so the
/// per-request factorizations amortize over the batch instead of running
/// inside each item's solve. Items whose planning fails keep `plan: None`
/// and fall back to the inline path, where the same error surfaces
/// through the normal solve outcome.
fn attach_robust_plans(shared: &Shared, items: &mut [WorkItem]) {
    let robust_idx: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.solver == SolverKind::Robust)
        .map(|(i, _)| i)
        .collect();
    if robust_idx.is_empty() {
        return;
    }
    let problems: Vec<&RraProblem> = robust_idx.iter().map(|&i| &items[i].problem).collect();
    let plans = robust::plan_batch(&problems, shared.pool.workers());
    for (&i, plan) in robust_idx.iter().zip(plans) {
        items[i].plan = plan.ok();
    }
}

/// Solves one drained batch on the pool and answers every entry.
fn solve_batch(shared: &Shared, entries: Vec<Queued<Job>>) {
    let drained_at = Instant::now();
    let batch_size = entries.len();
    let mut meta = Vec::with_capacity(batch_size);
    let mut items = Vec::with_capacity(batch_size);
    for entry in entries {
        items.push(WorkItem {
            problem: entry.item.problem,
            solver: entry.item.solver,
            request_id: entry.item.id,
            plan: None,
        });
        meta.push((
            entry.item.id,
            entry.class,
            entry.item.responder,
            entry.enqueued_at,
            entry.deadline_at,
        ));
    }
    attach_robust_plans(shared, &mut items);

    let engine = Arc::clone(&shared.engine);
    let outputs = shared.pool.solve_batch_on(engine, items);

    let completed_at = Instant::now();
    let mut metrics = shared
        .metrics
        .lock()
        .expect("serve: metrics mutex poisoned");
    metrics.batches += 1;
    for ((result, solve_time), (id, class, responder, enqueued_at, deadline_at)) in
        outputs.into_iter().zip(meta)
    {
        let queue_time = drained_at.saturating_duration_since(enqueued_at);
        metrics.queue_latency.record(queue_time);
        metrics.solve_latency.record(solve_time);
        let response_time = completed_at.saturating_duration_since(enqueued_at);
        metrics.response_latency.record(response_time);
        metrics.class_response_mut(class).record(response_time);
        let outcome = match result {
            // The deadline gate: a late solve is reported as expired, so
            // downstream consumers can rely on "solved ⇒ in time".
            Ok(_) if completed_at > deadline_at => {
                metrics.class_mut(class).expired += 1;
                Outcome::Expired(DeadlineMissed {
                    phase: ExpiryPhase::AfterSolve,
                    late_by: completed_at.saturating_duration_since(deadline_at),
                })
            }
            Ok(solution) => {
                metrics.class_mut(class).solved += 1;
                Outcome::Solved(Solved {
                    solution,
                    batch_size,
                })
            }
            Err(e) => {
                metrics.class_mut(class).failed += 1;
                Outcome::Failed(e.to_string())
            }
        };
        let _ = responder.send(SolveResponse {
            id,
            class,
            outcome,
            queue_time,
            solve_time,
        });
    }
}

fn batcher_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("serve: state mutex poisoned");
    loop {
        let now = Instant::now();
        let expired = state.queue.sweep_expired(now);
        let force = state.shutdown;
        let batch = state.queue.next_batch(now, force);
        let done = state.shutdown && state.queue.is_empty();

        if !expired.is_empty() || batch.is_some() {
            // Unlock while responding/solving so submitters keep flowing.
            drop(state);
            if !expired.is_empty() {
                respond_expired(shared, expired, now);
            }
            if let Some((_, entries)) = batch {
                solve_batch(shared, entries);
            }
            state = shared.state.lock().expect("serve: state mutex poisoned");
            continue;
        }
        if done {
            return;
        }

        state = match state.queue.next_wakeup(now) {
            None => shared
                .wakeup
                .wait(state)
                // rcr-lint: allow(no-unwrap-in-lib, reason = "condvar re-lock poisoning means a holder already panicked; propagate it")
                .expect("serve: state mutex poisoned"),
            Some(at) => {
                // `at <= now` only from clock races between the sweep
                // above and this read; the floor keeps that from
                // becoming a hot spin.
                let wait = at
                    .saturating_duration_since(now)
                    .max(Duration::from_micros(50));
                shared
                    .wakeup
                    .wait_timeout(state, wait)
                    // rcr-lint: allow(no-unwrap-in-lib, reason = "condvar re-lock poisoning means a holder already panicked; propagate it")
                    .expect("serve: state mutex poisoned")
                    .0
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::LanePolicy;
    use crate::request::ScenarioSpec;

    fn spec_request(id: u64, class: QosClass, deadline: Duration) -> SolveRequest {
        SolveRequest {
            id,
            class,
            deadline,
            solver: SolverKind::Greedy,
            payload: Payload::Scenario(ScenarioSpec {
                users: 3,
                resource_blocks: 6,
                seed: id,
            }),
        }
    }

    #[test]
    fn solves_a_request_end_to_end() {
        let service = Service::spawn(ServiceConfig::default()).unwrap();
        let client = service.client();
        let resp = client
            .solve(spec_request(1, QosClass::Urllc, Duration::from_secs(30)))
            .unwrap();
        assert_eq!(resp.id, 1);
        match &resp.outcome {
            Outcome::Solved(s) => {
                assert!(s.solution.total_rate_bps > 0.0);
                assert_eq!(s.batch_size, 1, "URLLC fires alone");
            }
            other => panic!("expected Solved, got {other:?}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Urllc).solved, 1);
        assert_eq!(snap.total_responses(), 1);
    }

    #[test]
    fn zero_deadline_expires_at_enqueue() {
        let service = Service::spawn(ServiceConfig::default()).unwrap();
        let resp = service
            .client()
            .solve(spec_request(2, QosClass::Embb, Duration::ZERO))
            .unwrap();
        assert!(matches!(
            resp.outcome,
            Outcome::Expired(DeadlineMissed {
                phase: ExpiryPhase::AtEnqueue,
                ..
            })
        ));
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Embb).expired, 1);
        assert_eq!(snap.class(QosClass::Embb).solved, 0);
    }

    #[test]
    fn full_lane_backpressures() {
        let config = ServiceConfig {
            queue: QueuePolicy {
                mmtc: LanePolicy {
                    capacity: 0,
                    max_batch: 8,
                    max_age: Duration::from_secs(1),
                },
                ..QueuePolicy::default()
            },
            ..ServiceConfig::default()
        };
        let service = Service::spawn(config).unwrap();
        let resp = service
            .client()
            .solve(spec_request(3, QosClass::Mmtc, Duration::from_secs(30)))
            .unwrap();
        assert!(matches!(
            resp.outcome,
            Outcome::Rejected(RejectReason::QueueFull { capacity: 0, .. })
        ));
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Mmtc).rejected, 1);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let service = Service::spawn(ServiceConfig::default()).unwrap();
        let client = service.client();
        // mMTC coalesces for up to 2 ms; submit then shut down at once —
        // the drain must still answer them all with solutions.
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| client.submit(spec_request(i, QosClass::Mmtc, Duration::from_secs(30))))
            .collect();
        let snap = service.shutdown();
        for t in tickets {
            let resp = t.wait().unwrap();
            assert!(
                matches!(resp.outcome, Outcome::Solved(_)),
                "got {:?}",
                resp.outcome
            );
        }
        assert_eq!(snap.class(QosClass::Mmtc).solved, 8);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let service = Service::spawn(ServiceConfig::default()).unwrap();
        let client = service.client();
        let snap = service.shutdown();
        assert_eq!(snap.total_responses(), 0);
        let resp = client
            .solve(spec_request(9, QosClass::Urllc, Duration::from_secs(30)))
            .unwrap();
        assert!(matches!(
            resp.outcome,
            Outcome::Rejected(RejectReason::ShuttingDown)
        ));
    }

    #[test]
    fn embb_requests_coalesce_into_batches() {
        // A generous age window so the whole burst lands in one batch.
        let config = ServiceConfig {
            workers: 2,
            queue: QueuePolicy {
                embb: LanePolicy {
                    capacity: 64,
                    max_batch: 8,
                    max_age: Duration::from_millis(200),
                },
                ..QueuePolicy::default()
            },
            ..ServiceConfig::default()
        };
        let service = Service::spawn(config).unwrap();
        let client = service.client();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| client.submit(spec_request(i, QosClass::Embb, Duration::from_secs(30))))
            .collect();
        let mut max_batch = 0usize;
        for t in tickets {
            match t.wait().unwrap().outcome {
                Outcome::Solved(s) => max_batch = max_batch.max(s.batch_size),
                other => panic!("expected Solved, got {other:?}"),
            }
        }
        assert!(max_batch >= 2, "no coalescing observed (max {max_batch})");
        let snap = service.shutdown();
        assert!(snap.batches < 8, "batches: {}", snap.batches);
        assert_eq!(snap.response_latency.count, 8);
    }

    #[test]
    fn reuse_serves_identical_requests_from_cache() {
        let config = ServiceConfig {
            reuse: ReuseConfig {
                enabled: true,
                capacity: 64,
            },
            ..ServiceConfig::default()
        };
        let service = Service::spawn(config).unwrap();
        let client = service.client();
        let request = |id: u64| SolveRequest {
            id,
            class: QosClass::Urllc,
            deadline: Duration::from_secs(30),
            solver: SolverKind::Greedy,
            payload: Payload::Scenario(ScenarioSpec {
                users: 3,
                resource_blocks: 6,
                seed: 5,
            }),
        };
        // Sequential solves of the *same* problem under different ids:
        // the second must hit and answer bit-identically.
        let first = client.solve(request(1)).unwrap();
        let second = client.solve(request(2)).unwrap();
        let rate = |resp: &SolveResponse| match &resp.outcome {
            Outcome::Solved(s) => s.solution.total_rate_bps,
            other => panic!("expected Solved, got {other:?}"),
        };
        assert_eq!(rate(&first).to_bits(), rate(&second).to_bits());
        let snap = service.shutdown();
        assert_eq!(snap.reuse.hits, 1);
        assert_eq!(snap.reuse.misses, 1);
        assert_eq!(snap.reuse.evictions, 0);
    }

    #[test]
    fn spawn_rejects_zero_max_batch_policy() {
        let config = ServiceConfig {
            queue: QueuePolicy {
                urllc: LanePolicy {
                    capacity: 8,
                    max_batch: 0,
                    max_age: Duration::ZERO,
                },
                ..QueuePolicy::default()
            },
            ..ServiceConfig::default()
        };
        match Service::spawn(config) {
            Err(ServeError::InvalidPolicy(crate::queue::PolicyError::ZeroMaxBatch { class })) => {
                assert_eq!(class, QosClass::Urllc)
            }
            other => panic!("expected InvalidPolicy, got {other:?}"),
        }
    }

    #[test]
    fn robust_requests_solve_identically_at_any_worker_count() {
        // The robust path adds a batch pre-factor phase; this pins that
        // neither the phase nor the worker count leaks into solutions.
        let solve_all = |workers: usize| -> Vec<u64> {
            let config = ServiceConfig {
                workers,
                queue: QueuePolicy {
                    embb: LanePolicy {
                        capacity: 64,
                        max_batch: 8,
                        max_age: Duration::from_millis(100),
                    },
                    ..QueuePolicy::default()
                },
                ..ServiceConfig::default()
            };
            let service = Service::spawn(config).unwrap();
            let client = service.client();
            let tickets: Vec<Ticket> = (0..6)
                .map(|i| {
                    client.submit(SolveRequest {
                        id: i,
                        class: QosClass::Embb,
                        deadline: Duration::from_secs(30),
                        solver: SolverKind::Robust,
                        payload: Payload::Scenario(ScenarioSpec {
                            users: 3,
                            resource_blocks: 6,
                            seed: 40 + i,
                        }),
                    })
                })
                .collect();
            let rates = tickets
                .into_iter()
                .map(|t| match t.wait().unwrap().outcome {
                    Outcome::Solved(s) => s.solution.total_rate_bps.to_bits(),
                    other => panic!("expected Solved, got {other:?}"),
                })
                .collect();
            service.shutdown();
            rates
        };
        assert_eq!(solve_all(1), solve_all(4));
    }

    #[test]
    fn failed_solves_are_reported_not_panicked() {
        // An infeasible exact solve returns Outcome::Failed.
        let spec = ScenarioSpec {
            users: 2,
            resource_blocks: 2,
            seed: 3,
        };
        let mut problem = spec.to_problem(QosClass::Embb).unwrap();
        problem.min_rates_bps = vec![1e15; 2];
        let service = Service::spawn(ServiceConfig::default()).unwrap();
        let resp = service
            .client()
            .solve(SolveRequest {
                id: 4,
                class: QosClass::Embb,
                deadline: Duration::from_secs(30),
                solver: SolverKind::Exact,
                payload: Payload::Problem(Box::new(problem)),
            })
            .unwrap();
        assert!(
            matches!(resp.outcome, Outcome::Failed(_)),
            "{:?}",
            resp.outcome
        );
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Embb).failed, 1);
    }
}
