//! Line-delimited JSON protocol over TCP (`std::net`, hand-rolled codec
//! like the rest of the workspace — no serde).
//!
//! One request per line, one response per line, answered in request
//! order per connection; responses echo the request `id` so callers can
//! correlate. The codec ([`encode_request`], [`parse_request`],
//! [`encode_response`], [`parse_response`]) is public so clients, tests,
//! and the example share one implementation.
//!
//! ```text
//! → {"id":1,"class":"URLLC","deadline_us":5000,"users":3,"rbs":6,"seed":42,"solver":"greedy"}
//! ← {"id":1,"class":"URLLC","outcome":"solved","owners":[0,2,1,0,2,1],
//!    "total_rate_bps":12345678.9,"spectral_efficiency":11.4,"qos_satisfied":true,
//!    "queue_us":12,"solve_us":345,"batch_size":1}
//! → {"op":"metrics"}
//! ← {"outcome":"metrics", ...per-class counters and latency summaries...}
//! ```
//!
//! Floats are emitted with Rust's shortest-round-trip formatting, so a
//! rate crossing the wire parses back to the identical `f64` bits —
//! which is what lets the loopback integration test assert bit-equal
//! solver outputs through the protocol.

use crate::json::{self, JsonValue};
use crate::request::{
    DeadlineMissed, ExpiryPhase, Outcome, Payload, RejectReason, ScenarioSpec, SolveRequest,
    SolveResponse, Solved, SolverKind,
};
use crate::service::Client;
use crate::MetricsSnapshot;
use rcr_qos::QosClass;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Encodes a request as one JSON line (no trailing newline).
///
/// Only [`Payload::Scenario`] requests are wire-encodable; a
/// [`Payload::Problem`] carries a full channel matrix and stays
/// in-process.
pub fn encode_request(request: &SolveRequest) -> Result<String, String> {
    let Payload::Scenario(spec) = &request.payload else {
        return Err("only scenario payloads are wire-encodable".into());
    };
    Ok(format!(
        "{{\"id\":{},\"class\":{},\"deadline_us\":{},\"users\":{},\"rbs\":{},\"seed\":{},\"solver\":{}}}",
        request.id,
        json::encode_str(request.class.name()),
        request.deadline.as_micros(),
        spec.users,
        spec.resource_blocks,
        spec.seed,
        json::encode_str(request.solver.name()),
    ))
}

/// What one parsed inbound line asks for.
#[derive(Debug)]
pub enum WireCommand {
    /// Solve a request.
    Solve(SolveRequest),
    /// Return a metrics snapshot.
    Metrics,
}

/// Parses one inbound line into a [`WireCommand`].
///
/// # Errors
/// A human-readable message describing the malformed field.
pub fn parse_request(line: &str) -> Result<WireCommand, String> {
    let value = json::parse(line)?;
    let obj = value.as_object().ok_or("request is not a JSON object")?;
    if let Some(op) = obj.get("op").and_then(JsonValue::as_str) {
        return match op {
            "metrics" => Ok(WireCommand::Metrics),
            other => Err(format!("unknown op {other:?}")),
        };
    }
    let id = obj.get_u64("id").ok_or("missing or non-integer \"id\"")?;
    let class_name = obj
        .get("class")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"class\"")?;
    let class =
        QosClass::from_name(class_name).ok_or_else(|| format!("unknown class {class_name:?}"))?;
    let deadline_us = obj
        .get_u64("deadline_us")
        .ok_or("missing or non-integer \"deadline_us\"")?;
    let solver = match obj.get("solver").and_then(JsonValue::as_str) {
        None => SolverKind::Greedy,
        Some(name) => {
            SolverKind::from_name(name).ok_or_else(|| format!("unknown solver {name:?}"))?
        }
    };
    let users = obj.get_u64("users").unwrap_or(3) as usize;
    let resource_blocks = obj.get_u64("rbs").unwrap_or(6) as usize;
    let seed = obj.get_u64("seed").unwrap_or(id);
    Ok(WireCommand::Solve(SolveRequest {
        id,
        class,
        deadline: Duration::from_micros(deadline_us),
        solver,
        payload: Payload::Scenario(ScenarioSpec {
            users,
            resource_blocks,
            seed,
        }),
    }))
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(response: &SolveResponse) -> String {
    let mut out = format!(
        "{{\"id\":{},\"class\":{},\"outcome\":{}",
        response.id,
        json::encode_str(response.class.name()),
        json::encode_str(response.outcome.tag()),
    );
    match &response.outcome {
        Outcome::Solved(s) => {
            out.push_str(",\"owners\":[");
            for (i, o) in s.solution.owners.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&o.to_string());
            }
            out.push_str(&format!(
                "],\"total_rate_bps\":{},\"spectral_efficiency\":{},\"qos_satisfied\":{},\"batch_size\":{}",
                json::encode_f64(s.solution.total_rate_bps),
                json::encode_f64(s.solution.spectral_efficiency),
                s.solution.qos_satisfied,
                s.batch_size,
            ));
        }
        Outcome::Rejected(RejectReason::QueueFull { depth, capacity }) => {
            out.push_str(&format!(
                ",\"reason\":\"queue_full\",\"depth\":{depth},\"capacity\":{capacity}"
            ));
        }
        Outcome::Rejected(RejectReason::ShuttingDown) => {
            out.push_str(",\"reason\":\"shutting_down\"");
        }
        Outcome::Expired(missed) => {
            let phase = match missed.phase {
                ExpiryPhase::AtEnqueue => "enqueue",
                ExpiryPhase::InQueue => "queue",
                ExpiryPhase::AfterSolve => "solve",
            };
            out.push_str(&format!(
                ",\"reason\":\"deadline_missed\",\"phase\":{},\"late_by_us\":{}",
                json::encode_str(phase),
                missed.late_by.as_micros(),
            ));
        }
        Outcome::Failed(message) => {
            out.push_str(&format!(",\"error\":{}", json::encode_str(message)));
        }
    }
    out.push_str(&format!(
        ",\"queue_us\":{},\"solve_us\":{}}}",
        response.queue_time.as_micros(),
        response.solve_time.as_micros(),
    ));
    out
}

/// Parses one response line back into a [`SolveResponse`].
///
/// The solved variant reconstructs owners, rates, and flags exactly
/// (floats round-trip bit-identically); the `power` breakdown is not
/// carried on the wire, so the embedded [`rcr_qos::rra::RraSolution`] has
/// an empty power allocation.
///
/// # Errors
/// A human-readable message describing the malformed field.
pub fn parse_response(line: &str) -> Result<SolveResponse, String> {
    let value = json::parse(line)?;
    let obj = value.as_object().ok_or("response is not a JSON object")?;
    let id = obj.get_u64("id").ok_or("missing \"id\"")?;
    let class_name = obj
        .get("class")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"class\"")?;
    let class =
        QosClass::from_name(class_name).ok_or_else(|| format!("unknown class {class_name:?}"))?;
    let tag = obj
        .get("outcome")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"outcome\"")?;
    let queue_time = Duration::from_micros(obj.get_u64("queue_us").unwrap_or(0));
    let solve_time = Duration::from_micros(obj.get_u64("solve_us").unwrap_or(0));
    let outcome = match tag {
        "solved" => {
            let owners = obj
                .get("owners")
                .and_then(JsonValue::as_array)
                .ok_or("solved response missing \"owners\"")?
                .iter()
                .map(|v| v.as_f64().map(|f| f as usize))
                .collect::<Option<Vec<usize>>>()
                .ok_or("non-numeric owner")?;
            let total_rate_bps = obj
                .get("total_rate_bps")
                .and_then(JsonValue::as_f64)
                .ok_or("missing \"total_rate_bps\"")?;
            let spectral_efficiency = obj
                .get("spectral_efficiency")
                .and_then(JsonValue::as_f64)
                .ok_or("missing \"spectral_efficiency\"")?;
            let qos_satisfied = obj
                .get("qos_satisfied")
                .and_then(JsonValue::as_bool)
                .ok_or("missing \"qos_satisfied\"")?;
            let batch_size = obj.get_u64("batch_size").unwrap_or(1) as usize;
            Outcome::Solved(Solved {
                solution: rcr_qos::rra::RraSolution {
                    owners,
                    power: rcr_qos::power::PowerSolution::empty(),
                    total_rate_bps,
                    spectral_efficiency,
                    qos_satisfied,
                },
                batch_size,
            })
        }
        "rejected" => match obj.get("reason").and_then(JsonValue::as_str) {
            Some("queue_full") => Outcome::Rejected(RejectReason::QueueFull {
                depth: obj.get_u64("depth").unwrap_or(0) as usize,
                capacity: obj.get_u64("capacity").unwrap_or(0) as usize,
            }),
            Some("shutting_down") => Outcome::Rejected(RejectReason::ShuttingDown),
            other => return Err(format!("unknown reject reason {other:?}")),
        },
        "expired" => {
            let phase = match obj.get("phase").and_then(JsonValue::as_str) {
                Some("enqueue") => ExpiryPhase::AtEnqueue,
                Some("queue") => ExpiryPhase::InQueue,
                Some("solve") => ExpiryPhase::AfterSolve,
                other => return Err(format!("unknown expiry phase {other:?}")),
            };
            Outcome::Expired(DeadlineMissed {
                phase,
                late_by: Duration::from_micros(obj.get_u64("late_by_us").unwrap_or(0)),
            })
        }
        "failed" => Outcome::Failed(
            obj.get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown error")
                .to_string(),
        ),
        other => return Err(format!("unknown outcome {other:?}")),
    };
    Ok(SolveResponse {
        id,
        class,
        outcome,
        queue_time,
        solve_time,
    })
}

/// Encodes a metrics snapshot as one JSON line.
pub fn encode_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"outcome\":\"metrics\"");
    for class in QosClass::ALL {
        let c = snapshot.class(class);
        let lat = snapshot.class_response_latency(class);
        out.push_str(&format!(
            ",{}:{{\"admitted\":{},\"rejected\":{},\"expired\":{},\"solved\":{},\"failed\":{},\
             \"lane_depth_high_water\":{},\"response_latency\":{{\"count\":{},\"p50_us\":{},\
             \"p99_us\":{},\"max_us\":{}}}}}",
            json::encode_str(class.name()),
            c.admitted,
            c.rejected,
            c.expired,
            c.solved,
            c.failed,
            snapshot.lane_high_water(class),
            lat.count,
            lat.p50.as_micros(),
            lat.p99.as_micros(),
            lat.max.as_micros(),
        ));
    }
    let lat = |name: &str, s: &crate::metrics::LatencySummary| {
        format!(
            ",{}:{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            json::encode_str(name),
            s.count,
            s.p50.as_micros(),
            s.p99.as_micros(),
            s.max.as_micros()
        )
    };
    out.push_str(&lat("queue_latency", &snapshot.queue_latency));
    out.push_str(&lat("solve_latency", &snapshot.solve_latency));
    out.push_str(&lat("response_latency", &snapshot.response_latency));
    out.push_str(&format!(
        ",\"reuse\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
        snapshot.reuse.hits, snapshot.reuse.misses, snapshot.reuse.evictions
    ));
    out.push_str(&format!(
        ",\"queue_depth_high_water\":{},\"batches\":{}}}",
        snapshot.queue_depth_high_water, snapshot.batches
    ));
    out
}

/// The TCP frontend: accepts connections and bridges lines to a
/// [`Client`]. Dropping the frontend stops the accept loop; established
/// connections close when their peer disconnects.
#[derive(Debug)]
pub struct TcpFrontend {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl TcpFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting.
    ///
    /// # Errors
    /// [`std::io::Error`] from bind/configuration.
    pub fn bind(addr: impl ToSocketAddrs, client: Client) -> std::io::Result<TcpFrontend> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("rcr-serve-accept".into())
                .spawn(move || accept_loop(&listener, &client, &stop))
                // rcr-lint: allow(no-unwrap-in-lib, reason = "spawn fails only on OS resource exhaustion at frontend startup; failing fast beats serving without an acceptor")
                .expect("serve: failed to spawn accept thread")
        };
        Ok(TcpFrontend {
            local_addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, client: &Client, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let client = client.clone();
                let _ = std::thread::Builder::new()
                    .name("rcr-serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &client);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Reads request lines, submits them without waiting (so batches can
/// form across a pipelined connection), and writes responses back in
/// request order from a dedicated writer thread.
fn handle_connection(stream: TcpStream, client: &Client) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let (ticket_tx, ticket_rx) = mpsc::channel::<WireReply>();
    let writer_handle = {
        let mut stream = stream;
        std::thread::Builder::new()
            .name("rcr-serve-write".into())
            .spawn(move || -> std::io::Result<()> {
                for reply in ticket_rx {
                    let line = match reply {
                        WireReply::Pending(rx) => match rx.recv() {
                            Ok(response) => encode_response(&response),
                            Err(_) => break, // service gone
                        },
                        WireReply::Immediate(line) => line,
                    };
                    stream.write_all(line.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                }
                Ok(())
            })
            // rcr-lint: allow(no-unwrap-in-lib, reason = "spawn fails only on OS resource exhaustion; a connection without its writer half is unusable anyway")
            .expect("serve: failed to spawn writer thread")
    };

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Ok(WireCommand::Solve(request)) => {
                let (tx, rx) = mpsc::channel();
                client.submit_with(request, tx);
                WireReply::Pending(rx)
            }
            Ok(WireCommand::Metrics) => WireReply::Immediate(encode_metrics(&client.metrics())),
            Err(message) => WireReply::Immediate(format!(
                "{{\"outcome\":\"error\",\"error\":{}}}",
                json::encode_str(&message)
            )),
        };
        if ticket_tx.send(reply).is_err() {
            break;
        }
    }
    drop(ticket_tx); // writer drains outstanding replies, then exits
    let _ = writer_handle.join();
    Ok(())
}

enum WireReply {
    Pending(mpsc::Receiver<SolveResponse>),
    Immediate(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64) -> SolveRequest {
        SolveRequest {
            id,
            class: QosClass::Urllc,
            deadline: Duration::from_micros(5000),
            solver: SolverKind::Greedy,
            payload: Payload::Scenario(ScenarioSpec {
                users: 3,
                resource_blocks: 6,
                seed: 42,
            }),
        }
    }

    #[test]
    fn request_round_trips() {
        let line = encode_request(&request(7)).unwrap();
        match parse_request(&line).unwrap() {
            WireCommand::Solve(parsed) => {
                assert_eq!(parsed.id, 7);
                assert_eq!(parsed.class, QosClass::Urllc);
                assert_eq!(parsed.deadline, Duration::from_micros(5000));
                assert_eq!(parsed.solver, SolverKind::Greedy);
                match parsed.payload {
                    Payload::Scenario(spec) => {
                        assert_eq!(
                            spec,
                            ScenarioSpec {
                                users: 3,
                                resource_blocks: 6,
                                seed: 42
                            }
                        );
                    }
                    other => panic!("unexpected payload {other:?}"),
                }
            }
            WireCommand::Metrics => panic!("parsed as metrics"),
        }
    }

    #[test]
    fn request_defaults_apply() {
        match parse_request(r#"{"id":3,"class":"embb","deadline_us":100}"#).unwrap() {
            WireCommand::Solve(parsed) => {
                assert_eq!(parsed.solver, SolverKind::Greedy);
                match parsed.payload {
                    Payload::Scenario(spec) => {
                        assert_eq!(spec.users, 3);
                        assert_eq!(spec.resource_blocks, 6);
                        assert_eq!(spec.seed, 3, "seed defaults to the id");
                    }
                    other => panic!("unexpected payload {other:?}"),
                }
            }
            WireCommand::Metrics => panic!("parsed as metrics"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"class":"embb","deadline_us":1}"#)
            .unwrap_err()
            .contains("id"));
        assert!(parse_request(r#"{"id":1,"class":"gold","deadline_us":1}"#)
            .unwrap_err()
            .contains("gold"));
        assert!(parse_request(r#"{"id":1,"class":"embb"}"#)
            .unwrap_err()
            .contains("deadline_us"));
        assert!(parse_request(r#"{"op":"reboot"}"#).is_err());
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            WireCommand::Metrics
        ));
    }

    #[test]
    fn solved_response_round_trips_bit_identically() {
        let solution = rcr_qos::rra::RraSolution {
            owners: vec![0, 2, 1],
            power: rcr_qos::power::PowerSolution::empty(),
            total_rate_bps: 12_345_678.901_234_5,
            spectral_efficiency: 0.1 + 0.2, // deliberately non-terminating
            qos_satisfied: true,
        };
        let response = SolveResponse {
            id: 11,
            class: QosClass::Embb,
            outcome: Outcome::Solved(Solved {
                solution: solution.clone(),
                batch_size: 4,
            }),
            queue_time: Duration::from_micros(12),
            solve_time: Duration::from_micros(345),
        };
        let parsed = parse_response(&encode_response(&response)).unwrap();
        assert_eq!(parsed.id, 11);
        assert_eq!(parsed.class, QosClass::Embb);
        assert_eq!(parsed.queue_time, Duration::from_micros(12));
        assert_eq!(parsed.solve_time, Duration::from_micros(345));
        match parsed.outcome {
            Outcome::Solved(s) => {
                assert_eq!(s.batch_size, 4);
                assert_eq!(s.solution.owners, solution.owners);
                assert_eq!(
                    s.solution.total_rate_bps.to_bits(),
                    solution.total_rate_bps.to_bits()
                );
                assert_eq!(
                    s.solution.spectral_efficiency.to_bits(),
                    solution.spectral_efficiency.to_bits()
                );
                assert!(s.solution.qos_satisfied);
            }
            other => panic!("expected Solved, got {other:?}"),
        }
    }

    #[test]
    fn terminal_outcomes_round_trip() {
        let cases = vec![
            Outcome::Rejected(RejectReason::QueueFull {
                depth: 9,
                capacity: 9,
            }),
            Outcome::Rejected(RejectReason::ShuttingDown),
            Outcome::Expired(DeadlineMissed {
                phase: ExpiryPhase::InQueue,
                late_by: Duration::from_micros(77),
            }),
            Outcome::Expired(DeadlineMissed {
                phase: ExpiryPhase::AfterSolve,
                late_by: Duration::ZERO,
            }),
            Outcome::Failed("water-filling diverged \"badly\"\n".into()),
        ];
        for outcome in cases {
            let response = SolveResponse {
                id: 1,
                class: QosClass::Mmtc,
                outcome,
                queue_time: Duration::ZERO,
                solve_time: Duration::ZERO,
            };
            let line = encode_response(&response);
            let parsed = parse_response(&line).unwrap();
            match (&response.outcome, &parsed.outcome) {
                (Outcome::Rejected(a), Outcome::Rejected(b)) => assert_eq!(a, b),
                (Outcome::Expired(a), Outcome::Expired(b)) => assert_eq!(a, b),
                (Outcome::Failed(a), Outcome::Failed(b)) => assert_eq!(a, b),
                (a, b) => panic!("variant mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn metrics_encode_is_valid_json() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.per_class[0].solved = 5;
        snapshot.lane_depth_high_water = [3, 0, 7];
        snapshot.per_class_response_latency[0] = crate::metrics::LatencySummary {
            count: 5,
            p50: Duration::from_micros(64),
            p99: Duration::from_micros(256),
            max: Duration::from_micros(300),
        };
        let line = encode_metrics(&snapshot);
        let value = json::parse(&line).unwrap();
        let obj = value.as_object().unwrap();
        assert_eq!(
            obj.get("outcome").and_then(JsonValue::as_str),
            Some("metrics")
        );
        assert_eq!(obj.get_u64("batches"), Some(0));
        let urllc = obj
            .get("URLLC")
            .and_then(JsonValue::as_object)
            .expect("URLLC block");
        assert_eq!(urllc.get_u64("solved"), Some(5));
        assert_eq!(urllc.get_u64("lane_depth_high_water"), Some(3));
        let lat = urllc
            .get("response_latency")
            .and_then(JsonValue::as_object)
            .expect("per-class latency block");
        assert_eq!(lat.get_u64("count"), Some(5));
        assert_eq!(lat.get_u64("p50_us"), Some(64));
        assert_eq!(lat.get_u64("p99_us"), Some(256));
        assert_eq!(lat.get_u64("max_us"), Some(300));
        let mmtc = obj
            .get("mMTC")
            .and_then(JsonValue::as_object)
            .expect("mMTC block");
        assert_eq!(mmtc.get_u64("lane_depth_high_water"), Some(7));
    }
}
