//! Deadline-aware admission queue with per-class priority lanes.
//!
//! Three lanes — one per [`QosClass`], visited in priority order
//! (URLLC → eMBB → mMTC). Within a lane, requests are ordered
//! earliest-deadline-first with arrival order as the tie-break, and lane
//! depth is bounded: a full lane **rejects** at enqueue (backpressure)
//! instead of buffering without limit, and a request whose deadline has
//! passed is **expired** explicitly — enqueue, [`AdmissionQueue::sweep_expired`],
//! and batch formation together account for every admitted request
//! exactly once.
//!
//! The queue is a plain data structure: all methods take the current
//! [`Instant`] as an argument, so edge cases (zero capacity, pre-expired
//! deadlines, whole-lane simultaneous expiry) are unit-testable with
//! synthetic clocks and no threads.

use rcr_qos::QosClass;
use std::time::{Duration, Instant};

/// Per-lane admission and batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LanePolicy {
    /// Maximum queued requests; enqueue into a full lane is rejected.
    pub capacity: usize,
    /// Largest batch drained at once. Must be at least 1 — a zero would
    /// make the lane undrainable, so [`QueuePolicy::validate`] rejects it
    /// at construction instead of silently clamping.
    pub max_batch: usize,
    /// Oldest age a queued request may reach before the lane fires a
    /// partial batch. `ZERO` fires immediately on any queued request.
    pub max_age: Duration,
}

/// Intra-lane ordering discipline.
///
/// [`QueueDiscipline::Edf`] is the production default; `Fifo` exists as
/// the experimental control the scenario harness compares it against
/// ("EDF beats FIFO at high utilization" is a *measured* claim, so the
/// strawman has to be runnable, not hypothetical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Earliest-deadline-first, arrival order as the tie-break.
    #[default]
    Edf,
    /// Pure arrival order, deadlines ignored for ordering (they still
    /// expire entries).
    Fifo,
}

/// Policy for all three lanes.
///
/// Defaults encode the classes' semantics: URLLC never waits (batch of
/// 1, fired immediately), eMBB coalesces briefly for throughput, mMTC
/// coalesces the longest and queues the deepest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePolicy {
    /// URLLC lane.
    pub urllc: LanePolicy,
    /// eMBB lane.
    pub embb: LanePolicy,
    /// mMTC lane.
    pub mmtc: LanePolicy,
    /// Ordering within every lane (EDF unless experimenting).
    pub discipline: QueueDiscipline,
}

impl Default for QueuePolicy {
    fn default() -> Self {
        QueuePolicy {
            urllc: LanePolicy {
                capacity: 256,
                max_batch: 1,
                max_age: Duration::ZERO,
            },
            embb: LanePolicy {
                capacity: 512,
                max_batch: 16,
                max_age: Duration::from_micros(500),
            },
            mmtc: LanePolicy {
                capacity: 1024,
                max_batch: 32,
                max_age: Duration::from_millis(2),
            },
            discipline: QueueDiscipline::Edf,
        }
    }
}

impl QueuePolicy {
    /// The policy of `class`'s lane.
    pub fn lane(&self, class: QosClass) -> &LanePolicy {
        match class {
            QosClass::Urllc => &self.urllc,
            QosClass::Embb => &self.embb,
            QosClass::Mmtc => &self.mmtc,
        }
    }

    /// Checks the policy's invariants: every lane's `max_batch` must be at
    /// least 1 (a zero-batch lane could never drain).
    ///
    /// # Errors
    /// [`PolicyError::ZeroMaxBatch`] naming the first offending lane.
    pub fn validate(&self) -> Result<(), PolicyError> {
        for class in QosClass::ALL {
            if self.lane(class).max_batch == 0 {
                return Err(PolicyError::ZeroMaxBatch { class });
            }
        }
        Ok(())
    }
}

/// A misconfigured [`QueuePolicy`], detected at construction rather than
/// silently papered over at drain time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// A lane was configured with `max_batch == 0`.
    ZeroMaxBatch {
        /// The offending lane's class.
        class: QosClass,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::ZeroMaxBatch { class } => {
                write!(f, "{} lane has max_batch = 0 (must be >= 1)", class.name())
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// An entry as it sits in (or leaves) a lane.
#[derive(Debug, Clone)]
pub struct Queued<T> {
    /// The caller's payload.
    pub item: T,
    /// The lane it was admitted to.
    pub class: QosClass,
    /// When it was admitted.
    pub enqueued_at: Instant,
    /// Absolute deadline; at this instant the entry is expired.
    pub deadline_at: Instant,
    /// Admission sequence number — the EDF tie-break, so equal deadlines
    /// drain in arrival order.
    seq: u64,
}

/// Why an enqueue was refused; carries the item back to the caller so a
/// response can still be delivered.
#[derive(Debug)]
pub enum EnqueueRejection<T> {
    /// The lane was full — explicit backpressure.
    QueueFull {
        /// The refused item.
        item: T,
        /// Lane depth at the attempt.
        depth: usize,
        /// Lane capacity.
        capacity: usize,
    },
    /// The deadline had already passed at enqueue.
    AlreadyExpired {
        /// The refused item.
        item: T,
        /// How far past the deadline the attempt was.
        late_by: Duration,
    },
}

#[derive(Debug)]
struct Lane<T> {
    policy: LanePolicy,
    discipline: QueueDiscipline,
    // EDF: sorted ascending by (deadline_at, seq), index 0 is the front.
    // FIFO: sorted by seq (arrival), index 0 is the oldest arrival.
    entries: Vec<Queued<T>>,
    /// Highest depth this lane ever reached.
    high_water: usize,
}

impl<T> Lane<T> {
    fn oldest_enqueue(&self) -> Option<Instant> {
        self.entries.iter().map(|e| e.enqueued_at).min()
    }

    /// The earliest deadline queued in this lane. Under EDF that is the
    /// front entry; under FIFO the front is the oldest *arrival*, so the
    /// whole lane is scanned.
    fn urgent_deadline(&self) -> Option<Instant> {
        match self.discipline {
            QueueDiscipline::Edf => self.entries.first().map(|e| e.deadline_at),
            QueueDiscipline::Fifo => self.entries.iter().map(|e| e.deadline_at).min(),
        }
    }

    /// Whether this lane should fire a batch at `now`.
    fn ready(&self, now: Instant) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        if self.entries.len() >= self.policy.max_batch {
            return true;
        }
        // Age trigger: the oldest entry has waited its fill, or the most
        // urgent deadline is inside the coalescing window (waiting the
        // full window would risk expiring it for nothing).
        let age_due = self
            .oldest_enqueue()
            .is_some_and(|t| now.saturating_duration_since(t) >= self.policy.max_age);
        // An overflowing window end means the window covers every
        // representable instant, so any deadline counts as close.
        let deadline_close = self
            .urgent_deadline()
            .is_some_and(|d| now.checked_add(self.policy.max_age).is_none_or(|w| d <= w));
        age_due || deadline_close
    }
}

/// When the deadline-proximity trigger for an entry expiring at
/// `deadline_at` should wake the batcher: `max_age` ahead of the deadline,
/// so the batch still fires with slack. When that subtraction underflows
/// (a deadline within `max_age` of the `Instant` epoch) the trigger clamps
/// to `now` — waking immediately, with whatever slack remains. The old
/// fallback of `deadline_at` itself scheduled a zero-slack wake that could
/// only ever expire the entry.
///
/// In the current call graph the underflow branch is a defensive backstop:
/// [`Lane::ready`] reports ready (and [`AdmissionQueue::next_wakeup`]
/// short-circuits to `now`) whenever `deadline_at <= now + max_age`, which
/// covers every instant at which the subtraction could underflow.
fn proximity_trigger(deadline_at: Instant, max_age: Duration, now: Instant) -> Instant {
    deadline_at.checked_sub(max_age).unwrap_or(now)
}

/// The three-lane deadline-aware queue. See the module docs.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    lanes: [Lane<T>; 3],
    seq: u64,
    depth_high_water: usize,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue under `policy`.
    ///
    /// # Errors
    /// [`PolicyError`] when the policy fails [`QueuePolicy::validate`].
    pub fn new(policy: &QueuePolicy) -> Result<AdmissionQueue<T>, PolicyError> {
        policy.validate()?;
        let lane = |p: &LanePolicy| Lane {
            policy: *p,
            discipline: policy.discipline,
            entries: Vec::new(),
            high_water: 0,
        };
        Ok(AdmissionQueue {
            lanes: [lane(&policy.urllc), lane(&policy.embb), lane(&policy.mmtc)],
            seq: 0,
            depth_high_water: 0,
        })
    }

    fn lane(&self, class: QosClass) -> &Lane<T> {
        &self.lanes[class.priority_rank()]
    }

    /// Attempts to admit `item` into `class`'s lane.
    ///
    /// # Errors
    /// [`EnqueueRejection::AlreadyExpired`] when `deadline_at <= now`,
    /// [`EnqueueRejection::QueueFull`] when the lane is at capacity; both
    /// return the item so the caller can answer the request.
    pub fn enqueue(
        &mut self,
        item: T,
        class: QosClass,
        now: Instant,
        deadline_at: Instant,
    ) -> Result<(), EnqueueRejection<T>> {
        if deadline_at <= now {
            return Err(EnqueueRejection::AlreadyExpired {
                item,
                late_by: now.saturating_duration_since(deadline_at),
            });
        }
        let lane = &mut self.lanes[class.priority_rank()];
        if lane.entries.len() >= lane.policy.capacity {
            return Err(EnqueueRejection::QueueFull {
                item,
                depth: lane.entries.len(),
                capacity: lane.policy.capacity,
            });
        }
        let seq = self.seq;
        self.seq += 1;
        let entry = Queued {
            item,
            class,
            enqueued_at: now,
            deadline_at,
            seq,
        };
        match lane.discipline {
            QueueDiscipline::Edf => {
                let at = lane
                    .entries
                    .partition_point(|e| (e.deadline_at, e.seq) <= (entry.deadline_at, entry.seq));
                lane.entries.insert(at, entry);
            }
            // Arrival order: seq is monotone, so pushing keeps the sort.
            QueueDiscipline::Fifo => lane.entries.push(entry),
        }
        lane.high_water = lane.high_water.max(lane.entries.len());
        self.depth_high_water = self.depth_high_water.max(self.depth());
        Ok(())
    }

    /// Removes and returns every entry whose deadline has passed at
    /// `now`, across all lanes — including a whole lane expiring at
    /// once. Swept entries are *never* returned by
    /// [`AdmissionQueue::next_batch`] afterwards.
    pub fn sweep_expired(&mut self, now: Instant) -> Vec<Queued<T>> {
        let mut expired = Vec::new();
        for lane in &mut self.lanes {
            match lane.discipline {
                QueueDiscipline::Edf => {
                    // EDF order ⇒ expired entries form a prefix of the lane.
                    let cut = lane.entries.partition_point(|e| e.deadline_at <= now);
                    expired.extend(lane.entries.drain(..cut));
                }
                QueueDiscipline::Fifo => {
                    // Arrival order says nothing about deadlines: expired
                    // entries can sit anywhere, so partition the whole
                    // lane, keeping the survivors' arrival order.
                    let mut live = Vec::with_capacity(lane.entries.len());
                    for e in lane.entries.drain(..) {
                        if e.deadline_at <= now {
                            expired.push(e);
                        } else {
                            live.push(e);
                        }
                    }
                    lane.entries = live;
                }
            }
        }
        expired
    }

    /// Drains the next ready batch, visiting lanes in priority order.
    ///
    /// A lane fires when it holds `max_batch` entries, when its oldest
    /// entry has waited `max_age`, or when its most urgent deadline falls
    /// inside the coalescing window; `force` fires any non-empty lane
    /// regardless (shutdown drain). At most `max_batch` entries are
    /// drained, earliest deadline first. Callers should
    /// [`AdmissionQueue::sweep_expired`] first so a batch never contains
    /// an already-expired entry.
    pub fn next_batch(&mut self, now: Instant, force: bool) -> Option<(QosClass, Vec<Queued<T>>)> {
        for (rank, lane) in self.lanes.iter_mut().enumerate() {
            if lane.entries.is_empty() || !(force || lane.ready(now)) {
                continue;
            }
            let take = lane.policy.max_batch.min(lane.entries.len());
            let batch: Vec<Queued<T>> = lane.entries.drain(..take).collect();
            return Some((QosClass::ALL[rank], batch));
        }
        None
    }

    /// The next instant at which something becomes actionable: a batch
    /// trigger (age fill or deadline proximity) or an expiry sweep.
    /// `None` when the queue is empty. A returned instant `<= now` means
    /// "act immediately".
    pub fn next_wakeup(&self, now: Instant) -> Option<Instant> {
        let mut wake: Option<Instant> = None;
        let mut consider = |t: Instant| {
            wake = Some(match wake {
                Some(w) => w.min(t),
                None => t,
            });
        };
        for lane in &self.lanes {
            if lane.entries.is_empty() {
                continue;
            }
            if lane.ready(now) {
                return Some(now);
            }
            // An age trigger past the representable range can never fire
            // within the process lifetime — nothing to schedule for it.
            if let Some(fill) = lane
                .oldest_enqueue()
                .and_then(|oldest| oldest.checked_add(lane.policy.max_age))
            {
                consider(fill);
            }
            if let Some(urgent) = lane.urgent_deadline() {
                // Deadline-proximity trigger, then the expiry itself.
                consider(proximity_trigger(urgent, lane.policy.max_age, now));
                consider(urgent);
            }
        }
        wake
    }

    /// Total queued entries across lanes.
    pub fn depth(&self) -> usize {
        self.lanes.iter().map(|l| l.entries.len()).sum()
    }

    /// Queued entries in `class`'s lane.
    pub fn lane_depth(&self, class: QosClass) -> usize {
        self.lane(class).entries.len()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.depth() == 0
    }

    /// Highest total depth ever observed (for metrics).
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Highest depth `class`'s lane ever reached.
    pub fn lane_depth_high_water(&self, class: QosClass) -> usize {
        self.lane(class).high_water
    }

    /// Per-lane high waters indexed by [`QosClass::priority_rank`].
    pub fn lane_high_waters(&self) -> [usize; 3] {
        [
            self.lanes[0].high_water,
            self.lanes[1].high_water,
            self.lanes[2].high_water,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(capacity: usize, max_batch: usize, max_age_us: u64) -> QueuePolicy {
        let lane = LanePolicy {
            capacity,
            max_batch,
            max_age: Duration::from_micros(max_age_us),
        };
        QueuePolicy {
            urllc: lane,
            embb: lane,
            mmtc: lane,
            discipline: QueueDiscipline::Edf,
        }
    }

    fn far(t0: Instant) -> Instant {
        t0 + Duration::from_secs(3600)
    }

    #[test]
    fn edf_order_within_lane_with_fifo_tiebreak() {
        let mut q = AdmissionQueue::new(&policy(16, 16, 0)).unwrap();
        let t0 = Instant::now();
        let ms = Duration::from_millis(1);
        q.enqueue("late", QosClass::Embb, t0, t0 + 30 * ms).unwrap();
        q.enqueue("early", QosClass::Embb, t0, t0 + 10 * ms)
            .unwrap();
        q.enqueue("tie-a", QosClass::Embb, t0, t0 + 20 * ms)
            .unwrap();
        q.enqueue("tie-b", QosClass::Embb, t0, t0 + 20 * ms)
            .unwrap();
        let (class, batch) = q.next_batch(t0, false).unwrap();
        assert_eq!(class, QosClass::Embb);
        let order: Vec<&str> = batch.iter().map(|e| e.item).collect();
        assert_eq!(order, ["early", "tie-a", "tie-b", "late"]);
    }

    #[test]
    fn lanes_drain_in_priority_order() {
        let mut q = AdmissionQueue::new(&policy(16, 4, 0)).unwrap();
        let t0 = Instant::now();
        q.enqueue("mmtc", QosClass::Mmtc, t0, far(t0)).unwrap();
        q.enqueue("embb", QosClass::Embb, t0, far(t0)).unwrap();
        q.enqueue("urllc", QosClass::Urllc, t0, far(t0)).unwrap();
        let classes: Vec<QosClass> = std::iter::from_fn(|| q.next_batch(t0, false))
            .map(|(c, _)| c)
            .collect();
        assert_eq!(classes, [QosClass::Urllc, QosClass::Embb, QosClass::Mmtc]);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_lane_rejects_everything() {
        let mut q = AdmissionQueue::new(&policy(0, 1, 0)).unwrap();
        let t0 = Instant::now();
        match q.enqueue(7u32, QosClass::Urllc, t0, far(t0)) {
            Err(EnqueueRejection::QueueFull {
                item,
                depth,
                capacity,
            }) => {
                assert_eq!(item, 7);
                assert_eq!(depth, 0);
                assert_eq!(capacity, 0);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(q.is_empty());
        assert_eq!(q.depth_high_water(), 0);
    }

    #[test]
    fn full_lane_rejects_with_backpressure_only_for_that_lane() {
        let mut q = AdmissionQueue::new(&policy(2, 8, 1_000_000)).unwrap();
        let t0 = Instant::now();
        q.enqueue(0u32, QosClass::Mmtc, t0, far(t0)).unwrap();
        q.enqueue(1, QosClass::Mmtc, t0, far(t0)).unwrap();
        assert!(matches!(
            q.enqueue(2, QosClass::Mmtc, t0, far(t0)),
            Err(EnqueueRejection::QueueFull {
                depth: 2,
                capacity: 2,
                ..
            })
        ));
        // Other lanes are unaffected by mMTC backpressure.
        q.enqueue(3, QosClass::Urllc, t0, far(t0)).unwrap();
        assert_eq!(q.lane_depth(QosClass::Mmtc), 2);
        assert_eq!(q.lane_depth(QosClass::Urllc), 1);
    }

    #[test]
    fn expired_at_enqueue_is_reported_not_queued() {
        let mut q = AdmissionQueue::new(&policy(4, 1, 0)).unwrap();
        let t0 = Instant::now();
        let now = t0 + Duration::from_millis(5);
        match q.enqueue("dead", QosClass::Embb, now, t0 + Duration::from_millis(2)) {
            Err(EnqueueRejection::AlreadyExpired { item, late_by }) => {
                assert_eq!(item, "dead");
                assert_eq!(late_by, Duration::from_millis(3));
            }
            other => panic!("expected AlreadyExpired, got {other:?}"),
        }
        // Deadline exactly at `now` also counts as expired.
        assert!(matches!(
            q.enqueue("edge", QosClass::Embb, now, now),
            Err(EnqueueRejection::AlreadyExpired { .. })
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn whole_lane_simultaneous_expiry_is_swept_never_batched() {
        let mut q = AdmissionQueue::new(&policy(16, 16, 1_000_000)).unwrap();
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_millis(1);
        for i in 0..5u32 {
            q.enqueue(i, QosClass::Mmtc, t0, deadline).unwrap();
        }
        // One survivor in another lane proves the sweep is per-entry.
        q.enqueue(99, QosClass::Urllc, t0, far(t0)).unwrap();

        let later = t0 + Duration::from_millis(2);
        let swept = q.sweep_expired(later);
        assert_eq!(swept.len(), 5);
        assert!(swept.iter().all(|e| e.class == QosClass::Mmtc));
        assert!(swept.iter().all(|e| e.deadline_at <= later));
        assert_eq!(q.lane_depth(QosClass::Mmtc), 0);
        // What remains is only the unexpired entry.
        let (class, batch) = q.next_batch(later, true).unwrap();
        assert_eq!(class, QosClass::Urllc);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].item, 99);
        assert!(q.next_batch(later, true).is_none());
    }

    #[test]
    fn batching_coalesces_until_fill_or_age() {
        let mut q = AdmissionQueue::new(&policy(16, 3, 500)).unwrap();
        let t0 = Instant::now();
        q.enqueue(0u32, QosClass::Embb, t0, far(t0)).unwrap();
        q.enqueue(1, QosClass::Embb, t0, far(t0)).unwrap();
        // Below fill, below age: not ready yet.
        assert!(q.next_batch(t0, false).is_none());
        // Fill trigger at 3.
        q.enqueue(2, QosClass::Embb, t0, far(t0)).unwrap();
        let (_, batch) = q.next_batch(t0, false).unwrap();
        assert_eq!(batch.len(), 3);
        // Age trigger: a lone entry fires once it has waited max_age.
        q.enqueue(3, QosClass::Embb, t0, far(t0)).unwrap();
        assert!(q.next_batch(t0, false).is_none());
        let aged = t0 + Duration::from_micros(500);
        let (_, batch) = q.next_batch(aged, false).unwrap();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn urgent_deadline_fires_before_age_fill() {
        let mut q = AdmissionQueue::new(&policy(16, 8, 10_000)).unwrap();
        let t0 = Instant::now();
        // Deadline inside the 10ms coalescing window → fire immediately.
        q.enqueue(0u32, QosClass::Mmtc, t0, t0 + Duration::from_millis(5))
            .unwrap();
        assert!(q.next_batch(t0, false).is_some());
    }

    #[test]
    fn wakeup_tracks_earliest_trigger() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(&policy(16, 8, 1_000)).unwrap();
        let t0 = Instant::now();
        assert_eq!(q.next_wakeup(t0), None);
        let deadline = t0 + Duration::from_millis(50);
        q.enqueue(0, QosClass::Embb, t0, deadline).unwrap();
        let wake = q.next_wakeup(t0).unwrap();
        // The age trigger (t0 + 1ms) comes before the deadline triggers.
        assert_eq!(wake, t0 + Duration::from_millis(1));
        // Once ready, wakeup is immediate.
        let at_age = t0 + Duration::from_millis(1);
        assert_eq!(q.next_wakeup(at_age), Some(at_age));
    }

    #[test]
    fn zero_max_batch_is_rejected_at_construction() {
        // Regression test: `max_batch == 0` used to be silently clamped to
        // 1 at drain time; it is now a typed construction error naming the
        // offending lane.
        let mut p = policy(16, 4, 0);
        p.embb.max_batch = 0;
        assert_eq!(
            p.validate(),
            Err(PolicyError::ZeroMaxBatch {
                class: QosClass::Embb,
            })
        );
        match AdmissionQueue::<u32>::new(&p) {
            Err(e @ PolicyError::ZeroMaxBatch { class }) => {
                assert_eq!(class, QosClass::Embb);
                assert!(e.to_string().contains("max_batch = 0"));
            }
            Ok(_) => panic!("zero max_batch must not construct"),
        }
        assert!(policy(16, 1, 0).validate().is_ok());
    }

    #[test]
    fn near_epoch_deadline_proximity_trigger_clamps_to_now() {
        // Regression test: when `deadline_at - max_age` underflows (a
        // deadline close to the Instant epoch), the trigger used to fall
        // back to the deadline itself — a zero-slack wake that could only
        // expire the entry. It must clamp to `now` instead.
        //
        // Construct an instant near the platform's representable minimum
        // by walking backwards with doubling steps (the minimum can be
        // ~292 billion years before now, so a fixed step never gets
        // there).
        let hour = Duration::from_secs(3600);
        let mut early = Instant::now();
        let mut step = hour;
        while let Some(e) = early.checked_sub(step) {
            early = e;
            step = step.saturating_mul(2);
        }
        let deadline = early + hour;
        let max_age = step.saturating_mul(4); // >= step + hour: must underflow
        let now = Instant::now();
        assert!(
            deadline.checked_sub(max_age).is_none(),
            "setup must underflow"
        );
        let wake = proximity_trigger(deadline, max_age, now);
        assert_eq!(wake, now, "underflow must clamp to now, not the deadline");
        // The non-underflow path is unchanged.
        let t0 = Instant::now();
        let d = t0 + Duration::from_millis(50);
        assert_eq!(
            proximity_trigger(d, Duration::from_millis(10), t0),
            d - Duration::from_millis(10)
        );
    }

    #[test]
    fn fifo_drains_in_arrival_order_ignoring_deadlines() {
        let mut p = policy(16, 16, 0);
        p.discipline = QueueDiscipline::Fifo;
        let mut q = AdmissionQueue::new(&p).unwrap();
        let t0 = Instant::now();
        let ms = Duration::from_millis(1);
        q.enqueue("late", QosClass::Embb, t0, t0 + 30 * ms).unwrap();
        q.enqueue("early", QosClass::Embb, t0, t0 + 10 * ms)
            .unwrap();
        q.enqueue("mid", QosClass::Embb, t0, t0 + 20 * ms).unwrap();
        let (_, batch) = q.next_batch(t0, false).unwrap();
        let order: Vec<&str> = batch.iter().map(|e| e.item).collect();
        assert_eq!(order, ["late", "early", "mid"]);
    }

    #[test]
    fn fifo_sweeps_mid_queue_expiry_preserving_arrival_order() {
        let mut p = policy(16, 16, 1_000_000);
        p.discipline = QueueDiscipline::Fifo;
        let mut q = AdmissionQueue::new(&p).unwrap();
        let t0 = Instant::now();
        let ms = Duration::from_millis(1);
        // The soon-to-expire entry sits in the middle of the lane, which
        // the EDF prefix sweep would miss under FIFO ordering.
        q.enqueue("keep-a", QosClass::Mmtc, t0, far(t0)).unwrap();
        q.enqueue("dies", QosClass::Mmtc, t0, t0 + 2 * ms).unwrap();
        q.enqueue("keep-b", QosClass::Mmtc, t0, far(t0)).unwrap();
        let later = t0 + 5 * ms;
        let swept = q.sweep_expired(later);
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].item, "dies");
        let (_, batch) = q.next_batch(later, true).unwrap();
        let order: Vec<&str> = batch.iter().map(|e| e.item).collect();
        assert_eq!(order, ["keep-a", "keep-b"]);
    }

    #[test]
    fn fifo_urgent_deadline_still_triggers_and_wakes() {
        let mut p = policy(16, 8, 10_000);
        p.discipline = QueueDiscipline::Fifo;
        let mut q = AdmissionQueue::new(&p).unwrap();
        let t0 = Instant::now();
        // The urgent deadline is on the *second* arrival; FIFO must still
        // see it (scan, not front-peek) for both ready() and next_wakeup().
        q.enqueue(0u32, QosClass::Mmtc, t0, far(t0)).unwrap();
        assert!(q.next_batch(t0, false).is_none());
        q.enqueue(1, QosClass::Mmtc, t0, t0 + Duration::from_millis(5))
            .unwrap();
        assert_eq!(q.next_wakeup(t0), Some(t0));
        assert!(q.next_batch(t0, false).is_some());
    }

    #[test]
    fn per_lane_high_water_tracks_each_lane_independently() {
        let mut q = AdmissionQueue::new(&policy(4, 16, 1_000_000)).unwrap();
        let t0 = Instant::now();
        for i in 0..4u32 {
            q.enqueue(i, QosClass::Mmtc, t0, far(t0)).unwrap();
        }
        // Full lane: rejection implies the lane's high water hit capacity.
        assert!(matches!(
            q.enqueue(4, QosClass::Mmtc, t0, far(t0)),
            Err(EnqueueRejection::QueueFull { .. })
        ));
        q.enqueue(5, QosClass::Urllc, t0, far(t0)).unwrap();
        let _ = q.next_batch(t0, true);
        let _ = q.next_batch(t0, true);
        assert_eq!(q.lane_depth_high_water(QosClass::Mmtc), 4);
        assert_eq!(q.lane_depth_high_water(QosClass::Urllc), 1);
        assert_eq!(q.lane_depth_high_water(QosClass::Embb), 0);
        assert_eq!(q.lane_high_waters(), [1, 0, 4]);
        // Draining does not lower a high water.
        assert!(q.is_empty());
        assert_eq!(q.depth_high_water(), 5);
    }

    #[test]
    fn overflowing_coalescing_window_covers_every_deadline() {
        // `max_age` so large that `now + max_age` overflows the Instant
        // range. The window then covers every representable instant:
        // any queued deadline must count as close (batch fires), and
        // next_wakeup must schedule rather than panic.
        let mut q = AdmissionQueue::new(&policy(16, 16, 0)).unwrap();
        for lane in &mut q.lanes {
            lane.policy.max_age = Duration::from_secs(u64::MAX);
        }
        let t0 = Instant::now();
        q.enqueue("only", QosClass::Embb, t0, far(t0)).unwrap();
        assert_eq!(q.next_wakeup(t0), Some(t0));
        let (_, batch) = q.next_batch(t0, false).expect("window covers the deadline");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn high_water_tracks_total_depth() {
        let mut q = AdmissionQueue::new(&policy(16, 16, 1_000_000)).unwrap();
        let t0 = Instant::now();
        for i in 0..4u32 {
            q.enqueue(i, QosClass::Embb, t0, far(t0)).unwrap();
        }
        q.enqueue(4, QosClass::Urllc, t0, far(t0)).unwrap();
        let _ = q.next_batch(t0, true);
        assert_eq!(q.depth_high_water(), 5);
    }
}
