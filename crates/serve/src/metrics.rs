//! Service metrics: per-class outcome counters and fixed-bin latency
//! histograms with p50/p99 estimation.
//!
//! The histogram bins are powers of two in microseconds (bin *i* covers
//! `[2^i, 2^(i+1))` µs, with an underflow bin below 1 µs), so recording
//! is O(1), the memory footprint is fixed, and quantiles are read as the
//! upper edge of the bin where the cumulative count crosses the rank —
//! an upper bound with ≤ 2× resolution error, plenty for service-level
//! p50/p99 reporting.

use crate::reuse::ReuseCounters;
use rcr_qos::QosClass;
use std::time::Duration;

/// Number of power-of-two bins; bin 63 is effectively the overflow bin
/// (2^62 µs ≈ 146k years).
const BINS: usize = 64;

/// A fixed-bin latency histogram (see module docs).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bins: [u64; BINS],
    count: u64,
    max: Duration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            bins: [0; BINS],
            count: 0,
            max: Duration::ZERO,
        }
    }
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        let us = sample.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bin 0: < 2 µs (underflow merged with [1, 2)); bin i: [2^i, 2^(i+1)) µs.
        let bin = if us == 0 {
            0
        } else {
            (us.ilog2() as usize).min(BINS - 1)
        };
        self.bins[bin] += 1;
        self.count += 1;
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded sample, exact.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// The quantile `q ∈ [0, 1]` as the upper edge of the bin holding
    /// that rank (an upper bound; [`LatencyHistogram::max`] caps it).
    /// Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let edge_us = 1u64 << (i + 1).min(63);
                return Duration::from_micros(edge_us).min(self.max);
            }
        }
        self.max
    }

    /// Condenses the histogram for a snapshot.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// A condensed latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (upper-bound estimate from the histogram bins).
    pub p50: Duration,
    /// 99th percentile (upper-bound estimate).
    pub p99: Duration,
    /// Exact maximum.
    pub max: Duration,
}

/// Outcome counters for one service class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounters {
    /// Requests admitted to the lane.
    pub admitted: u64,
    /// Requests refused admission (queue full or shutting down).
    pub rejected: u64,
    /// Requests whose deadline was missed (at enqueue, in queue, or
    /// detected after the solve).
    pub expired: u64,
    /// Requests answered with a solution, in time.
    pub solved: u64,
    /// Requests whose solver returned an error.
    pub failed: u64,
}

impl ClassCounters {
    /// Terminal responses: everything except `admitted`, which counts an
    /// intermediate state.
    pub fn responses(&self) -> u64 {
        self.rejected + self.expired + self.solved + self.failed
    }
}

/// A point-in-time copy of every service metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counters per class, indexed by [`QosClass::priority_rank`] (the
    /// [`QosClass::ALL`] order).
    pub per_class: [ClassCounters; 3],
    /// Enqueue → response latency per class (solved and failed
    /// requests), indexed like [`MetricsSnapshot::per_class`] — what
    /// lets a scenario expectation assert "URLLC p99 stayed flat"
    /// without parsing logs.
    pub per_class_response_latency: [LatencySummary; 3],
    /// Highest depth each class lane ever reached, indexed like
    /// [`MetricsSnapshot::per_class`]. A lane that rejected work must
    /// show its configured capacity here — the reconciliation
    /// invariant the scenario overload tests pin.
    pub lane_depth_high_water: [usize; 3],
    /// Highest total queue depth ever observed.
    pub queue_depth_high_water: usize,
    /// Enqueue → batch-drain latency of admitted requests.
    pub queue_latency: LatencySummary,
    /// Per-request solver latency.
    pub solve_latency: LatencySummary,
    /// Enqueue → response latency (solved and failed requests).
    pub response_latency: LatencySummary,
    /// Batches fanned out to the worker pool.
    pub batches: u64,
    /// Solution-reuse cache counters (all zero when reuse is disabled).
    pub reuse: ReuseCounters,
}

impl MetricsSnapshot {
    /// The counters of `class`.
    pub fn class(&self, class: QosClass) -> &ClassCounters {
        &self.per_class[class.priority_rank()]
    }

    /// Enqueue → response latency of `class` (solved and failed
    /// requests of that class only).
    pub fn class_response_latency(&self, class: QosClass) -> &LatencySummary {
        &self.per_class_response_latency[class.priority_rank()]
    }

    /// Highest depth `class`'s lane ever reached.
    pub fn lane_high_water(&self, class: QosClass) -> usize {
        self.lane_depth_high_water[class.priority_rank()]
    }

    /// Sum of terminal responses over all classes.
    pub fn total_responses(&self) -> u64 {
        self.per_class.iter().map(ClassCounters::responses).sum()
    }

    /// Renders the snapshot as a small fixed-layout table (used by the
    /// example and bench output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "class   admitted rejected  expired   solved   failed   p50_us   p99_us  lane_hw\n",
        );
        for class in QosClass::ALL {
            let c = self.class(class);
            let lat = self.class_response_latency(class);
            out.push_str(&format!(
                "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                class.name(),
                c.admitted,
                c.rejected,
                c.expired,
                c.solved,
                c.failed,
                lat.p50.as_micros(),
                lat.p99.as_micros(),
                self.lane_high_water(class),
            ));
        }
        out.push_str(&format!(
            "queue depth high water: {}\nbatches: {}\n",
            self.queue_depth_high_water, self.batches
        ));
        out.push_str(&format!(
            "reuse: hits={} misses={} evictions={}\n",
            self.reuse.hits, self.reuse.misses, self.reuse.evictions
        ));
        let lat = |name: &str, s: &LatencySummary| {
            format!(
                "{name}: n={} p50={:?} p99={:?} max={:?}\n",
                s.count, s.p50, s.p99, s.max
            )
        };
        out.push_str(&lat("queue latency   ", &self.queue_latency));
        out.push_str(&lat("solve latency   ", &self.solve_latency));
        out.push_str(&lat("response latency", &self.response_latency));
        out
    }
}

/// The service's live metric state (wrapped in a mutex by the service).
#[derive(Debug, Clone, Default)]
pub(crate) struct Metrics {
    pub per_class: [ClassCounters; 3],
    pub per_class_response: [LatencyHistogram; 3],
    pub queue_latency: LatencyHistogram,
    pub solve_latency: LatencyHistogram,
    pub response_latency: LatencyHistogram,
    pub batches: u64,
}

impl Metrics {
    pub fn class_mut(&mut self, class: QosClass) -> &mut ClassCounters {
        &mut self.per_class[class.priority_rank()]
    }

    pub fn class_response_mut(&mut self, class: QosClass) -> &mut LatencyHistogram {
        &mut self.per_class_response[class.priority_rank()]
    }

    pub fn snapshot(
        &self,
        queue_depth_high_water: usize,
        lane_depth_high_water: [usize; 3],
        reuse: ReuseCounters,
    ) -> MetricsSnapshot {
        let summaries =
            |h: &[LatencyHistogram; 3]| [h[0].summary(), h[1].summary(), h[2].summary()];
        MetricsSnapshot {
            per_class: self.per_class,
            per_class_response_latency: summaries(&self.per_class_response),
            lane_depth_high_water,
            queue_depth_high_water,
            queue_latency: self.queue_latency.summary(),
            solve_latency: self.solve_latency.summary(),
            response_latency: self.response_latency.summary(),
            batches: self.batches,
            reuse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::default();
        for us in [1u64, 3, 10, 100, 1_000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), Duration::from_micros(10_000));
        // p50 covers the 3rd sample (10 µs): upper bin edge is 16 µs.
        assert_eq!(h.quantile(0.5), Duration::from_micros(16));
        // p99 = the max sample's bin, capped at the exact max.
        assert_eq!(h.quantile(0.99), Duration::from_micros(10_000));
        // Monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn quantile_upper_bounds_within_2x() {
        let mut h = LatencyHistogram::default();
        let sample = Duration::from_micros(777);
        for _ in 0..100 {
            h.record(sample);
        }
        let p99 = h.quantile(0.99);
        assert!(p99 >= sample);
        assert!(p99 <= sample * 2);
    }

    #[test]
    fn submicrosecond_and_huge_samples_do_not_panic() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_nanos(10));
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.01) > Duration::ZERO);
    }

    #[test]
    fn snapshot_totals_and_render() {
        let mut m = Metrics::default();
        m.class_mut(QosClass::Urllc).solved = 3;
        m.class_mut(QosClass::Embb).rejected = 2;
        m.class_mut(QosClass::Mmtc).expired = 1;
        m.class_mut(QosClass::Mmtc).admitted = 5;
        m.class_response_mut(QosClass::Urllc)
            .record(Duration::from_micros(100));
        let snap = m.snapshot(
            7,
            [4, 2, 1],
            ReuseCounters {
                hits: 4,
                misses: 2,
                evictions: 1,
            },
        );
        assert_eq!(snap.total_responses(), 6);
        assert_eq!(snap.queue_depth_high_water, 7);
        assert_eq!(snap.class(QosClass::Urllc).solved, 3);
        assert_eq!(snap.lane_high_water(QosClass::Urllc), 4);
        assert_eq!(snap.lane_high_water(QosClass::Mmtc), 1);
        assert_eq!(snap.class_response_latency(QosClass::Urllc).count, 1);
        assert!(snap.class_response_latency(QosClass::Urllc).p99 >= Duration::from_micros(100));
        assert_eq!(snap.class_response_latency(QosClass::Embb).count, 0);
        let table = snap.render();
        assert!(table.contains("URLLC"));
        assert!(table.contains("high water: 7"));
        assert!(table.contains("lane_hw"));
        assert!(table.contains("reuse: hits=4 misses=2 evictions=1"));
    }
}
