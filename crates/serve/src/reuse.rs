//! Exact-match solution reuse for the serve engine.
//!
//! The serving workload re-sees identical problems constantly: retries,
//! replicated scenario specs, periodic re-solves of a slowly-varying
//! cell. This module gives the [`crate::service`] engine a bounded,
//! sharded, deterministic LRU keyed by a **bit-exact** digest of the
//! problem and solver kind, so a hit returns exactly the solution a
//! fresh solve would have produced.
//!
//! Scope is deliberately narrower than the warm-start layer in
//! `rcr-convex::warm` (which accepts *nearby* instances and reuses
//! factorizations): here only bit-identical instances hit, because a
//! served response must be indistinguishable from a cold solve.
//!
//! **Determinism.** [`SolverKind::Greedy`] and [`SolverKind::Exact`] are
//! pure functions of the problem, so serving a cached solution is
//! bit-identical to recomputing it — the serial-vs-parallel identity
//! guarantee survives with the cache enabled at any worker count.
//! [`SolverKind::Pso`] derives a per-request seed from the request id
//! and is never cached. Cache *contents* (and therefore hit/miss
//! counters) may differ across worker counts because insertion order is
//! timing-dependent; responses never do.
//!
//! Eviction within a shard is deterministic: the entry with the
//! smallest `(last_used, key)` pair goes first, and iteration is over a
//! `BTreeMap` (no hash-iteration order).

use rcr_qos::rra::{RraProblem, RraSolution};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::request::SolverKind;

/// Number of independently locked shards. A power of two so the shard
/// index is a mask of the digest.
const SHARDS: usize = 8;

/// Solution-reuse configuration for [`crate::ServiceConfig`].
#[derive(Debug, Clone)]
pub struct ReuseConfig {
    /// Master switch; `false` (the default) bypasses the cache entirely.
    pub enabled: bool,
    /// Total cached solutions across all shards (rounded up to a
    /// multiple of the shard count; `0` disables caching).
    pub capacity: usize,
}

impl Default for ReuseConfig {
    fn default() -> Self {
        ReuseConfig {
            enabled: false,
            capacity: 256,
        }
    }
}

/// A point-in-time copy of the reuse counters, carried on
/// [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReuseCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a solve (including uncacheable
    /// solver kinds when the cache is enabled).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

// ---------------------------------------------------------------------
// Bit-exact fingerprinting
// ---------------------------------------------------------------------

/// splitmix64 finalizer — the same mixing the workspace uses elsewhere
/// for deterministic, dependency-free hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Two independent 64-bit streams folded into one 128-bit digest; a
/// collision would serve the wrong solution, so 64 bits is not enough.
struct Digest {
    a: u64,
    b: u64,
}

impl Digest {
    fn new(seed: u64) -> Digest {
        Digest {
            a: splitmix64(seed),
            b: splitmix64(seed ^ 0x5851_f42d_4c95_7f2d),
        }
    }

    fn u64(&mut self, v: u64) {
        self.a = splitmix64(self.a ^ v);
        self.b = splitmix64(self.b.rotate_left(17) ^ v);
    }

    /// Raw bit pattern: `-0.0 != 0.0` on purpose — distinct inputs may
    /// only ever cause a spurious miss, never a wrong hit.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// The bit-exact cache key of `(solver, problem)`.
fn key_of(solver: SolverKind, problem: &RraProblem) -> u128 {
    let mut d = Digest::new(match solver {
        SolverKind::Greedy => 0x6772_6565_6479,
        SolverKind::Exact => 0x0065_7861_6374,
        // Uncacheable; callers gate on `cacheable` first. Hashed under
        // its own seed anyway so a future change cannot alias Greedy.
        SolverKind::Pso => 0x0070_736f,
        SolverKind::Robust => 0x726f_6275_7374,
    });
    d.u64(problem.users() as u64);
    d.u64(problem.resource_blocks() as u64);
    d.f64(problem.noise_power_w);
    d.f64(problem.power_budget_w);
    d.f64(problem.rb_bandwidth_hz);
    for &r in &problem.min_rates_bps {
        d.f64(r);
    }
    for user in 0..problem.users() {
        for rb in 0..problem.resource_blocks() {
            d.f64(problem.channel().gain(user, rb));
        }
    }
    d.finish()
}

/// Whether a solver kind's output depends only on the problem (and may
/// therefore be cached across requests).
pub(crate) fn cacheable(solver: SolverKind) -> bool {
    match solver {
        // Robust is a pure function of the problem too; a hit does waste
        // the batch pre-factor built for the item, but serving the cached
        // solution is still bit-identical and strictly cheaper than the
        // QP solve it skips.
        SolverKind::Greedy | SolverKind::Exact | SolverKind::Robust => true,
        // Seeded per request id: two requests with identical problems
        // legitimately produce different swarms.
        SolverKind::Pso => false,
    }
}

// ---------------------------------------------------------------------
// The sharded LRU
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Slot {
    solution: RraSolution,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    clock: u64,
    map: BTreeMap<u128, Slot>,
}

impl Shard {
    fn get(&mut self, key: u128) -> Option<RraSolution> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.map.get_mut(&key)?;
        slot.last_used = clock;
        Some(slot.solution.clone())
    }

    /// Inserts `solution`, evicting the least-recently-used entry (ties
    /// broken by smaller key) if the shard is full. Returns evictions.
    fn insert(&mut self, key: u128, solution: RraSolution, capacity: usize) -> u64 {
        if capacity == 0 {
            return 0;
        }
        self.clock += 1;
        let slot = Slot {
            solution,
            last_used: self.clock,
        };
        let fresh = self.map.insert(key, slot).is_none();
        let mut evicted = 0;
        if fresh && self.map.len() > capacity {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(k, s)| (s.last_used, **k))
                .map(|(k, _)| *k);
            if let Some(v) = victim {
                self.map.remove(&v);
                evicted = 1;
            }
        }
        evicted
    }
}

/// The engine-side cache: `SHARDS` independently locked deterministic
/// LRUs plus lock-free counters.
#[derive(Debug)]
pub(crate) struct ReuseCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ReuseCache {
    /// Builds a cache from a config; `None` when disabled or zero-sized.
    pub(crate) fn from_config(config: &ReuseConfig) -> Option<ReuseCache> {
        if !config.enabled || config.capacity == 0 {
            return None;
        }
        Some(ReuseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: config.capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        // High digest bits pick the shard; low bits order the BTreeMap.
        &self.shards[((key >> 64) as usize) & (SHARDS - 1)]
    }

    /// Looks up a bit-exact match, counting a hit or miss. Uncacheable
    /// solver kinds are counted as misses by the caller not calling in.
    pub(crate) fn get(&self, solver: SolverKind, problem: &RraProblem) -> Option<RraSolution> {
        let key = key_of(solver, problem);
        let found = self
            .shard(key)
            .lock()
            .expect("serve: reuse shard poisoned")
            .get(key);
        match found {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly computed solution.
    pub(crate) fn put(&self, solver: SolverKind, problem: &RraProblem, solution: &RraSolution) {
        let key = key_of(solver, problem);
        let evicted = self
            .shard(key)
            .lock()
            .expect("serve: reuse shard poisoned")
            .insert(key, solution.clone(), self.shard_capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Counts a miss without a lookup — used for uncacheable solver
    /// kinds so the hit *rate* reflects the whole request stream.
    pub(crate) fn count_bypass(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub(crate) fn counters(&self) -> ReuseCounters {
        ReuseCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ScenarioSpec;
    use rcr_qos::QosClass;

    fn problem(seed: u64) -> RraProblem {
        ScenarioSpec {
            users: 3,
            resource_blocks: 6,
            seed,
        }
        .to_problem(QosClass::Embb)
        .unwrap()
    }

    fn solution(p: &RraProblem) -> RraSolution {
        rcr_qos::rra::solve_greedy(p).unwrap()
    }

    fn cache(capacity: usize) -> ReuseCache {
        ReuseCache::from_config(&ReuseConfig {
            enabled: true,
            capacity,
        })
        .unwrap()
    }

    #[test]
    fn disabled_or_empty_config_builds_no_cache() {
        assert!(ReuseCache::from_config(&ReuseConfig::default()).is_none());
        assert!(ReuseCache::from_config(&ReuseConfig {
            enabled: true,
            capacity: 0,
        })
        .is_none());
    }

    #[test]
    fn hit_returns_the_stored_solution_bit_identically() {
        let c = cache(16);
        let p = problem(7);
        let s = solution(&p);
        assert!(c.get(SolverKind::Greedy, &p).is_none());
        c.put(SolverKind::Greedy, &p, &s);
        let hit = c.get(SolverKind::Greedy, &p).expect("hit");
        assert_eq!(hit.owners, s.owners);
        assert_eq!(
            hit.total_rate_bps.to_bits(),
            s.total_rate_bps.to_bits(),
            "cached solution must be bit-identical"
        );
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn key_separates_solver_kinds_and_problems() {
        let c = cache(16);
        let p7 = problem(7);
        let p8 = problem(8);
        c.put(SolverKind::Greedy, &p7, &solution(&p7));
        assert!(c.get(SolverKind::Exact, &p7).is_none(), "kind in the key");
        assert!(c.get(SolverKind::Greedy, &p8).is_none(), "problem in key");
        assert!(c.get(SolverKind::Greedy, &p7).is_some());
    }

    #[test]
    fn tiny_bitwise_perturbation_misses() {
        let c = cache(16);
        let p = problem(7);
        c.put(SolverKind::Greedy, &p, &solution(&p));
        let mut q = p.clone();
        q.power_budget_w = f64::from_bits(q.power_budget_w.to_bits() + 1);
        assert!(
            c.get(SolverKind::Greedy, &q).is_none(),
            "one ulp of drift must miss — only bit-exact matches hit"
        );
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        // One-entry shards: every insert into an occupied shard evicts.
        let c = cache(SHARDS);
        assert_eq!(c.shard_capacity, 1);
        let p = problem(3);
        let s = solution(&p);
        // Drive many distinct keys through; once more than SHARDS
        // distinct problems exist, some shard must have evicted.
        for seed in 0..(SHARDS as u64 * 4) {
            let pi = problem(seed);
            c.put(SolverKind::Greedy, &pi, &s);
        }
        assert!(c.counters().evictions > 0, "evictions must be counted");
        // Re-inserting a key that is already resident never evicts.
        c.put(SolverKind::Greedy, &p, &s);
        let after_first = c.counters().evictions;
        c.put(SolverKind::Greedy, &p, &s);
        assert_eq!(c.counters().evictions, after_first);
        assert!(c.get(SolverKind::Greedy, &p).is_some());
    }

    #[test]
    fn pso_is_not_cacheable() {
        assert!(cacheable(SolverKind::Greedy));
        assert!(cacheable(SolverKind::Exact));
        assert!(cacheable(SolverKind::Robust));
        assert!(!cacheable(SolverKind::Pso));
    }
}
