//! `rcr-serve` — a QoS-class-aware solver service over the RCR stack.
//!
//! The paper's subject is *diverse QoS*: URLLC latency floors, eMBB
//! throughput, mMTC scale. This crate turns the offline solvers into a
//! long-running service whose **own scheduling honors the same classes
//! it solves for**:
//!
//! ```text
//!            SolveRequest {class, deadline, problem}
//!                           │ admission (bounded lanes — backpressure)
//!          ┌────────────────┼────────────────┐
//!          ▼                ▼                ▼
//!    URLLC lane        eMBB lane        mMTC lane
//!    EDF, batch=1      EDF, coalesce    EDF, coalesce
//!          └────────────────┼────────────────┘
//!                           │ dynamic batcher (priority + deadlines)
//!                           ▼
//!              BatchSolve fan-out on WorkerPool
//!                           │
//!                           ▼
//!            SolveResponse {outcome, queue/solve timing}
//! ```
//!
//! * [`request`] — the typed request/response model ([`SolveRequest`],
//!   [`SolveResponse`], [`Outcome`]): every request ends as exactly one
//!   of *solved*, *rejected*, *expired*, or *failed*.
//! * [`queue`] — per-class priority lanes, earliest-deadline-first,
//!   bounded depth with explicit rejection instead of silent buffering.
//! * [`service`] — the batcher thread, the persistent worker pool, the
//!   in-process [`Client`], graceful draining shutdown.
//! * [`wire`] — line-delimited JSON over TCP (`std::net`, serde-free)
//!   plus the shared codec.
//! * [`metrics`] — per-class outcome counters and fixed-bin latency
//!   histograms ([`MetricsSnapshot`]).
//! * [`reuse`] — opt-in exact-match solution reuse: a sharded
//!   deterministic LRU over bit-exact problem digests, so repeated
//!   identical requests skip the solver without perturbing determinism.
//!
//! Determinism carries over from the rest of the workspace: for a fixed
//! request trace, solver outputs are bit-identical at every worker
//! count — batching and scheduling affect only timing.
//!
//! # Example
//!
//! ```
//! use rcr_serve::{Payload, ScenarioSpec, Service, ServiceConfig, SolveRequest, SolverKind};
//! use rcr_serve::Outcome;
//! use rcr_qos::QosClass;
//! use std::time::Duration;
//!
//! let service = Service::spawn(ServiceConfig::default()).unwrap();
//! let response = service
//!     .client()
//!     .solve(SolveRequest {
//!         id: 1,
//!         class: QosClass::Urllc,
//!         deadline: Duration::from_secs(5),
//!         solver: SolverKind::Greedy,
//!         payload: Payload::Scenario(ScenarioSpec { users: 3, resource_blocks: 6, seed: 7 }),
//!     })
//!     .unwrap();
//! assert!(matches!(response.outcome, Outcome::Solved(_)));
//! let metrics = service.shutdown();
//! assert_eq!(metrics.class(QosClass::Urllc).solved, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod reuse;
pub mod service;
pub mod wire;

pub use metrics::{ClassCounters, LatencySummary, MetricsSnapshot};
pub use queue::{
    AdmissionQueue, EnqueueRejection, LanePolicy, PolicyError, QueueDiscipline, QueuePolicy,
};
pub use request::{
    DeadlineMissed, ExpiryPhase, Outcome, Payload, RejectReason, ScenarioSpec, SolveRequest,
    SolveResponse, Solved, SolverKind,
};
pub use reuse::{ReuseConfig, ReuseCounters};
pub use service::{Client, Service, ServiceConfig, Ticket};
pub use wire::TcpFrontend;

use std::fmt;

/// Errors surfaced by the service handles.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The response channel closed without a response — the service was
    /// torn down non-gracefully while the request was pending.
    ChannelClosed,
    /// The service configuration carried an invalid queue policy, caught
    /// at [`Service::spawn`] before any thread was started.
    InvalidPolicy(PolicyError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ChannelClosed => {
                write!(f, "service dropped the request without responding")
            }
            ServeError::InvalidPolicy(e) => write!(f, "invalid queue policy: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::ChannelClosed => None,
            ServeError::InvalidPolicy(e) => Some(e),
        }
    }
}

impl From<PolicyError> for ServeError {
    fn from(e: PolicyError) -> Self {
        ServeError::InvalidPolicy(e)
    }
}
