//! A minimal JSON codec for the wire protocol — hand-rolled like every
//! other format in this workspace (no serde; the build is hermetic).
//!
//! Covers exactly what the protocol needs: objects, arrays, strings with
//! standard escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`), `f64` numbers,
//! booleans, and `null`. Object keys keep insertion order; duplicate
//! keys resolve to the first occurrence. Numbers are emitted with Rust's
//! shortest-round-trip float formatting, so `encode → parse` returns the
//! identical bits for every finite `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(JsonObject),
}

/// An object: key/value pairs in insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// The first value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `get` narrowed to a non-negative integer that fits `u64` exactly.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

impl JsonValue {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&JsonObject> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Encodes a string as a JSON string literal (with quotes).
pub fn encode_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes a finite `f64` so that parsing returns the identical bits
/// (Rust's shortest-round-trip `Display`). Non-finite values, which JSON
/// cannot carry, encode as `null`.
pub fn encode_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
/// A message with the byte offset of the problem.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(JsonObject { entries }));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(JsonObject { entries }));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // protocol; lone surrogates map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range only ever holds ASCII digits, signs, '.',
        // and 'e'/'E', so from_utf8 cannot fail in practice — but a
        // parse error is the honest fallback, not a panic.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(format!("non-ASCII number at byte {start}"));
        };
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x","d":null},"e":true}"#).unwrap();
        let obj = v.as_object().unwrap();
        let a = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        let b = obj.get("b").unwrap().as_object().unwrap();
        assert_eq!(b.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(b.get("d"), Some(&JsonValue::Null));
        assert_eq!(obj.get("e").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\r\u{08}\u{0C}/λ — ünïcode";
        let encoded = encode_str(original);
        let parsed = parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
        // Control characters encode as \u escapes.
        assert_eq!(
            parse(&encode_str("\u{01}")).unwrap().as_str(),
            Some("\u{01}")
        );
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for &f in &[
            0.0,
            -0.0,
            1.0,
            0.1 + 0.2,
            1.23456789e300,
            5e-324,
            f64::MAX,
            f64::MIN_POSITIVE,
            12_345_678.901_234_5,
        ] {
            let parsed = parse(&encode_f64(f)).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), f.to_bits(), "{f}");
        }
        assert_eq!(encode_f64(f64::NAN), "null");
        assert_eq!(encode_f64(f64::INFINITY), "null");
    }

    #[test]
    fn get_u64_guards_against_non_integers() {
        let v = parse(r#"{"a":5,"b":5.5,"c":-1,"d":"5","e":1e17}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get_u64("a"), Some(5));
        assert_eq!(obj.get_u64("b"), None);
        assert_eq!(obj.get_u64("c"), None);
        assert_eq!(obj.get_u64("d"), None);
        assert_eq!(obj.get_u64("e"), None, "beyond exact-integer range");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "{\"a\":1}extra",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" {\t\"a\" :\n[ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(
            v.as_object()
                .unwrap()
                .get("a")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }
}
