use std::fmt;

/// Errors produced by signal-processing operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SignalError {
    /// Input was empty where data is required.
    EmptyInput,
    /// A size/length parameter was invalid for the requested transform.
    InvalidLength {
        /// What the length describes.
        what: &'static str,
        /// The offending value.
        got: usize,
    },
    /// A configuration parameter was outside its documented domain.
    InvalidParameter(String),
    /// Input contained NaN or infinite values.
    NotFinite,
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::EmptyInput => write!(f, "input must be non-empty"),
            SignalError::InvalidLength { what, got } => {
                write!(f, "invalid length for {what}: {got}")
            }
            SignalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SignalError::NotFinite => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for SignalError {}
