//! NaN-robust peak picking.
//!
//! Spectral pipelines routinely argmax over magnitudes, and the classic
//! implementation — `max_by(|a, b| a.partial_cmp(b).unwrap())` — panics
//! the moment one bin is NaN (a Fig. 3-class defect: an FFT fed a NaN
//! sample propagates it to every output bin). This module fixes the
//! ordering once, with the NaN policy in the signature instead of in a
//! panic message.

use std::cmp::Ordering;

/// Index of the largest value in `values`.
///
/// The ordering is total and deterministic: NaN ranks *below every real
/// value* (a corrupt bin must not hijack a peak estimate), `-0.0 < 0.0`
/// per IEEE total order, and ties break toward the lowest index.
/// Returns `None` only for an empty slice; an all-NaN slice yields
/// `Some(0)` — the corruption is still visible because the caller reads
/// `values[0]` back as NaN.
pub fn peak_bin(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, v) in values.iter().enumerate().skip(1) {
        if nan_first(values[best], *v) == Ordering::Less {
            best = i;
        }
    }
    Some(best)
}

/// Ascending total order with NaN smallest: `NaN < -inf < ... < +inf`.
fn nan_first(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_maximum() {
        assert_eq!(peak_bin(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(peak_bin(&[-5.0, -1.0, -3.0]), Some(1));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(peak_bin(&[]), None);
    }

    #[test]
    fn ties_break_low() {
        assert_eq!(peak_bin(&[2.0, 2.0, 1.0]), Some(0));
    }

    #[test]
    fn nan_never_wins_over_a_real_value() {
        assert_eq!(peak_bin(&[f64::NAN, 1.0, f64::NAN]), Some(1));
        assert_eq!(peak_bin(&[0.5, f64::NAN, f64::NEG_INFINITY]), Some(0));
        // Even -inf beats NaN.
        assert_eq!(peak_bin(&[f64::NAN, f64::NEG_INFINITY]), Some(1));
    }

    #[test]
    fn all_nan_is_deterministic_and_visible() {
        assert_eq!(peak_bin(&[f64::NAN, f64::NAN]), Some(0));
    }

    #[test]
    fn negative_zero_ranks_below_positive_zero() {
        assert_eq!(peak_bin(&[-0.0, 0.0]), Some(1));
    }
}
