//! Analysis windows, in both *periodic* and *symmetric* variants.
//!
//! The periodic/symmetric distinction is one of the quiet cross-library
//! mismatches in the paper's Fig. 3 class: MATLAB's `hann(n)` is symmetric,
//! NumPy/PyTorch default to periodic for spectral analysis. Both are
//! provided so the [`crate::profile`] emulation can reproduce the mismatch.

use crate::SignalError;
use std::f64::consts::PI;

/// Window functions supported by the STFT kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WindowKind {
    /// All-ones (boxcar) window.
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window (0.54/0.46 coefficients).
    Hamming,
    /// Blackman window.
    Blackman,
    /// Gaussian window with the given standard deviation expressed as a
    /// fraction of half the window length.
    Gaussian {
        /// Standard deviation / (L/2); typical values 0.3–0.5.
        sigma: f64,
    },
}

/// Sampling convention for window generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSymmetry {
    /// DFT-even ("periodic") sampling — correct for spectral analysis with
    /// overlap-add.
    Periodic,
    /// Symmetric sampling — correct for FIR filter design; using it for
    /// STFT breaks constant-overlap-add by one sample.
    Symmetric,
}

/// Generates a window of `len` samples.
///
/// # Errors
/// * [`SignalError::InvalidLength`] when `len == 0`.
/// * [`SignalError::InvalidParameter`] for a non-positive Gaussian sigma.
pub fn window(
    kind: WindowKind,
    symmetry: WindowSymmetry,
    len: usize,
) -> Result<Vec<f64>, SignalError> {
    if len == 0 {
        return Err(SignalError::InvalidLength {
            what: "window length",
            got: 0,
        });
    }
    if let WindowKind::Gaussian { sigma } = kind {
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(SignalError::InvalidParameter(format!(
                "gaussian sigma {sigma}"
            )));
        }
    }
    if len == 1 {
        return Ok(vec![1.0]);
    }
    // Denominator: N for periodic, N-1 for symmetric.
    let denom = match symmetry {
        WindowSymmetry::Periodic => len as f64,
        WindowSymmetry::Symmetric => (len - 1) as f64,
    };
    let out = (0..len)
        .map(|i| {
            let t = i as f64 / denom;
            match kind {
                WindowKind::Rectangular => 1.0,
                WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * t).cos(),
                WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * t).cos(),
                WindowKind::Blackman => {
                    0.42 - 0.5 * (2.0 * PI * t).cos() + 0.08 * (4.0 * PI * t).cos()
                }
                WindowKind::Gaussian { sigma } => {
                    let half = denom / 2.0;
                    let d = (i as f64 - half) / (sigma * half);
                    (-0.5 * d * d).exp()
                }
            }
        })
        .collect();
    Ok(out)
}

/// Checks the constant-overlap-add (COLA) property of `w` at hop `hop`:
/// returns the maximum relative deviation of `Σ_m w[n - m·hop]²` from its
/// mean over one hop period. Values near 0 mean perfect ISTFT
/// reconstruction with the standard squared-window normalization.
///
/// # Errors
/// Returns [`SignalError::InvalidParameter`] when `hop == 0` or
/// `hop > w.len()`.
pub fn cola_deviation(w: &[f64], hop: usize) -> Result<f64, SignalError> {
    if hop == 0 || hop > w.len() {
        return Err(SignalError::InvalidParameter(format!(
            "hop {hop} invalid for window of length {}",
            w.len()
        )));
    }
    // Accumulate squared-window overlap over one period.
    let mut acc = vec![0.0; hop];
    let mut m = 0usize;
    while m < w.len() {
        for n in 0..hop {
            let idx = m + n;
            if idx < w.len() {
                acc[n] += w[idx] * w[idx];
            }
        }
        m += hop;
    }
    let mean: f64 = acc.iter().sum::<f64>() / hop as f64;
    if mean == 0.0 {
        return Ok(f64::INFINITY);
    }
    let dev = acc.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
    Ok(dev / mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = window(WindowKind::Rectangular, WindowSymmetry::Periodic, 5).unwrap();
        assert!(w.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn hann_symmetric_endpoints_zero() {
        let w = window(WindowKind::Hann, WindowSymmetry::Symmetric, 9).unwrap();
        assert!(w[0].abs() < 1e-15 && w[8].abs() < 1e-15);
        assert!((w[4] - 1.0).abs() < 1e-15); // peak at center
    }

    #[test]
    fn hann_periodic_differs_from_symmetric() {
        let p = window(WindowKind::Hann, WindowSymmetry::Periodic, 8).unwrap();
        let s = window(WindowKind::Hann, WindowSymmetry::Symmetric, 8).unwrap();
        assert!(p.iter().zip(&s).any(|(a, b)| (a - b).abs() > 1e-3));
    }

    #[test]
    fn hamming_endpoints_nonzero() {
        let w = window(WindowKind::Hamming, WindowSymmetry::Symmetric, 11).unwrap();
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn gaussian_peak_at_center() {
        let w = window(
            WindowKind::Gaussian { sigma: 0.4 },
            WindowSymmetry::Symmetric,
            33,
        )
        .unwrap();
        assert!((w[16] - 1.0).abs() < 1e-12);
        assert!(w[0] < w[16]);
    }

    #[test]
    fn gaussian_rejects_bad_sigma() {
        assert!(window(
            WindowKind::Gaussian { sigma: 0.0 },
            WindowSymmetry::Periodic,
            8
        )
        .is_err());
        assert!(window(
            WindowKind::Gaussian { sigma: -1.0 },
            WindowSymmetry::Periodic,
            8
        )
        .is_err());
    }

    #[test]
    fn zero_length_rejected() {
        assert!(window(WindowKind::Hann, WindowSymmetry::Periodic, 0).is_err());
    }

    #[test]
    fn length_one_is_unity() {
        let w = window(WindowKind::Blackman, WindowSymmetry::Periodic, 1).unwrap();
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn periodic_hann_squared_satisfies_cola_at_quarter_hop() {
        // Hann² (the ISTFT weighting) is COLA at hop = N/4, not N/2:
        // the four shifted cos² copies sum to a constant.
        let w = window(WindowKind::Hann, WindowSymmetry::Periodic, 64).unwrap();
        let dev = cola_deviation(&w, 16).unwrap();
        assert!(dev < 1e-12, "dev = {dev}");
        // Half-window hop leaves a cos² ripple.
        let dev2 = cola_deviation(&w, 32).unwrap();
        assert!(dev2 > 1e-3, "dev2 = {dev2}");
    }

    #[test]
    fn symmetric_hann_breaks_cola() {
        let w = window(WindowKind::Hann, WindowSymmetry::Symmetric, 64).unwrap();
        let dev = cola_deviation(&w, 16).unwrap();
        assert!(dev > 1e-6, "symmetric window unexpectedly COLA: {dev}");
    }

    #[test]
    fn cola_validates_hop() {
        let w = vec![1.0; 8];
        assert!(cola_deviation(&w, 0).is_err());
        assert!(cola_deviation(&w, 9).is_err());
    }
}
