//! Gabor-transform phase analysis — the `gabphasederiv` analogue of §IV-B.
//!
//! The paper quotes the LTFAT documentation: the phase derivative "is
//! inaccurate when the absolute value of the Gabor coefficients is low.
//! This is due to the fact \[that\] the phase of complex numbers close to
//! the machine precision is almost random." [`phase_derivative`]
//! therefore returns both the derivative estimates and a reliability mask
//! keyed on coefficient magnitude.

use crate::stft::{PhaseConvention, Stft, StftPlan};
use crate::window::{window, WindowKind, WindowSymmetry};
use crate::SignalError;
use std::f64::consts::PI;

/// Which phase derivative to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseDerivKind {
    /// Derivative along time (frames) — the local instantaneous frequency
    /// deviation.
    Time,
    /// Derivative along frequency (bins) — the local group delay,
    /// "scaled such that (possibly non-integer) distances are measured in
    /// samples".
    Frequency,
}

/// Result of a phase-derivative computation.
#[derive(Debug, Clone)]
pub struct PhaseDerivative {
    /// `values[n][m]`: phase derivative at frame `n`, bin `m`.
    pub values: Vec<Vec<f64>>,
    /// `reliable[n][m]`: false where the coefficient magnitude is within
    /// `mag_tol` of machine precision and the phase is effectively random.
    pub reliable: Vec<Vec<bool>>,
    /// The magnitude threshold used for the reliability mask.
    pub mag_tol: f64,
}

/// The Gabor transform of `signal` — a uniformly-sampled STFT with a
/// periodic Gaussian window, the "special case of STFT" the paper cites.
///
/// # Errors
/// Propagates [`StftPlan`] validation errors.
pub fn gabor_transform(
    signal: &[f64],
    window_len: usize,
    hop: usize,
    fft_size: usize,
) -> Result<Stft, SignalError> {
    let g = window(
        WindowKind::Gaussian { sigma: 0.4 },
        WindowSymmetry::Periodic,
        window_len,
    )?;
    let plan = StftPlan::new(g, hop, fft_size, PhaseConvention::TimeInvariant)?;
    plan.analyze(signal)
}

/// Computes a finite-difference phase derivative of a Gabor/STFT
/// coefficient matrix along time or frequency, with phase unwrapping and a
/// low-magnitude reliability mask.
///
/// The phase difference between adjacent coefficients is wrapped into
/// `(-π, π]` before scaling, and expressed in radians per hop
/// ([`PhaseDerivKind::Time`]) or radians per bin
/// ([`PhaseDerivKind::Frequency`]).
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] when the STFT has no frames.
pub fn phase_derivative(
    stft: &Stft,
    kind: PhaseDerivKind,
    mag_tol: f64,
) -> Result<PhaseDerivative, SignalError> {
    let frames = stft.frames();
    if frames.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let n_frames = frames.len();
    let n_bins = frames[0].len();
    let wrap = |d: f64| -> f64 {
        let mut d = d;
        while d > PI {
            d -= 2.0 * PI;
        }
        while d <= -PI {
            d += 2.0 * PI;
        }
        d
    };
    let mut values = vec![vec![0.0; n_bins]; n_frames];
    let mut reliable = vec![vec![false; n_bins]; n_frames];
    for n in 0..n_frames {
        for m in 0..n_bins {
            let cur = frames[n][m];
            let prev = match kind {
                PhaseDerivKind::Time => {
                    if n == 0 {
                        cur
                    } else {
                        frames[n - 1][m]
                    }
                }
                PhaseDerivKind::Frequency => {
                    if m == 0 {
                        cur
                    } else {
                        frames[n][m - 1]
                    }
                }
            };
            let ok = cur.abs() > mag_tol && prev.abs() > mag_tol;
            reliable[n][m] = ok;
            values[n][m] = if ok {
                wrap(cur.arg() - prev.arg())
            } else {
                0.0
            };
        }
    }
    Ok(PhaseDerivative {
        values,
        reliable,
        mag_tol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirp(len: usize) -> Vec<f64> {
        (0..len).map(|i| (0.001 * (i * i) as f64).sin()).collect()
    }

    #[test]
    fn gabor_transform_produces_frames() {
        let s = chirp(256);
        let g = gabor_transform(&s, 32, 8, 32).unwrap();
        assert_eq!(g.num_frames(), 32);
        assert_eq!(g.num_bins(), 32);
    }

    #[test]
    fn pure_tone_time_derivative_matches_frequency() {
        // Tone at bin k0: phase advances by 2π·k0·hop/M per frame.
        let n = 256usize;
        let k0 = 4usize;
        let m_size = 32usize;
        let hop = 8usize;
        let s: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / m_size as f64).cos())
            .collect();
        let g = gabor_transform(&s, 32, hop, m_size).unwrap();
        let pd = phase_derivative(&g, PhaseDerivKind::Time, 1e-6).unwrap();
        let expected = {
            let raw: f64 = 2.0 * PI * k0 as f64 * hop as f64 / m_size as f64;
            // Wrapped into (-π, π].
            let mut d = raw;
            while d > PI {
                d -= 2.0 * PI;
            }
            d
        };
        // Check interior frames at the tone bin.
        for frame in 4..g.num_frames() - 4 {
            if pd.reliable[frame][k0] {
                assert!(
                    (pd.values[frame][k0] - expected).abs() < 1e-6,
                    "frame {frame}: {} vs {expected}",
                    pd.values[frame][k0]
                );
            }
        }
    }

    #[test]
    fn low_magnitude_coefficients_flagged_unreliable() {
        let s = vec![0.0; 128]; // all-zero signal: every coefficient ~0
        let g = gabor_transform(&s, 16, 4, 16).unwrap();
        let pd = phase_derivative(&g, PhaseDerivKind::Frequency, 1e-12).unwrap();
        let any_reliable = pd.reliable.iter().flatten().any(|&b| b);
        assert!(!any_reliable, "zero signal should have no reliable phases");
    }

    #[test]
    fn reliability_mask_depends_on_threshold() {
        let s = chirp(128);
        let g = gabor_transform(&s, 16, 4, 16).unwrap();
        let strict = phase_derivative(&g, PhaseDerivKind::Time, 1e3).unwrap();
        let loose = phase_derivative(&g, PhaseDerivKind::Time, 1e-12).unwrap();
        let count = |p: &PhaseDerivative| p.reliable.iter().flatten().filter(|&&b| b).count();
        assert!(count(&loose) > count(&strict));
        assert_eq!(count(&strict), 0);
    }

    #[test]
    fn values_are_wrapped() {
        let s = chirp(200);
        let g = gabor_transform(&s, 32, 8, 32).unwrap();
        for kind in [PhaseDerivKind::Time, PhaseDerivKind::Frequency] {
            let pd = phase_derivative(&g, kind, 1e-9).unwrap();
            for row in &pd.values {
                for &v in row {
                    assert!(v > -PI - 1e-12 && v <= PI + 1e-12);
                }
            }
        }
    }
}
