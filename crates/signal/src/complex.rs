use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
///
/// A minimal, `Copy` value type covering exactly what the transform kernels
/// need; not a general-purpose complex library.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    pub fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor at angle `theta`.
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (modulus).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude — avoids the square root when only comparing.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, s: f64) -> Complex64 {
        self.scale(s)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, o: Complex64) -> Complex64 {
        let d = o.norm_sqr();
        Complex64 {
            re: (self.re * o.re + self.im * o.im) / d,
            im: (self.im * o.re - self.re * o.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn multiplication_matches_formula() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-14 && (q.im - a.im).abs() < 1e-14);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - PI / 3.0).abs() < 1e-14);
    }

    #[test]
    fn cis_is_unit_phasor() {
        let z = Complex64::cis(1.234);
        assert!((z.abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(2.0, -3.0);
        assert_eq!(a.conj().conj(), a);
        let p = a * a.conj();
        assert!((p.re - a.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn finiteness() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
