//! Spectral-subtraction denoising — a worked example of the "ensuing
//! processing" §IV-B warns about: modify STFT coefficients, invert, and
//! everything hinges on the phase convention being handled consistently.
//!
//! The classic recipe: estimate the noise magnitude spectrum from a
//! noise-only segment, subtract it (with flooring) from each frame's
//! magnitude, keep the original phases, ISTFT back. Because the
//! modification is magnitude-only, it is convention-*invariant* — but
//! only if analysis and synthesis use the *same* convention, which is
//! precisely the cross-library trap of Fig. 3.

use crate::stft::{Stft, StftPlan};
use crate::{Complex64, SignalError};

/// Denoising parameters.
#[derive(Debug, Clone)]
pub struct DenoiseConfig {
    /// Over-subtraction factor (1.0 = plain subtraction; >1 suppresses
    /// more noise at the cost of signal distortion).
    pub oversubtraction: f64,
    /// Spectral floor as a fraction of the noisy magnitude (avoids
    /// "musical noise" holes); typical 0.01–0.1.
    pub floor: f64,
}

impl Default for DenoiseConfig {
    fn default() -> Self {
        DenoiseConfig {
            oversubtraction: 1.0,
            floor: 0.05,
        }
    }
}

/// Estimates a per-bin noise magnitude profile from a noise-only signal
/// segment, as the mean magnitude over its frames.
///
/// # Errors
/// Propagates analysis errors.
// rcr-lint: unit(return = Dimensionless, reason = "linear magnitude per bin; spectral subtraction operates pre-dB")
pub fn noise_profile(plan: &StftPlan, noise: &[f64]) -> Result<Vec<f64>, SignalError> {
    let stft = plan.analyze(noise)?;
    let bins = stft.num_bins();
    let mut profile = vec![0.0; bins];
    for frame in stft.frames() {
        for (p, c) in profile.iter_mut().zip(frame) {
            *p += c.abs();
        }
    }
    let n = stft.num_frames().max(1) as f64;
    for p in &mut profile {
        *p /= n;
    }
    Ok(profile)
}

/// Applies magnitude spectral subtraction to an analyzed STFT in place
/// (phases preserved).
///
/// # Errors
/// * [`SignalError::InvalidParameter`] when the profile length differs
///   from the STFT bin count or the config is out of range.
// rcr-lint: unit(profile = Dimensionless, reason = "linear magnitudes from noise_profile; feeding dB here would subtract in the wrong domain")
pub fn subtract_spectrum(
    stft: &mut Stft,
    profile: &[f64],
    config: &DenoiseConfig,
) -> Result<(), SignalError> {
    if profile.len() != stft.num_bins() {
        return Err(SignalError::InvalidParameter(format!(
            "profile has {} bins, STFT has {}",
            profile.len(),
            stft.num_bins()
        )));
    }
    if !(config.oversubtraction > 0.0) || !(0.0..1.0).contains(&config.floor) {
        return Err(SignalError::InvalidParameter(
            "need oversubtraction > 0 and floor in [0, 1)".into(),
        ));
    }
    for frame in stft.frames_mut() {
        for (c, &noise_mag) in frame.iter_mut().zip(profile) {
            let mag = c.abs();
            if mag <= 0.0 {
                continue;
            }
            let cleaned = (mag - config.oversubtraction * noise_mag).max(config.floor * mag);
            let scale = cleaned / mag;
            *c = Complex64::new(c.re * scale, c.im * scale);
        }
    }
    Ok(())
}

/// End-to-end denoise: analyze, subtract, synthesize.
///
/// # Errors
/// Propagates STFT and parameter errors.
// rcr-lint: unit(profile = Dimensionless, reason = "same linear-domain profile contract as subtract_spectrum")
pub fn denoise(
    plan: &StftPlan,
    noisy: &[f64],
    profile: &[f64],
    config: &DenoiseConfig,
) -> Result<Vec<f64>, SignalError> {
    let mut stft = plan.analyze(noisy)?;
    subtract_spectrum(&mut stft, profile, config)?;
    plan.synthesize(&stft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stft::PhaseConvention;
    use crate::window::{window, WindowKind, WindowSymmetry};

    fn plan() -> StftPlan {
        let g = window(WindowKind::Hann, WindowSymmetry::Periodic, 32).unwrap();
        StftPlan::new(g, 8, 32, PhaseConvention::TimeInvariant).unwrap()
    }

    fn tone(n: usize, bin: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin * i as f64 / 32.0).sin())
            .collect()
    }

    fn white_noise(n: usize, amp: f64) -> Vec<f64> {
        let mut state = 0xDEADBEEFu64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                amp * (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
            })
            .collect()
    }

    fn snr_db(clean: &[f64], test: &[f64]) -> f64 {
        let sig: f64 = clean.iter().map(|v| v * v).sum();
        let err: f64 = clean.iter().zip(test).map(|(a, b)| (a - b) * (a - b)).sum();
        10.0 * (sig / err.max(1e-30)).log10()
    }

    #[test]
    fn improves_snr_on_tone_in_noise() {
        let n = 512;
        let clean = tone(n, 5.0);
        let noise = white_noise(n, 0.3);
        let noisy: Vec<f64> = clean.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let p = plan();
        let profile = noise_profile(&p, &noise).unwrap();
        let out = denoise(&p, &noisy, &profile, &DenoiseConfig::default()).unwrap();
        let before = snr_db(&clean, &noisy);
        let after = snr_db(&clean, &out);
        assert!(after > before + 3.0, "SNR {before:.1} dB → {after:.1} dB");
    }

    #[test]
    fn clean_signal_mostly_unharmed() {
        let n = 512;
        let clean = tone(n, 5.0);
        let p = plan();
        // Subtracting a tiny noise floor from a clean signal should not
        // destroy it.
        let profile = vec![1e-4; 32];
        let out = denoise(&p, &clean, &profile, &DenoiseConfig::default()).unwrap();
        assert!(snr_db(&clean, &out) > 30.0);
    }

    #[test]
    fn floor_prevents_total_erasure() {
        let n = 256;
        let noise = white_noise(n, 0.5);
        let p = plan();
        let profile = noise_profile(&p, &noise).unwrap();
        // Aggressive over-subtraction: output is attenuated but not zero.
        let cfg = DenoiseConfig {
            oversubtraction: 5.0,
            floor: 0.05,
        };
        let out = denoise(&p, &noise, &profile, &cfg).unwrap();
        let energy: f64 = out.iter().map(|v| v * v).sum();
        assert!(energy > 0.0);
        let original: f64 = noise.iter().map(|v| v * v).sum();
        assert!(energy < original, "denoise must attenuate pure noise");
    }

    #[test]
    fn validation() {
        let p = plan();
        let noisy = tone(256, 4.0);
        let mut stft = p.analyze(&noisy).unwrap();
        assert!(subtract_spectrum(&mut stft, &[1.0; 5], &DenoiseConfig::default()).is_err());
        let bad = DenoiseConfig {
            oversubtraction: 0.0,
            floor: 0.05,
        };
        assert!(subtract_spectrum(&mut stft, &vec![0.1; 32], &bad).is_err());
        let bad = DenoiseConfig {
            oversubtraction: 1.0,
            floor: 1.5,
        };
        assert!(subtract_spectrum(&mut stft, &vec![0.1; 32], &bad).is_err());
    }
}
