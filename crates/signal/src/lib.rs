//! Signal-processing kernels with explicit numerical conventions.
//!
//! Reproduces the paper's §IV-A/B: the 5G-relevant transform core —
//! FFT, IFFT, RFFT, IRFFT, STFT, ISTFT — implemented *with the conventions
//! spelled out*, plus an emulation layer for the library defects the paper
//! catalogs in Fig. 3.
//!
//! * [`Complex64`] — minimal complex arithmetic (no external deps).
//! * [`fft`] — radix-2 + Bluestein FFT for arbitrary lengths, real
//!   transforms, and a deliberately naive `O(n²)` DFT as the oracle.
//! * [`window`] — Hann/Hamming/Gaussian/Blackman windows (periodic &
//!   symmetric variants — another classic library-mismatch source).
//! * [`stft`] — the short-time Fourier transform under three conventions:
//!   the **time-invariant** convention of Eq. 5, the **simplified
//!   stored-window** convention of Eq. 6 (which "imbues a delay as well as
//!   a phase skew that is dependent on the stored window length L_g"), and
//!   the point-wise phase-factor correction the paper prescribes for
//!   converting between them.
//! * [`gabor`] — Gabor phase-derivative analogue of the `gabphasederiv`
//!   routine quoted in §IV-B, including the low-magnitude reliability mask
//!   ("the phase of complex numbers close to the machine precision is
//!   almost random").
//! * [`profile`] — [`profile::LibraryProfile`] emulates each documented
//!   defect class so the [`profile::ConformanceSuite`] can regenerate the
//!   Fig. 3 issue matrix.
//!
//! # Example
//!
//! ```
//! use rcr_signal::fft;
//!
//! # fn main() -> Result<(), rcr_signal::SignalError> {
//! let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
//! let spec = fft::rfft(&x)?;
//! let back = fft::irfft(&spec, x.len())?;
//! assert!(x.iter().zip(&back).all(|(a, b)| (a - b).abs() < 1e-12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
pub mod denoise;
mod error;
pub mod fft;
pub mod gabor;
pub mod ofdm;
pub mod peaks;
pub mod profile;
pub mod spectrogram;
pub mod stft;
pub mod window;

pub use complex::Complex64;
pub use error::SignalError;
