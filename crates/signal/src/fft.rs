//! Fast Fourier transforms: radix-2 Cooley–Tukey with a Bluestein fallback
//! for arbitrary lengths, real-input transforms, and a naive DFT oracle.
//!
//! Conventions (fixed and documented — the whole point of this crate):
//! * Forward transform: `X[k] = Σ_n x[n]·e^{-2πikn/N}` (no scaling).
//! * Inverse transform: `x[n] = (1/N)·Σ_k X[k]·e^{+2πikn/N}`.
//! * [`rfft`] returns the `N/2 + 1` non-redundant bins of a real signal;
//!   [`irfft`] requires the original length because `N` is not recoverable
//!   from the bin count alone when `N` is odd — exactly the signature
//!   ambiguity class the paper's §IV-A discusses.

use crate::{Complex64, SignalError};
// BTreeMap rather than HashMap: the cache is keyed by transform length
// and tiny, and a BTree makes any future iteration over it ordered by
// construction (hash-iteration-order invariant).
use std::collections::BTreeMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// Naive `O(n²)` DFT — the correctness oracle for the fast paths and the
/// "deliberately slow" baseline in benchmarks.
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn dft_naive(x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
    if x.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &xj) in x.iter().enumerate() {
            let angle = -2.0 * PI * (k as f64) * (j as f64) / n as f64;
            acc += xj * Complex64::cis(angle);
        }
        *o = acc;
    }
    Ok(out)
}

/// A precomputed transform plan for one length: bit-reversal table plus
/// per-stage twiddle factors (both directions), and for non-power-of-two
/// lengths the Bluestein chirp and the pre-transformed chirp filter.
///
/// Plans are immutable and shared: [`FftPlan::for_len`] memoizes them in a
/// process-wide cache, so repeated transforms of the same length — the
/// STFT frame loop being the motivating case — pay the setup cost once
/// instead of recomputing tables per call. [`fft`]/[`ifft`] route through
/// the same cache, so planned and unplanned calls produce identical
/// results.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug)]
enum PlanKind {
    Pow2(Pow2Plan),
    Bluestein {
        /// Forward chirp `e^{-iπk²/n}` (inverse uses the conjugate).
        chirp: Vec<Complex64>,
        /// Pow2 convolution length `m = (2n − 1).next_power_of_two()`.
        inner: Pow2Plan,
        /// Forward transform of the chirp filter, forward direction.
        filter_fwd: Vec<Complex64>,
        /// Forward transform of the chirp filter, inverse direction.
        filter_inv: Vec<Complex64>,
    },
}

/// Tables for the iterative radix-2 kernel.
#[derive(Debug)]
struct Pow2Plan {
    n: usize,
    bitrev: Vec<usize>,
    /// `twiddles[s][k] = e^{-2πik/len}` with `len = 2^(s+1)`.
    twiddles_fwd: Vec<Vec<Complex64>>,
    /// Conjugate tables for the inverse direction.
    twiddles_inv: Vec<Vec<Complex64>>,
}

impl Pow2Plan {
    fn new(n: usize) -> Pow2Plan {
        debug_assert!(n.is_power_of_two());
        let mut bitrev = vec![0usize; n];
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            bitrev[i] = j;
        }
        let mut twiddles_fwd = Vec::new();
        let mut twiddles_inv = Vec::new();
        let mut len = 2usize;
        while len <= n {
            let fwd: Vec<Complex64> = (0..len / 2)
                .map(|k| Complex64::cis(-2.0 * PI * k as f64 / len as f64))
                .collect();
            let inv: Vec<Complex64> = fwd.iter().map(|w| w.conj()).collect();
            twiddles_fwd.push(fwd);
            twiddles_inv.push(inv);
            len <<= 1;
        }
        Pow2Plan {
            n,
            bitrev,
            twiddles_fwd,
            twiddles_inv,
        }
    }

    /// Unnormalized in-place transform using the precomputed tables.
    fn process(&self, buf: &mut [Complex64], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        for i in 1..n {
            let j = self.bitrev[i];
            if i < j {
                buf.swap(i, j);
            }
        }
        let stages = if inverse {
            &self.twiddles_inv
        } else {
            &self.twiddles_fwd
        };
        let mut len = 2usize;
        for tw in stages {
            let half = len / 2;
            let mut i = 0;
            while i < n {
                for k in 0..half {
                    let u = buf[i + k];
                    let v = buf[i + k + half] * tw[k];
                    buf[i + k] = u + v;
                    buf[i + k + half] = u - v;
                }
                i += len;
            }
            len <<= 1;
        }
    }
}

impl FftPlan {
    /// Returns the shared plan for length `n`, building and caching it on
    /// first use.
    ///
    /// # Errors
    /// Returns [`SignalError::EmptyInput`] for `n == 0`.
    pub fn for_len(n: usize) -> Result<Arc<FftPlan>, SignalError> {
        if n == 0 {
            return Err(SignalError::EmptyInput);
        }
        static CACHE: OnceLock<Mutex<BTreeMap<usize, Arc<FftPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        Ok(Arc::clone(
            map.entry(n).or_insert_with(|| Arc::new(FftPlan::build(n))),
        ))
    }

    /// The transform length this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn build(n: usize) -> FftPlan {
        if n.is_power_of_two() {
            return FftPlan {
                n,
                kind: PlanKind::Pow2(Pow2Plan::new(n)),
            };
        }
        // Bluestein: w[k] = e^{-iπk²/n}, using k² mod 2n to bound angles.
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let idx = (k as u128 * k as u128) % (2 * n as u128);
                Complex64::cis(-PI * idx as f64 / n as f64)
            })
            .collect();
        let m = (2 * n - 1).next_power_of_two();
        let inner = Pow2Plan::new(m);
        let filter_for = |inverse: bool| -> Vec<Complex64> {
            let mut b = vec![Complex64::ZERO; m];
            for k in 0..n {
                let c = if inverse { chirp[k] } else { chirp[k].conj() };
                b[k] = c;
                if k > 0 {
                    b[m - k] = c;
                }
            }
            inner.process(&mut b, false);
            b
        };
        let filter_fwd = filter_for(false);
        let filter_inv = filter_for(true);
        FftPlan {
            n,
            kind: PlanKind::Bluestein {
                chirp,
                inner,
                filter_fwd,
                filter_inv,
            },
        }
    }

    /// Forward transform (no scaling).
    ///
    /// # Errors
    /// Returns [`SignalError::InvalidLength`] when `x.len()` differs from
    /// the plan length.
    pub fn forward(&self, x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
        self.transform(x, false)
    }

    /// Inverse transform (with `1/N` normalization).
    ///
    /// # Errors
    /// Returns [`SignalError::InvalidLength`] when `x.len()` differs from
    /// the plan length.
    pub fn inverse(&self, x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
        let mut out = self.transform(x, true)?;
        let scale = 1.0 / self.n as f64;
        for v in &mut out {
            *v = v.scale(scale);
        }
        Ok(out)
    }

    fn transform(&self, x: &[Complex64], inverse: bool) -> Result<Vec<Complex64>, SignalError> {
        if x.len() != self.n {
            return Err(SignalError::InvalidLength {
                what: "fft plan input length",
                got: x.len(),
            });
        }
        match &self.kind {
            PlanKind::Pow2(plan) => {
                let mut buf = x.to_vec();
                plan.process(&mut buf, inverse);
                Ok(buf)
            }
            PlanKind::Bluestein {
                chirp,
                inner,
                filter_fwd,
                filter_inv,
            } => {
                let n = self.n;
                let m = inner.n;
                // Inverse direction conjugates the chirp.
                let c = |k: usize| if inverse { chirp[k].conj() } else { chirp[k] };
                let filter = if inverse { filter_inv } else { filter_fwd };
                let mut a = vec![Complex64::ZERO; m];
                for k in 0..n {
                    a[k] = x[k] * c(k);
                }
                inner.process(&mut a, false);
                for (av, fv) in a.iter_mut().zip(filter) {
                    *av *= *fv;
                }
                inner.process(&mut a, true);
                let scale = 1.0 / m as f64;
                Ok((0..n).map(|k| (a[k] * c(k)).scale(scale)).collect())
            }
        }
    }
}

/// Forward FFT of a complex signal of arbitrary length.
///
/// Power-of-two lengths use iterative radix-2 Cooley–Tukey; other lengths
/// use Bluestein's chirp-z algorithm (exact, `O(n log n)`). Twiddle and
/// bit-reversal tables come from the process-wide [`FftPlan`] cache, so
/// repeated same-length calls skip the setup entirely.
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn fft(x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
    if x.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    FftPlan::for_len(x.len())?.forward(x)
}

/// Inverse FFT (with `1/N` normalization).
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn ifft(x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
    if x.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    FftPlan::for_len(x.len())?.inverse(x)
}

/// Real-input FFT: returns the `N/2 + 1` non-redundant spectrum bins.
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn rfft(x: &[f64]) -> Result<Vec<Complex64>, SignalError> {
    let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    let full = fft(&cx)?;
    let n = x.len();
    Ok(full[..n / 2 + 1].to_vec())
}

/// Inverse real FFT. `n` is the original signal length, which **must** be
/// supplied: a spectrum of `m` bins corresponds to either `2(m-1)` (even)
/// or `2m - 1` (odd) samples.
///
/// # Errors
/// * [`SignalError::EmptyInput`] for an empty spectrum.
/// * [`SignalError::InvalidLength`] when `n` is inconsistent with the
///   number of bins.
pub fn irfft(spectrum: &[Complex64], n: usize) -> Result<Vec<f64>, SignalError> {
    if spectrum.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    if n / 2 + 1 != spectrum.len() {
        return Err(SignalError::InvalidLength {
            what: "irfft output length",
            got: n,
        });
    }
    // Rebuild the full Hermitian spectrum.
    let mut full = Vec::with_capacity(n);
    full.extend_from_slice(spectrum);
    for k in (1..n - n / 2).rev() {
        full.push(spectrum[k].conj());
    }
    debug_assert_eq!(full.len(), n);
    let time = ifft(&full)?;
    Ok(time.into_iter().map(|c| c.re).collect())
}

/// Total spectral energy `Σ|X[k]|²` — used for Parseval checks.
pub fn spectral_energy(spectrum: &[Complex64]) -> f64 {
    spectrum.iter().map(|c| c.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let spec = fft(&x).unwrap();
        for s in &spec {
            assert!((s.re - 1.0).abs() < 1e-14 && s.im.abs() < 1e-14);
        }
    }

    #[test]
    fn fft_matches_naive_dft_pow2() {
        let x: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        assert_spectra_close(&fft(&x).unwrap(), &dft_naive(&x).unwrap(), 1e-10);
    }

    #[test]
    fn fft_matches_naive_dft_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 12, 15, 17, 31] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new(i as f64 * 0.7 - 1.0, (i * i % 5) as f64))
                .collect();
            assert_spectra_close(&fft(&x).unwrap(), &dft_naive(&x).unwrap(), 1e-9);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        for n in [8usize, 13, 16, 27] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 1.7).sin(), (i as f64).cos()))
                .collect();
            let back = ifft(&fft(&x).unwrap()).unwrap();
            assert_spectra_close(&back, &x, 1e-10);
        }
    }

    #[test]
    fn rfft_irfft_roundtrip_even_and_odd() {
        for n in [8usize, 9, 16, 21] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
            let spec = rfft(&x).unwrap();
            assert_eq!(spec.len(), n / 2 + 1);
            let back = irfft(&spec, n).unwrap();
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn irfft_rejects_inconsistent_length() {
        let spec = vec![Complex64::ONE; 5];
        assert!(irfft(&spec, 12).is_err()); // 12/2+1 = 7 != 5
        assert!(irfft(&spec, 8).is_ok()); // 8/2+1 = 5
        assert!(irfft(&spec, 9).is_ok()); // 9/2+1 = 5
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 64usize;
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.1).cos() * (i as f64 * 0.02).exp())
            .collect();
        let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        let spec = fft(&cx).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy = spectral_energy(&spec) / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 12usize;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_spectra_close(&fsum, &expect, 1e-9);
    }

    #[test]
    fn single_tone_peaks_at_right_bin() {
        let n = 32usize;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = rfft(&x).unwrap();
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = crate::peaks::peak_bin(&mags).unwrap();
        assert_eq!(peak, k0);
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(fft(&[]).is_err());
        assert!(ifft(&[]).is_err());
        assert!(rfft(&[]).is_err());
        assert!(dft_naive(&[]).is_err());
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex64::new(3.0, -2.0)];
        assert_eq!(fft(&x).unwrap(), x);
        assert_eq!(ifft(&x).unwrap(), x);
    }

    #[test]
    fn plan_cache_returns_shared_plans() {
        let a = FftPlan::for_len(48).unwrap();
        let b = FftPlan::for_len(48).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same length must hit the cache");
        assert_eq!(a.len(), 48);
        assert!(!a.is_empty());
        assert!(FftPlan::for_len(0).is_err());
    }

    #[test]
    fn planned_transform_is_bitwise_identical_to_fft() {
        // `fft`/`ifft` route through the cache, so a user-held plan must
        // produce the exact same floats — pow2 and Bluestein alike.
        for n in [16usize, 20] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), i as f64 * 0.25))
                .collect();
            let plan = FftPlan::for_len(n).unwrap();
            assert_eq!(plan.forward(&x).unwrap(), fft(&x).unwrap());
            assert_eq!(plan.inverse(&x).unwrap(), ifft(&x).unwrap());
        }
    }

    #[test]
    fn plan_rejects_mismatched_length() {
        let plan = FftPlan::for_len(8).unwrap();
        let x = vec![Complex64::ONE; 4];
        assert!(matches!(
            plan.forward(&x),
            Err(SignalError::InvalidLength { got: 4, .. })
        ));
    }
}
