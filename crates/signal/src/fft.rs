//! Fast Fourier transforms: radix-2 Cooley–Tukey with a Bluestein fallback
//! for arbitrary lengths, real-input transforms, and a naive DFT oracle.
//!
//! Conventions (fixed and documented — the whole point of this crate):
//! * Forward transform: `X[k] = Σ_n x[n]·e^{-2πikn/N}` (no scaling).
//! * Inverse transform: `x[n] = (1/N)·Σ_k X[k]·e^{+2πikn/N}`.
//! * [`rfft`] returns the `N/2 + 1` non-redundant bins of a real signal;
//!   [`irfft`] requires the original length because `N` is not recoverable
//!   from the bin count alone when `N` is odd — exactly the signature
//!   ambiguity class the paper's §IV-A discusses.

use crate::{Complex64, SignalError};
use std::f64::consts::PI;

/// Naive `O(n²)` DFT — the correctness oracle for the fast paths and the
/// "deliberately slow" baseline in benchmarks.
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn dft_naive(x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
    if x.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &xj) in x.iter().enumerate() {
            let angle = -2.0 * PI * (k as f64) * (j as f64) / n as f64;
            acc += xj * Complex64::cis(angle);
        }
        *o = acc;
    }
    Ok(out)
}

/// Forward FFT of a complex signal of arbitrary length.
///
/// Power-of-two lengths use iterative radix-2 Cooley–Tukey; other lengths
/// use Bluestein's chirp-z algorithm (exact, `O(n log n)`).
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn fft(x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
    if x.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let n = x.len();
    if n.is_power_of_two() {
        let mut buf = x.to_vec();
        fft_pow2_in_place(&mut buf, false);
        Ok(buf)
    } else {
        bluestein(x, false)
    }
}

/// Inverse FFT (with `1/N` normalization).
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn ifft(x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
    if x.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    let n = x.len();
    let mut out = if n.is_power_of_two() {
        let mut buf = x.to_vec();
        fft_pow2_in_place(&mut buf, true);
        buf
    } else {
        bluestein(x, true)?
    };
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(scale);
    }
    Ok(out)
}

/// Real-input FFT: returns the `N/2 + 1` non-redundant spectrum bins.
///
/// # Errors
/// Returns [`SignalError::EmptyInput`] for empty input.
pub fn rfft(x: &[f64]) -> Result<Vec<Complex64>, SignalError> {
    let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    let full = fft(&cx)?;
    let n = x.len();
    Ok(full[..n / 2 + 1].to_vec())
}

/// Inverse real FFT. `n` is the original signal length, which **must** be
/// supplied: a spectrum of `m` bins corresponds to either `2(m-1)` (even)
/// or `2m - 1` (odd) samples.
///
/// # Errors
/// * [`SignalError::EmptyInput`] for an empty spectrum.
/// * [`SignalError::InvalidLength`] when `n` is inconsistent with the
///   number of bins.
pub fn irfft(spectrum: &[Complex64], n: usize) -> Result<Vec<f64>, SignalError> {
    if spectrum.is_empty() {
        return Err(SignalError::EmptyInput);
    }
    if n / 2 + 1 != spectrum.len() {
        return Err(SignalError::InvalidLength { what: "irfft output length", got: n });
    }
    // Rebuild the full Hermitian spectrum.
    let mut full = Vec::with_capacity(n);
    full.extend_from_slice(spectrum);
    for k in (1..n - n / 2).rev() {
        full.push(spectrum[k].conj());
    }
    debug_assert_eq!(full.len(), n);
    let time = ifft(&full)?;
    Ok(time.into_iter().map(|c| c.re).collect())
}

/// In-place radix-2 Cooley–Tukey FFT (length must be a power of two).
/// `inverse` selects the conjugate transform **without** normalization.
fn fft_pow2_in_place(buf: &mut [Complex64], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein chirp-z transform for arbitrary lengths.
fn bluestein(x: &[Complex64], inverse: bool) -> Result<Vec<Complex64>, SignalError> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[k] = e^{sign·iπk²/n}; use k² mod 2n to keep angles bounded.
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let idx = (k as u128 * k as u128) % (2 * n as u128);
            Complex64::cis(sign * PI * idx as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_pow2_in_place(&mut a, false);
    fft_pow2_in_place(&mut b, false);
    for k in 0..m {
        a[k] = a[k] * b[k];
    }
    fft_pow2_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    Ok((0..n).map(|k| (a[k] * chirp[k]).scale(scale)).collect())
}

/// Total spectral energy `Σ|X[k]|²` — used for Parseval checks.
pub fn spectral_energy(spectrum: &[Complex64]) -> f64 {
    spectrum.iter().map(|c| c.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let spec = fft(&x).unwrap();
        for s in &spec {
            assert!((s.re - 1.0).abs() < 1e-14 && s.im.abs() < 1e-14);
        }
    }

    #[test]
    fn fft_matches_naive_dft_pow2() {
        let x: Vec<Complex64> =
            (0..16).map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos())).collect();
        assert_spectra_close(&fft(&x).unwrap(), &dft_naive(&x).unwrap(), 1e-10);
    }

    #[test]
    fn fft_matches_naive_dft_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 12, 15, 17, 31] {
            let x: Vec<Complex64> =
                (0..n).map(|i| Complex64::new(i as f64 * 0.7 - 1.0, (i * i % 5) as f64)).collect();
            assert_spectra_close(&fft(&x).unwrap(), &dft_naive(&x).unwrap(), 1e-9);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        for n in [8usize, 13, 16, 27] {
            let x: Vec<Complex64> =
                (0..n).map(|i| Complex64::new((i as f64 * 1.7).sin(), (i as f64).cos())).collect();
            let back = ifft(&fft(&x).unwrap()).unwrap();
            assert_spectra_close(&back, &x, 1e-10);
        }
    }

    #[test]
    fn rfft_irfft_roundtrip_even_and_odd() {
        for n in [8usize, 9, 16, 21] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
            let spec = rfft(&x).unwrap();
            assert_eq!(spec.len(), n / 2 + 1);
            let back = irfft(&spec, n).unwrap();
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn irfft_rejects_inconsistent_length() {
        let spec = vec![Complex64::ONE; 5];
        assert!(irfft(&spec, 12).is_err()); // 12/2+1 = 7 != 5
        assert!(irfft(&spec, 8).is_ok()); // 8/2+1 = 5
        assert!(irfft(&spec, 9).is_ok()); // 9/2+1 = 5
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 64usize;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos() * (i as f64 * 0.02).exp()).collect();
        let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        let spec = fft(&cx).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy = spectral_energy(&spec) / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 12usize;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_spectra_close(&fsum, &expect, 1e-9);
    }

    #[test]
    fn single_tone_peaks_at_right_bin() {
        let n = 32usize;
        let k0 = 5;
        let x: Vec<f64> =
            (0..n).map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos()).collect();
        let spec = rfft(&x).unwrap();
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k0);
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(fft(&[]).is_err());
        assert!(ifft(&[]).is_err());
        assert!(rfft(&[]).is_err());
        assert!(dft_naive(&[]).is_err());
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex64::new(3.0, -2.0)];
        assert_eq!(fft(&x).unwrap(), x);
        assert_eq!(ifft(&x).unwrap(), x);
    }
}
