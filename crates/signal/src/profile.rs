//! Emulation of the library defect classes cataloged in the paper's
//! Fig. 3, and the conformance suite that detects them.
//!
//! The paper examined FFT/IFFT/RFFT/IRFFT/STFT/ISTFT implementations
//! across Caffe, Caffe2, Julia, PyTorch, SciPy and TensorFlow over
//! 2018–2020 and cataloged recurring defect classes. Each
//! [`LibraryProfile`] variant emulates one of those classes *faithfully* —
//! same symptom, same mechanism — so the [`ConformanceSuite`] can
//! regenerate the issue matrix (experiment E3) without shipping the
//! original buggy binaries.

use crate::fft::{fft, ifft, rfft, spectral_energy};
use crate::stft::{FrameAlignment, Normalization, PaddingMode, PhaseConvention, StftPlan};
use crate::window::{window, WindowKind, WindowSymmetry};
use crate::{Complex64, SignalError};
use rcr_numerics::stable::{log_softmax, naive_log_softmax};

/// A library behavior profile: one defect class from the Fig. 3 catalog
/// (plus the clean reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LibraryProfile {
    /// Correct modern behavior — the paper's "M-GNU-O"-style reference.
    Reference,
    /// Pre-v0.4.1 signature class (§IV-A): the forward transform applies a
    /// `1/N` normalization the caller does not expect, so code written
    /// against the documented (Librosa-consistent) signature gets scaled
    /// spectra. Emulates the PyTorch `torch.stft` signature break fixed in
    /// \#9308.
    LegacySignature,
    /// Stored-window phase-skew class (§IV-B, Eqs. 5–6): the STFT is
    /// computed in the simplified stored-window convention while phase
    /// consumers assume the time-invariant convention; magnitudes agree,
    /// phases carry the `e^{-2πim⌊L_g/2⌋/M}` skew. Emulates the
    /// TensorFlow/SciPy phase-convention mismatch.
    PhaseSkew,
    /// Non-circular framing class (§IV-B): the signal is not treated
    /// circularly; frames exist only for `n ∈ [0, ⌊(L-L_g)/a⌋]`, so tail
    /// samples are silently dropped.
    NonCircular,
    /// Symmetric-window class: a filter-design (symmetric) window is used
    /// for spectral analysis, breaking constant-overlap-add and degrading
    /// ISTFT reconstruction.
    SymmetricWindow,
    /// Naive unstable kernels (§V): composed `log(softmax(x))` instead of
    /// the fused kernel; overflows at extreme logits.
    NaiveKernels,
}

impl LibraryProfile {
    /// All profiles in catalog order.
    pub fn all() -> &'static [LibraryProfile] {
        &[
            LibraryProfile::Reference,
            LibraryProfile::LegacySignature,
            LibraryProfile::PhaseSkew,
            LibraryProfile::NonCircular,
            LibraryProfile::SymmetricWindow,
            LibraryProfile::NaiveKernels,
        ]
    }

    /// Short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            LibraryProfile::Reference => "reference",
            LibraryProfile::LegacySignature => "legacy-signature",
            LibraryProfile::PhaseSkew => "phase-skew",
            LibraryProfile::NonCircular => "non-circular",
            LibraryProfile::SymmetricWindow => "symmetric-window",
            LibraryProfile::NaiveKernels => "naive-kernels",
        }
    }

    /// Forward FFT as this profile's library would compute it.
    ///
    /// # Errors
    /// Propagates FFT errors.
    pub fn forward_fft(&self, x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
        let mut out = fft(x)?;
        if *self == LibraryProfile::LegacySignature {
            // The signature break: forward transform silently normalized.
            let s = 1.0 / x.len() as f64;
            for v in &mut out {
                *v = v.scale(s);
            }
        }
        Ok(out)
    }

    /// Inverse FFT as this profile's library would compute it (always the
    /// documented `1/N` inverse — the *pair* is what is inconsistent for
    /// [`LibraryProfile::LegacySignature`]).
    ///
    /// # Errors
    /// Propagates FFT errors.
    pub fn inverse_fft(&self, x: &[Complex64]) -> Result<Vec<Complex64>, SignalError> {
        ifft(x)
    }

    /// Builds this profile's STFT plan for a window of length `lg`, hop
    /// `hop` and FFT size `m`.
    ///
    /// # Errors
    /// Propagates plan validation errors.
    pub fn stft_plan(&self, lg: usize, hop: usize, m: usize) -> Result<StftPlan, SignalError> {
        let symmetry = if *self == LibraryProfile::SymmetricWindow {
            WindowSymmetry::Symmetric
        } else {
            WindowSymmetry::Periodic
        };
        let g = window(WindowKind::Hann, symmetry, lg)?;
        let (convention, alignment, padding) = match self {
            LibraryProfile::PhaseSkew => (
                PhaseConvention::SimplifiedTimeInvariant,
                FrameAlignment::Centered,
                PaddingMode::Circular,
            ),
            LibraryProfile::NonCircular => (
                PhaseConvention::TimeInvariant,
                FrameAlignment::Causal,
                PaddingMode::Truncate,
            ),
            _ => (
                PhaseConvention::TimeInvariant,
                FrameAlignment::Centered,
                PaddingMode::Circular,
            ),
        };
        // The symmetric-window defect is really two entangled assumptions:
        // a filter-design window *plus* the constant-COLA-gain ISTFT that
        // would have been exact for the periodic window.
        let normalization = if *self == LibraryProfile::SymmetricWindow {
            Normalization::ColaConstant
        } else {
            Normalization::WindowSquaredPerSample
        };
        Ok(StftPlan::new(g, hop, m, convention)?
            .with_alignment(alignment)
            .with_padding(padding)
            .with_normalization(normalization))
    }

    /// Log-softmax as this profile's library computes it.
    // rcr-lint: unit(return = Dimensionless, reason = "log-probabilities, a pure number — natural log, not the dB log10 family")
    pub fn log_softmax(&self, xs: &[f64]) -> Vec<f64> {
        if *self == LibraryProfile::NaiveKernels {
            naive_log_softmax(xs)
        } else {
            log_softmax(xs)
        }
    }
}

/// Outcome of one conformance check against one profile.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Check identifier (e.g. `"fft-roundtrip"`).
    pub check: &'static str,
    /// The measured error metric (check-specific; smaller is better).
    pub metric: f64,
    /// Whether the metric is within the check's tolerance.
    pub pass: bool,
}

/// One row of the Fig. 3 issue matrix: a profile and its check outcomes.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The profile under test.
    pub profile: LibraryProfile,
    /// Outcomes in suite order.
    pub outcomes: Vec<CheckOutcome>,
}

impl ProfileReport {
    /// Count of failing checks.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.pass).count()
    }
}

/// The conformance suite regenerating the Fig. 3 issue matrix.
///
/// Runs a fixed battery of transform-identity checks against each
/// [`LibraryProfile`] and reports which fail where. The reference profile
/// passes everything; each defect profile fails exactly the checks its
/// defect class predicts.
#[derive(Debug, Clone)]
pub struct ConformanceSuite {
    signal_len: usize,
    window_len: usize,
    hop: usize,
    fft_size: usize,
}

impl Default for ConformanceSuite {
    fn default() -> Self {
        // 250 is deliberately not a multiple of the hop past the last full
        // window: (250-32)/8 truncates, so non-circular framing must lose
        // tail samples.
        ConformanceSuite {
            signal_len: 250,
            window_len: 32,
            hop: 8,
            fft_size: 32,
        }
    }
}

impl ConformanceSuite {
    /// Creates a suite with the default workload (256-sample multitone,
    /// 32-sample Hann window, hop 8).
    pub fn new() -> Self {
        Self::default()
    }

    /// The deterministic multitone + noise-like test signal.
    pub fn test_signal(&self) -> Vec<f64> {
        (0..self.signal_len)
            .map(|i| {
                let t = i as f64;
                (0.21 * t).sin()
                    + 0.5 * (0.57 * t + 0.3).cos()
                    + 0.05 * (((i * 2654435761) % 1024) as f64 / 1024.0 - 0.5)
            })
            .collect()
    }

    /// Runs every check against `profile`.
    ///
    /// # Errors
    /// Propagates kernel errors (none are expected for the built-in
    /// profiles and workload).
    pub fn run_profile(&self, profile: LibraryProfile) -> Result<ProfileReport, SignalError> {
        let s = self.test_signal();
        let cx: Vec<Complex64> = s.iter().map(|&v| Complex64::from_real(v)).collect();
        let mut outcomes = Vec::new();

        // 1. FFT/IFFT roundtrip with the profile's (possibly mis-scaled)
        //    forward transform paired with the documented inverse.
        let spec = profile.forward_fft(&cx)?;
        let back = profile.inverse_fft(&spec)?;
        let rt_err = cx
            .iter()
            .zip(&back)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        outcomes.push(CheckOutcome {
            check: "fft-roundtrip",
            metric: rt_err,
            pass: rt_err < 1e-9,
        });

        // 2. Parseval: time energy vs spectral energy under the documented
        //    convention (unscaled forward).
        let time_e: f64 = s.iter().map(|v| v * v).sum();
        let freq_e = spectral_energy(&spec) / s.len() as f64;
        // rcr-lint: allow(unchecked-time-arithmetic, reason = "f64 Parseval energies, not timestamps")
        let pv_err = (time_e - freq_e).abs() / time_e.max(1e-30);
        outcomes.push(CheckOutcome {
            check: "parseval",
            metric: pv_err,
            pass: pv_err < 1e-9,
        });

        // 3. RFFT amplitude: a unit-amplitude tone must have bin magnitude
        //    N/2 under the documented convention.
        {
            let k0 = 5usize;
            let n = 64usize;
            let tone: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
                .collect();
            let spec = match profile {
                LibraryProfile::LegacySignature => {
                    let cx: Vec<Complex64> =
                        tone.iter().map(|&v| Complex64::from_real(v)).collect();
                    profile.forward_fft(&cx)?[..n / 2 + 1].to_vec()
                }
                _ => rfft(&tone)?,
            };
            let mag = spec[k0].abs();
            let amp_err = (mag - n as f64 / 2.0).abs() / (n as f64 / 2.0);
            outcomes.push(CheckOutcome {
                check: "rfft-amplitude",
                metric: amp_err,
                pass: amp_err < 1e-9,
            });
        }

        // 4. STFT/ISTFT roundtrip over the full signal (catches both the
        //    non-circular truncation and the COLA break).
        let plan = profile.stft_plan(self.window_len, self.hop, self.fft_size)?;
        let st = plan.analyze(&s)?;
        let rec = plan.synthesize(&st)?;
        let stft_err = s
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        outcomes.push(CheckOutcome {
            check: "stft-roundtrip",
            metric: stft_err,
            pass: stft_err < 1e-9,
        });

        // 5. STFT phase agreement with the time-invariant reference
        //    convention (catches the stored-window phase skew).
        {
            let ref_plan =
                LibraryProfile::Reference.stft_plan(self.window_len, self.hop, self.fft_size)?;
            let ref_st = ref_plan.analyze(&s)?;
            let frames = st.num_frames().min(ref_st.num_frames());
            let mut max_phase = 0.0f64;
            for n in 0..frames {
                for m in 0..self.fft_size {
                    let a = st.frames()[n][m];
                    let b = ref_st.frames()[n][m];
                    if a.abs() > 1e-6 && b.abs() > 1e-6 {
                        let mut d = (a.arg() - b.arg()).abs();
                        if d > std::f64::consts::PI {
                            d = 2.0 * std::f64::consts::PI - d;
                        }
                        max_phase = max_phase.max(d);
                    }
                }
            }
            outcomes.push(CheckOutcome {
                check: "stft-phase",
                metric: max_phase,
                pass: max_phase < 1e-6,
            });
        }

        // 6. Tail coverage: relative reconstruction error over the last
        //    window of samples (catches non-circular truncation).
        {
            let tail = self.window_len;
            let err: f64 = s[self.signal_len - tail..]
                .iter()
                .zip(&rec[self.signal_len - tail..])
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            outcomes.push(CheckOutcome {
                check: "tail-coverage",
                metric: err,
                pass: err < 1e-9,
            });
        }

        // 7. Log-softmax stability at extreme logits (§V).
        {
            let logits = [1000.0, 0.0, -500.0];
            let out = profile.log_softmax(&logits);
            let audit = rcr_numerics::float::FloatAudit::scan(&out);
            let bad = (audit.nan_count + audit.inf_count) as f64;
            outcomes.push(CheckOutcome {
                check: "log-softmax",
                metric: bad,
                pass: bad == 0.0,
            });
        }

        Ok(ProfileReport { profile, outcomes })
    }

    /// Runs the whole catalog: one report per profile.
    ///
    /// # Errors
    /// Propagates kernel errors.
    pub fn run_all(&self) -> Result<Vec<ProfileReport>, SignalError> {
        LibraryProfile::all()
            .iter()
            .map(|&p| self.run_profile(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p: LibraryProfile) -> ProfileReport {
        ConformanceSuite::new().run_profile(p).unwrap()
    }

    fn failed(r: &ProfileReport) -> Vec<&'static str> {
        r.outcomes
            .iter()
            .filter(|o| !o.pass)
            .map(|o| o.check)
            .collect()
    }

    #[test]
    fn reference_profile_passes_everything() {
        let r = report(LibraryProfile::Reference);
        assert_eq!(failed(&r), Vec::<&str>::new());
    }

    #[test]
    fn legacy_signature_fails_scaling_checks_only() {
        let r = report(LibraryProfile::LegacySignature);
        let f = failed(&r);
        assert!(f.contains(&"fft-roundtrip"));
        assert!(f.contains(&"parseval"));
        assert!(f.contains(&"rfft-amplitude"));
        assert!(!f.contains(&"stft-phase"));
        assert!(!f.contains(&"log-softmax"));
    }

    #[test]
    fn phase_skew_fails_phase_but_not_magnitude_checks() {
        let r = report(LibraryProfile::PhaseSkew);
        let f = failed(&r);
        assert!(f.contains(&"stft-phase"));
        assert!(!f.contains(&"fft-roundtrip"));
        assert!(
            !f.contains(&"stft-roundtrip"),
            "own-convention roundtrip still works"
        );
    }

    #[test]
    fn non_circular_fails_tail_coverage() {
        let r = report(LibraryProfile::NonCircular);
        let f = failed(&r);
        assert!(f.contains(&"tail-coverage"));
        assert!(!f.contains(&"fft-roundtrip"));
    }

    #[test]
    fn symmetric_window_degrades_reconstruction() {
        let r = report(LibraryProfile::SymmetricWindow);
        let f = failed(&r);
        assert!(f.contains(&"stft-roundtrip"));
        assert!(!f.contains(&"log-softmax"));
    }

    #[test]
    fn naive_kernels_fail_log_softmax_only() {
        let r = report(LibraryProfile::NaiveKernels);
        assert_eq!(failed(&r), vec!["log-softmax"]);
    }

    #[test]
    fn run_all_covers_catalog() {
        let reports = ConformanceSuite::new().run_all().unwrap();
        assert_eq!(reports.len(), LibraryProfile::all().len());
        // Every defect profile fails at least one check; reference none.
        for r in &reports {
            if r.profile == LibraryProfile::Reference {
                assert_eq!(r.failures(), 0);
            } else {
                assert!(r.failures() > 0, "{} failed nothing", r.profile.name());
            }
        }
    }

    #[test]
    fn profile_names_are_unique() {
        let mut names: Vec<_> = LibraryProfile::all().iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LibraryProfile::all().len());
    }
}
