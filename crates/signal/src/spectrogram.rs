//! Power spectrograms — the time–frequency images consumed by the MSY3I
//! burst detector and by spectrum-sensing examples.

use crate::stft::Stft;
use crate::SignalError;

/// A real-valued power spectrogram: `data[n][m]` is the power at frame
/// `n`, bin `m` (only the non-redundant `M/2 + 1` bins are kept).
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    data: Vec<Vec<f64>>,
    n_bins: usize,
}

impl Spectrogram {
    /// Builds a power spectrogram (`|X|²`) from an STFT.
    ///
    /// # Errors
    /// Returns [`SignalError::EmptyInput`] when the STFT has no frames.
    pub fn from_stft(stft: &Stft) -> Result<Self, SignalError> {
        if stft.num_frames() == 0 {
            return Err(SignalError::EmptyInput);
        }
        let n_bins = stft.num_bins() / 2 + 1;
        let data = stft
            .frames()
            .iter()
            .map(|f| f[..n_bins].iter().map(|c| c.norm_sqr()).collect())
            .collect();
        Ok(Spectrogram { data, n_bins })
    }

    /// Number of time frames.
    pub fn num_frames(&self) -> usize {
        self.data.len()
    }

    /// Number of frequency bins (`M/2 + 1`).
    pub fn num_bins(&self) -> usize {
        self.n_bins
    }

    /// Power values: `rows()[n][m]`.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.data
    }

    /// Converts to decibels relative to the peak, clamped at `floor_db`
    /// (e.g. `-80.0`).
    // rcr-lint: unit(floor_db = GainDb, reason = "dB relative to peak — a ratio in the log domain, the one sanctioned 10*log10 boundary of this type")
    pub fn to_db(&self, floor_db: f64) -> Spectrogram {
        let peak = self
            .data
            .iter()
            .flatten()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        let data = self
            .data
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&p| (10.0 * (p / peak).max(1e-300).log10()).max(floor_db))
                    .collect()
            })
            .collect();
        Spectrogram {
            data,
            n_bins: self.n_bins,
        }
    }

    /// Total power summed over the whole plane.
    // rcr-lint: unit(return = PowerLinear, reason = "sums linear |X|^2 cells; summing a dB plane would be meaningless")
    pub fn total_power(&self) -> f64 {
        self.data.iter().flatten().sum()
    }

    /// Flattens to a single row-major buffer (frames x bins) — the tensor
    /// layout the neural-network crate consumes.
    pub fn to_flat(&self) -> Vec<f64> {
        self.data.iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stft::{PhaseConvention, StftPlan};
    use crate::window::{window, WindowKind, WindowSymmetry};
    use std::f64::consts::PI;

    fn make(signal: &[f64]) -> Spectrogram {
        let g = window(WindowKind::Hann, WindowSymmetry::Periodic, 32).unwrap();
        let plan = StftPlan::new(g, 8, 32, PhaseConvention::TimeInvariant).unwrap();
        Spectrogram::from_stft(&plan.analyze(signal).unwrap()).unwrap()
    }

    #[test]
    fn tone_concentrates_power_at_its_bin() {
        let k0 = 6usize;
        let s: Vec<f64> = (0..256)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / 32.0).cos())
            .collect();
        let sp = make(&s);
        assert_eq!(sp.num_bins(), 17);
        for row in sp.rows() {
            let peak = crate::peaks::peak_bin(row).unwrap();
            assert_eq!(peak, k0);
        }
    }

    // NaN regression (Fig. 3 defect class). Two layers of defense, both
    // deterministic and panic-free: (1) the STFT front door rejects a
    // NaN-containing signal with a typed error — corruption cannot even
    // enter this crate's transform chain; (2) peak-picking over spectra
    // that arrive poisoned from elsewhere (the cross-toolkit scenario
    // Fig. 3 catalogs) never panics and never lets a NaN bin outrank a
    // real one.
    #[test]
    fn nan_spectra_keep_peak_picking_deterministic() {
        let k0 = 6usize;
        let mut s: Vec<f64> = (0..256)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / 32.0).cos())
            .collect();
        s[100] = f64::NAN;
        // Layer 1: the transform refuses NaN input outright.
        let g = window(WindowKind::Hann, WindowSymmetry::Periodic, 32).unwrap();
        let plan = StftPlan::new(g, 8, 32, PhaseConvention::TimeInvariant).unwrap();
        assert!(matches!(
            plan.analyze(&s),
            Err(crate::SignalError::NotFinite)
        ));

        // Layer 2: spectra corrupted upstream of us.
        s[100] = 0.0;
        let mut rows: Vec<Vec<f64>> = make(&s).rows().to_vec();
        let poisoned = 3usize;
        for v in &mut rows[poisoned][..4] {
            *v = f64::NAN; // partially corrupt one frame
        }
        let all_nan = rows.len() - 1;
        for v in &mut rows[all_nan] {
            *v = f64::NAN; // fully corrupt another
        }
        for (i, row) in rows.iter().enumerate() {
            let peak = crate::peaks::peak_bin(row).unwrap();
            if i == all_nan {
                // Documented all-NaN behavior: bin 0, and reading the
                // value back still shows the NaN.
                assert_eq!(peak, 0);
                assert!(row[peak].is_nan());
            } else {
                // A NaN bin never wins over a real one; clean frames
                // (and the partially poisoned one, whose tone bin
                // k0 = 6 survived) still pick the tone.
                assert!(!row[peak].is_nan());
                assert_eq!(peak, k0);
            }
        }
    }

    #[test]
    fn db_conversion_peak_is_zero() {
        let s: Vec<f64> = (0..128).map(|i| (0.3 * i as f64).sin()).collect();
        let db = make(&s).to_db(-80.0);
        let max = db
            .rows()
            .iter()
            .flatten()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = db
            .rows()
            .iter()
            .flatten()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((max - 0.0).abs() < 1e-12);
        assert!(min >= -80.0);
    }

    #[test]
    fn flat_layout_matches_dims() {
        let s: Vec<f64> = (0..64).map(|i| i as f64 * 0.01).collect();
        let sp = make(&s);
        assert_eq!(sp.to_flat().len(), sp.num_frames() * sp.num_bins());
        assert!(sp.total_power() > 0.0);
    }
}
