//! An IFFT/FFT OFDM modem — the transform chain the paper's 5G context
//! rides on ("STFT is a key functionality in many OFDM-based wireless
//! systems", §IV-A).
//!
//! The modem is deliberately minimal but real: QPSK mapping, IFFT
//! modulation, cyclic prefix insertion, FFT demodulation and single-tap
//! frequency-domain equalization. With a cyclic prefix at least as long
//! as the channel's delay spread, linear convolution becomes circular
//! and the multipath channel diagonalizes in the DFT basis — which the
//! round-trip tests verify bit-exactly.

use crate::fft::{fft, ifft};
use crate::{Complex64, SignalError};

/// OFDM modem parameters.
#[derive(Debug, Clone)]
pub struct OfdmConfig {
    /// Number of subcarriers (FFT size, power of two).
    pub subcarriers: usize,
    /// Cyclic prefix length in samples (must exceed the channel delay
    /// spread for ISI-free operation).
    pub cyclic_prefix: usize,
}

impl Default for OfdmConfig {
    fn default() -> Self {
        OfdmConfig {
            subcarriers: 64,
            cyclic_prefix: 16,
        }
    }
}

impl OfdmConfig {
    fn validate(&self) -> Result<(), SignalError> {
        if !self.subcarriers.is_power_of_two() || self.subcarriers < 2 {
            return Err(SignalError::InvalidParameter(format!(
                "subcarriers {} must be a power of two >= 2",
                self.subcarriers
            )));
        }
        if self.cyclic_prefix >= self.subcarriers {
            return Err(SignalError::InvalidParameter(format!(
                "cyclic prefix {} must be shorter than the symbol {}",
                self.cyclic_prefix, self.subcarriers
            )));
        }
        Ok(())
    }

    /// Bits carried per OFDM symbol (QPSK: 2 per subcarrier).
    // rcr-lint: unit(return = Count, reason = "a raw bit count per symbol, not a bit/s rate; multiply by symbol rate for throughput")
    pub fn bits_per_symbol(&self) -> usize {
        2 * self.subcarriers
    }

    /// Samples per OFDM symbol including the cyclic prefix.
    // rcr-lint: unit(return = Count, reason = "raw sample count; divide by the sample rate for a duration")
    pub fn samples_per_symbol(&self) -> usize {
        self.subcarriers + self.cyclic_prefix
    }
}

/// Maps a bit pair to a Gray-coded QPSK constellation point
/// (`(±1 ± i)/√2`).
pub fn qpsk_map(b0: bool, b1: bool) -> Complex64 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    Complex64::new(if b0 { -s } else { s }, if b1 { -s } else { s })
}

/// Hard-decision QPSK demapping.
pub fn qpsk_demap(sym: Complex64) -> (bool, bool) {
    (sym.re < 0.0, sym.im < 0.0)
}

/// Modulates a bit stream into time-domain OFDM samples (with cyclic
/// prefixes). The bit count must fill whole symbols.
///
/// # Errors
/// * [`SignalError::InvalidParameter`] for a bad config or a bit count
///   that does not fill whole OFDM symbols.
pub fn modulate(config: &OfdmConfig, bits: &[bool]) -> Result<Vec<Complex64>, SignalError> {
    config.validate()?;
    let bps = config.bits_per_symbol();
    if bits.is_empty() || !bits.len().is_multiple_of(bps) {
        return Err(SignalError::InvalidParameter(format!(
            "{} bits do not fill whole {}-bit OFDM symbols",
            bits.len(),
            bps
        )));
    }
    let m = config.subcarriers;
    let mut out = Vec::with_capacity(bits.len() / bps * config.samples_per_symbol());
    for chunk in bits.chunks(bps) {
        let freq: Vec<Complex64> = chunk.chunks(2).map(|b| qpsk_map(b[0], b[1])).collect();
        let time = ifft(&freq)?;
        // Cyclic prefix: the tail of the symbol, prepended.
        out.extend_from_slice(&time[m - config.cyclic_prefix..]);
        out.extend_from_slice(&time);
    }
    Ok(out)
}

/// Applies a multipath FIR channel (linear convolution, causal taps).
pub fn apply_channel(samples: &[Complex64], taps: &[Complex64]) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; samples.len()];
    for (n, o) in out.iter_mut().enumerate() {
        for (k, &h) in taps.iter().enumerate() {
            if n >= k {
                *o += samples[n - k] * h;
            }
        }
    }
    out
}

/// The channel's frequency response on the OFDM grid (DFT of the
/// zero-padded taps).
///
/// # Errors
/// Returns [`SignalError::InvalidParameter`] when the taps outnumber the
/// subcarriers.
pub fn channel_frequency_response(
    config: &OfdmConfig,
    taps: &[Complex64],
) -> Result<Vec<Complex64>, SignalError> {
    config.validate()?;
    if taps.len() > config.subcarriers {
        return Err(SignalError::InvalidParameter(
            "more taps than subcarriers".into(),
        ));
    }
    let mut padded = vec![Complex64::ZERO; config.subcarriers];
    padded[..taps.len()].copy_from_slice(taps);
    fft(&padded)
}

/// Demodulates received samples back to bits, equalizing with the known
/// channel frequency response (pass all-ones for an ideal channel).
///
/// # Errors
/// * [`SignalError::InvalidParameter`] for bad config, a sample count
///   that does not fill whole symbols, or a response of the wrong length.
pub fn demodulate(
    config: &OfdmConfig,
    samples: &[Complex64],
    channel_response: &[Complex64],
) -> Result<Vec<bool>, SignalError> {
    config.validate()?;
    let sps = config.samples_per_symbol();
    if samples.is_empty() || !samples.len().is_multiple_of(sps) {
        return Err(SignalError::InvalidParameter(format!(
            "{} samples do not fill whole {sps}-sample OFDM symbols",
            samples.len()
        )));
    }
    if channel_response.len() != config.subcarriers {
        return Err(SignalError::InvalidParameter(format!(
            "channel response has {} bins, expected {}",
            channel_response.len(),
            config.subcarriers
        )));
    }
    let mut bits = Vec::with_capacity(samples.len() / sps * config.bits_per_symbol());
    for sym in samples.chunks(sps) {
        // Drop the cyclic prefix, transform, equalize per subcarrier.
        let freq = fft(&sym[config.cyclic_prefix..])?;
        for (f, h) in freq.iter().zip(channel_response) {
            let eq = *f / *h;
            let (b0, b1) = qpsk_demap(eq);
            bits.push(b0);
            bits.push(b1);
        }
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bits(n: usize) -> Vec<bool> {
        (0..n).map(|i| (i * 2654435761) % 7 < 3).collect()
    }

    fn ones(n: usize) -> Vec<Complex64> {
        vec![Complex64::ONE; n]
    }

    #[test]
    fn qpsk_roundtrip_all_pairs() {
        for b0 in [false, true] {
            for b1 in [false, true] {
                let s = qpsk_map(b0, b1);
                assert!((s.abs() - 1.0).abs() < 1e-12);
                assert_eq!(qpsk_demap(s), (b0, b1));
            }
        }
    }

    #[test]
    fn ideal_channel_roundtrip_bit_exact() {
        let cfg = OfdmConfig::default();
        let bits = test_bits(cfg.bits_per_symbol() * 3);
        let tx = modulate(&cfg, &bits).unwrap();
        assert_eq!(tx.len(), 3 * cfg.samples_per_symbol());
        let rx = demodulate(&cfg, &tx, &ones(cfg.subcarriers)).unwrap();
        assert_eq!(bits, rx);
    }

    #[test]
    fn multipath_channel_equalized_exactly() {
        // Three-tap channel well inside the 16-sample cyclic prefix.
        let cfg = OfdmConfig::default();
        let taps = vec![
            Complex64::new(1.0, 0.0),
            Complex64::new(0.4, -0.2),
            Complex64::new(-0.1, 0.15),
        ];
        let bits = test_bits(cfg.bits_per_symbol() * 4);
        let tx = modulate(&cfg, &bits).unwrap();
        let rx_samples = apply_channel(&tx, &taps);
        let h = channel_frequency_response(&cfg, &taps).unwrap();
        let rx = demodulate(&cfg, &rx_samples, &h).unwrap();
        assert_eq!(
            bits, rx,
            "cyclic prefix + single-tap equalization must be exact"
        );
    }

    #[test]
    fn first_symbol_survives_channel_memory() {
        // The FIR channel smears across symbol boundaries; the CP absorbs
        // it even for the very first symbol (leading zeros).
        let cfg = OfdmConfig {
            subcarriers: 32,
            cyclic_prefix: 8,
        };
        let taps = vec![Complex64::new(0.9, 0.1), Complex64::new(0.3, 0.0)];
        let bits = test_bits(cfg.bits_per_symbol());
        let tx = modulate(&cfg, &bits).unwrap();
        let rx_samples = apply_channel(&tx, &taps);
        let h = channel_frequency_response(&cfg, &taps).unwrap();
        let rx = demodulate(&cfg, &rx_samples, &h).unwrap();
        assert_eq!(bits, rx);
    }

    #[test]
    fn insufficient_cyclic_prefix_breaks_orthogonality() {
        // Channel longer than the CP → inter-symbol interference → errors.
        let cfg = OfdmConfig {
            subcarriers: 32,
            cyclic_prefix: 2,
        };
        let mut taps = vec![Complex64::ZERO; 8];
        taps[0] = Complex64::ONE;
        taps[7] = Complex64::new(0.9, 0.0); // strong echo past the CP
        let bits = test_bits(cfg.bits_per_symbol() * 4);
        let tx = modulate(&cfg, &bits).unwrap();
        let rx_samples = apply_channel(&tx, &taps);
        let h = channel_frequency_response(&cfg, &taps).unwrap();
        let rx = demodulate(&cfg, &rx_samples, &h).unwrap();
        let errors = bits.iter().zip(&rx).filter(|(a, b)| a != b).count();
        assert!(errors > 0, "expected ISI-induced bit errors");
    }

    #[test]
    fn validation() {
        let bad = OfdmConfig {
            subcarriers: 48,
            cyclic_prefix: 8,
        };
        assert!(modulate(&bad, &test_bits(96)).is_err());
        let bad = OfdmConfig {
            subcarriers: 32,
            cyclic_prefix: 32,
        };
        assert!(modulate(&bad, &test_bits(64)).is_err());
        let cfg = OfdmConfig::default();
        assert!(modulate(&cfg, &test_bits(7)).is_err());
        assert!(modulate(&cfg, &[]).is_err());
        let tx = modulate(&cfg, &test_bits(cfg.bits_per_symbol())).unwrap();
        assert!(demodulate(&cfg, &tx[1..], &ones(cfg.subcarriers)).is_err());
        assert!(demodulate(&cfg, &tx, &ones(3)).is_err());
        assert!(channel_frequency_response(&cfg, &ones(100)).is_err());
    }

    #[test]
    fn awgn_ber_matches_q_function() {
        // End-to-end modem validation: simulated QPSK-over-AWGN bit error
        // rate must match the theoretical Q(√(2·Eb/N0)) curve.
        //
        // With this modem's 1/N-scaled IFFT, per-bin symbol energy is 1
        // and FFT-aggregated noise has variance N·σ² per bin, so
        // Eb/N0 = 1 / (2·N·σ²)  ⇒  σ² = 1 / (2·N·ebn0).
        let cfg = OfdmConfig {
            subcarriers: 64,
            cyclic_prefix: 8,
        };
        let symbols = 400usize;
        let bits = test_bits(cfg.bits_per_symbol() * symbols);
        let tx = modulate(&cfg, &bits).unwrap();

        let ebn0_db = 4.0f64;
        let ebn0 = 10f64.powf(ebn0_db / 10.0);
        let sigma2 = 1.0 / (2.0 * cfg.subcarriers as f64 * ebn0);
        let per_dim = (sigma2 / 2.0).sqrt();

        // Deterministic Box–Muller noise.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut gauss = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u1 = ((state >> 33) as f64 / (1u64 << 31) as f64).clamp(1e-12, 1.0);
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u2 = (state >> 33) as f64 / (1u64 << 31) as f64;
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let rx_samples: Vec<Complex64> = tx
            .iter()
            .map(|&s| s + Complex64::new(per_dim * gauss(), per_dim * gauss()))
            .collect();

        let rx = demodulate(&cfg, &rx_samples, &ones(cfg.subcarriers)).unwrap();
        let errors = bits.iter().zip(&rx).filter(|(a, b)| a != b).count();
        let measured = errors as f64 / bits.len() as f64;
        let theory = rcr_numerics::special::qpsk_ber_awgn(ebn0);
        assert!(
            (measured - theory).abs() < 0.35 * theory,
            "measured BER {measured:.4} vs theory {theory:.4} at {ebn0_db} dB ({} bits)",
            bits.len()
        );
    }

    #[test]
    fn cp_is_a_copy_of_the_symbol_tail() {
        let cfg = OfdmConfig {
            subcarriers: 16,
            cyclic_prefix: 4,
        };
        let bits = test_bits(cfg.bits_per_symbol());
        let tx = modulate(&cfg, &bits).unwrap();
        // tx = [cp(4) | body(16)]: cp must equal the last 4 body samples.
        for k in 0..4 {
            let cp = tx[k];
            let tail = tx[4 + 12 + k];
            assert!((cp.re - tail.re).abs() < 1e-12 && (cp.im - tail.im).abs() < 1e-12);
        }
    }
}
