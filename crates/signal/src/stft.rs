//! Short-time Fourier transform with explicit phase conventions — the
//! reproduction of the paper's Eqs. 5–6 and the §IV-A/B convention
//! discussion.
//!
//! A library's STFT is fully specified only once three choices are pinned
//! down; each is an enum here rather than an implicit behavior:
//!
//! 1. **Phase convention** ([`PhaseConvention`]): where phase zero sits in
//!    each frame. Eq. 5 (time-invariant) references the *frame center*;
//!    Eq. 6 ("simplified", what a stored-window library computes)
//!    references the frame start, which "imbues a delay as well as a phase
//!    skew that is dependent on the (stored) window length L_g". A
//!    frequency-invariant convention references absolute time zero.
//! 2. **Frame alignment** ([`FrameAlignment`]): whether frame `n` is
//!    centered on sample `n·hop` or starts there (a pure delay).
//! 3. **Boundary handling** ([`PaddingMode`]): circular extension,
//!    zero-padding, or the defective truncation the paper quotes — frames
//!    only for `n ∈ [0, (L - L_g)/a]`.
//!
//! Conversion between phase conventions is exactly the "point-wise
//! multiplication of the STFT with an a priori determined matrix of phase
//! factors" the paper prescribes; see [`Stft::convert`].

use crate::fft::FftPlan;
use crate::{Complex64, SignalError};
use std::f64::consts::PI;
use std::sync::Arc;

/// Where phase zero sits within each analysis frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseConvention {
    /// Eq. 5: phase referenced to the frame *center* (`g` peak at
    /// `g[⌊L_g/2⌋]`). Time resolution and frequency resolution are the
    /// same across the time–frequency plane.
    TimeInvariant,
    /// Eq. 6: phase referenced to the frame *start* — the "simplified"
    /// stored-window convention, carrying a phase skew of
    /// `e^{-2πim⌊L_g/2⌋/M}` relative to [`PhaseConvention::TimeInvariant`].
    SimplifiedTimeInvariant,
    /// Phase referenced to absolute sample 0 of the signal.
    FrequencyInvariant,
}

/// Where frame `n` sits relative to sample `n·hop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAlignment {
    /// Frame `n` covers samples `[n·hop - ⌊L_g/2⌋, n·hop + L_g - ⌊L_g/2⌋)`.
    Centered,
    /// Frame `n` covers samples `[n·hop, n·hop + L_g)` — a delay of
    /// `⌊L_g/2⌋` samples relative to [`FrameAlignment::Centered`].
    Causal,
}

/// Boundary handling for frames that extend past the signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddingMode {
    /// Treat the signal circularly (periodic extension) — the convention
    /// the paper notes some libraries *fail* to implement.
    Circular,
    /// Pad with zeros outside `[0, L)`.
    ZeroPad,
    /// Emit only frames fully inside the signal, i.e.
    /// `n ∈ [0, ⌊(L - L_g)/a⌋]` — the defective truncation quoted in
    /// §IV-B. Tail samples are never analyzed and cannot be reconstructed.
    Truncate,
}

/// How the ISTFT overlap-add is normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// Divide each sample by the actually-accumulated `Σ w²` at that
    /// sample — robust for any window (the modern-librosa behavior).
    WindowSquaredPerSample,
    /// Divide by the constant `Σ_l w[l]² / hop` — correct **only** when
    /// the squared window satisfies constant-overlap-add at this hop;
    /// the assumption some libraries bake in.
    ColaConstant,
}

/// An STFT analysis/synthesis plan: window, hop, FFT size and conventions.
#[derive(Debug, Clone)]
pub struct StftPlan {
    window: Vec<f64>,
    /// Cached `g[l]²` — the overlap-add weights, computed once at plan
    /// construction instead of per frame in [`StftPlan::synthesize`].
    window_sq: Vec<f64>,
    hop: usize,
    fft_size: usize,
    /// Shared FFT plan for `fft_size`: twiddle/bit-reversal tables are
    /// built once and reused for every analysis and synthesis frame.
    fft_plan: Arc<FftPlan>,
    convention: PhaseConvention,
    alignment: FrameAlignment,
    padding: PaddingMode,
    normalization: Normalization,
}

/// The result of an STFT analysis: `frames x fft_size` complex
/// coefficients plus the plan metadata needed for synthesis/conversion.
#[derive(Debug, Clone)]
pub struct Stft {
    /// `data[n][m]` = coefficient at frame `n`, bin `m`.
    data: Vec<Vec<Complex64>>,
    plan: StftPlan,
    signal_len: usize,
}

impl StftPlan {
    /// Creates a plan.
    ///
    /// # Errors
    /// * [`SignalError::EmptyInput`] for an empty window.
    /// * [`SignalError::InvalidParameter`] when `hop == 0`, the FFT size is
    ///   smaller than the window, or the window is not finite.
    pub fn new(
        window: Vec<f64>,
        hop: usize,
        fft_size: usize,
        convention: PhaseConvention,
    ) -> Result<Self, SignalError> {
        if window.is_empty() {
            return Err(SignalError::EmptyInput);
        }
        if !window.iter().all(|v| v.is_finite()) {
            return Err(SignalError::NotFinite);
        }
        if hop == 0 {
            return Err(SignalError::InvalidParameter("hop must be >= 1".into()));
        }
        if fft_size < window.len() {
            return Err(SignalError::InvalidParameter(format!(
                "fft_size {fft_size} < window length {}",
                window.len()
            )));
        }
        let fft_plan = FftPlan::for_len(fft_size)?;
        let window_sq = window.iter().map(|g| g * g).collect();
        Ok(StftPlan {
            window,
            window_sq,
            hop,
            fft_size,
            fft_plan,
            convention,
            alignment: FrameAlignment::Centered,
            padding: PaddingMode::Circular,
            normalization: Normalization::WindowSquaredPerSample,
        })
    }

    /// Sets the frame alignment (default [`FrameAlignment::Centered`]).
    pub fn with_alignment(mut self, alignment: FrameAlignment) -> Self {
        self.alignment = alignment;
        self
    }

    /// Sets the ISTFT normalization (default
    /// [`Normalization::WindowSquaredPerSample`]).
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Sets the boundary handling (default [`PaddingMode::Circular`]).
    pub fn with_padding(mut self, padding: PaddingMode) -> Self {
        self.padding = padding;
        self
    }

    /// The analysis window `g`.
    pub fn window(&self) -> &[f64] {
        &self.window
    }

    /// Hop size `a`.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// FFT length `M`.
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// Phase convention.
    pub fn convention(&self) -> PhaseConvention {
        self.convention
    }

    /// Frame alignment.
    pub fn alignment(&self) -> FrameAlignment {
        self.alignment
    }

    /// Boundary handling.
    pub fn padding(&self) -> PaddingMode {
        self.padding
    }

    /// Number of frames produced for a signal of length `len`.
    pub fn num_frames(&self, len: usize) -> usize {
        match self.padding {
            PaddingMode::Circular | PaddingMode::ZeroPad => len.div_ceil(self.hop),
            PaddingMode::Truncate => {
                if len < self.window.len() {
                    0
                } else {
                    (len - self.window.len()) / self.hop + 1
                }
            }
        }
    }

    fn frame_start(&self, n: usize) -> i64 {
        let c = match self.alignment {
            FrameAlignment::Centered => (self.window.len() / 2) as i64,
            FrameAlignment::Causal => 0,
        };
        n as i64 * self.hop as i64 - c
    }

    /// Runs the analysis.
    ///
    /// # Errors
    /// * [`SignalError::EmptyInput`] for an empty signal.
    /// * [`SignalError::NotFinite`] for NaN/inf samples.
    /// * [`SignalError::InvalidParameter`] in [`PaddingMode::Truncate`] mode
    ///   when the signal is shorter than the window.
    pub fn analyze(&self, signal: &[f64]) -> Result<Stft, SignalError> {
        if signal.is_empty() {
            return Err(SignalError::EmptyInput);
        }
        if !signal.iter().all(|v| v.is_finite()) {
            return Err(SignalError::NotFinite);
        }
        let len = signal.len() as i64;
        let lg = self.window.len();
        let m_size = self.fft_size;
        let n_frames = self.num_frames(signal.len());
        if n_frames == 0 {
            return Err(SignalError::InvalidParameter(format!(
                "signal of length {} too short for window {lg} in Truncate mode",
                signal.len()
            )));
        }
        let mut data = Vec::with_capacity(n_frames);
        // Frame workspaces, reused across the whole analysis pass: the FFT
        // input is re-zeroed per frame, and fully-in-range frames window
        // through the fused multiply kernel before the phase scatter.
        let mut buf = vec![Complex64::ZERO; m_size];
        let mut windowed = vec![0.0; lg];
        for n in 0..n_frames {
            let start = self.frame_start(n);
            buf.fill(Complex64::ZERO);
            if start >= 0 && start + lg as i64 <= len {
                // Every padding mode is the identity on in-range indices,
                // so the windowed products are a contiguous elementwise
                // multiply (sample·g per element, same as the scalar loop).
                let s = start as usize;
                rcr_kernels::mul_into(&signal[s..s + lg], &self.window, &mut windowed);
                for (l, &wg) in windowed.iter().enumerate() {
                    let pos = self.phase_position(start, l);
                    buf[pos] += Complex64::from_real(wg);
                }
            } else {
                for (l, &g) in self.window.iter().enumerate() {
                    let idx = start + l as i64;
                    let sample = match self.padding {
                        PaddingMode::Circular => signal[idx.rem_euclid(len) as usize],
                        PaddingMode::ZeroPad => {
                            if idx >= 0 && idx < len {
                                signal[idx as usize]
                            } else {
                                0.0
                            }
                        }
                        PaddingMode::Truncate => {
                            // Truncate mode guarantees 0 <= idx < len for
                            // causal alignment; centered frames may still poke
                            // out on the left, fall back to clamping.
                            signal[idx.clamp(0, len - 1) as usize]
                        }
                    };
                    let pos = self.phase_position(start, l);
                    buf[pos] += Complex64::from_real(sample * g);
                }
            }
            data.push(self.fft_plan.forward(&buf)?);
        }
        Ok(Stft {
            data,
            plan: self.clone(),
            signal_len: signal.len(),
        })
    }

    /// Buffer index realizing the phase convention: placing windowed sample
    /// `l` of a frame starting at `start` at this index makes the DFT phase
    /// reference match the convention.
    fn phase_position(&self, start: i64, l: usize) -> usize {
        let m = self.fft_size as i64;
        let c = (self.window.len() / 2) as i64;
        let raw = match self.convention {
            PhaseConvention::SimplifiedTimeInvariant => l as i64,
            PhaseConvention::TimeInvariant => l as i64 - c,
            PhaseConvention::FrequencyInvariant => start + l as i64,
        };
        raw.rem_euclid(m) as usize
    }

    /// Inverse STFT by phase-corrected overlap-add with squared-window
    /// normalization.
    ///
    /// # Errors
    /// * [`SignalError::InvalidParameter`] when the STFT was produced by an
    ///   incompatible plan (different window/hop/FFT size).
    pub fn synthesize(&self, stft: &Stft) -> Result<Vec<f64>, SignalError> {
        if stft.plan.window != self.window
            || stft.plan.hop != self.hop
            || stft.plan.fft_size != self.fft_size
        {
            return Err(SignalError::InvalidParameter(
                "STFT was produced by an incompatible plan".into(),
            ));
        }
        let out_len = stft.signal_len;
        let len = out_len as i64;
        let mut out = vec![0.0; out_len];
        let mut weight = vec![0.0; out_len];
        for (n, frame) in stft.data.iter().enumerate() {
            let start = self.frame_start(n);
            let time = self.fft_plan.inverse(frame)?;
            for (l, &g) in self.window.iter().enumerate() {
                let idx = start + l as i64;
                let target = match self.padding {
                    PaddingMode::Circular => idx.rem_euclid(len),
                    _ => {
                        if idx < 0 || idx >= len {
                            continue;
                        }
                        idx
                    }
                } as usize;
                let pos = self.phase_position(start, l);
                // rcr-lint: allow(unchecked-time-arithmetic, reason = "time-domain f64 sample buffer, not a timestamp")
                out[target] += time[pos].re * g;
                weight[target] += self.window_sq[l];
            }
        }
        match self.normalization {
            Normalization::WindowSquaredPerSample => {
                for (o, w) in out.iter_mut().zip(&weight) {
                    if *w > 1e-12 {
                        *o /= *w;
                    }
                }
            }
            Normalization::ColaConstant => {
                let gain: f64 = self.window_sq.iter().sum::<f64>() / self.hop as f64;
                if gain > 1e-12 {
                    for o in &mut out {
                        *o /= gain;
                    }
                }
            }
        }
        Ok(out)
    }
}

impl Stft {
    /// Coefficient matrix: `frames()[n][m]`.
    pub fn frames(&self) -> &[Vec<Complex64>] {
        &self.data
    }

    /// Number of analysis frames.
    pub fn num_frames(&self) -> usize {
        self.data.len()
    }

    /// FFT length `M` (bins per frame).
    pub fn num_bins(&self) -> usize {
        self.plan.fft_size
    }

    /// The plan that produced this STFT.
    pub fn plan(&self) -> &StftPlan {
        &self.plan
    }

    /// Original signal length (needed by synthesis).
    pub fn signal_len(&self) -> usize {
        self.signal_len
    }

    /// Mutable access to the coefficient matrix (for spectral processing).
    pub fn frames_mut(&mut self) -> &mut [Vec<Complex64>] {
        &mut self.data
    }

    /// The phase factor converting a coefficient at frame `n`, bin `m`
    /// from convention `from` to convention `to` (everything else equal):
    /// `X_to[m,n] = factor · X_from[m,n]`.
    ///
    /// This is the "a priori determined matrix of phase factors" of §IV-B.
    pub fn conversion_factor(
        plan: &StftPlan,
        from: PhaseConvention,
        to: PhaseConvention,
        m: usize,
        n: usize,
    ) -> Complex64 {
        let big_m = plan.fft_size as f64;
        let c = (plan.window.len() / 2) as i64;
        let start = plan.frame_start(n);
        // Each convention places windowed sample `l` at buffer index
        // `l + δ`, so X_conv[m] = e^{-2πimδ/M}·Σ s·g·e^{-2πiml/M} and
        // X_to = X_from · e^{-2πim(δ_to - δ_from)/M}.
        let delta_of = |conv: PhaseConvention| -> i64 {
            match conv {
                PhaseConvention::SimplifiedTimeInvariant => 0,
                PhaseConvention::TimeInvariant => -c,
                PhaseConvention::FrequencyInvariant => start,
            }
        };
        let delta = (delta_of(to) - delta_of(from)) as f64;
        Complex64::cis(-2.0 * PI * m as f64 * delta / big_m)
    }

    /// Converts this STFT to another phase convention by point-wise
    /// multiplication with the conversion phase-factor matrix.
    pub fn convert(&self, to: PhaseConvention) -> Stft {
        let from = self.plan.convention;
        let mut out = self.clone();
        if from == to {
            return out;
        }
        for (n, frame) in out.data.iter_mut().enumerate() {
            for (m, v) in frame.iter_mut().enumerate() {
                *v *= Self::conversion_factor(&self.plan, from, to, m, n);
            }
        }
        out.plan.convention = to;
        out
    }

    /// The theoretical phase skew (radians) between the Eq. 5 and Eq. 6
    /// conventions at bin `m`: `2π·m·⌊L_g/2⌋ / M`.
    pub fn eq5_eq6_phase_skew(plan: &StftPlan, m: usize) -> f64 {
        2.0 * PI * m as f64 * (plan.window.len() / 2) as f64 / plan.fft_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{window, WindowKind, WindowSymmetry};

    fn test_signal(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let t = i as f64;
                (0.21 * t).sin()
                    + 0.5 * (0.07 * t + 1.0).cos()
                    + 0.1 * ((i * 2654435761) % 97) as f64 / 97.0
            })
            .collect()
    }

    fn hann(len: usize) -> Vec<f64> {
        window(WindowKind::Hann, WindowSymmetry::Periodic, len).unwrap()
    }

    fn plan(conv: PhaseConvention) -> StftPlan {
        StftPlan::new(hann(32), 8, 32, conv).unwrap()
    }

    #[test]
    fn roundtrip_circular_all_conventions() {
        let s = test_signal(256);
        for conv in [
            PhaseConvention::TimeInvariant,
            PhaseConvention::SimplifiedTimeInvariant,
            PhaseConvention::FrequencyInvariant,
        ] {
            let p = plan(conv);
            let st = p.analyze(&s).unwrap();
            let back = p.synthesize(&st).unwrap();
            let err: f64 = s
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "{conv:?}: max err {err}");
        }
    }

    #[test]
    fn roundtrip_zeropad() {
        let s = test_signal(200);
        let p = plan(PhaseConvention::TimeInvariant).with_padding(PaddingMode::ZeroPad);
        let st = p.analyze(&s).unwrap();
        let back = p.synthesize(&st).unwrap();
        // Interior samples reconstruct; edges may lose a little energy.
        for i in 32..168 {
            assert!((s[i] - back[i]).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn truncate_mode_loses_tail() {
        // 205 is chosen so (205-32) is NOT a hop multiple: the last frame
        // covers [168, 200) and samples 200..205 are never analyzed.
        let s = test_signal(205);
        let p = plan(PhaseConvention::SimplifiedTimeInvariant)
            .with_alignment(FrameAlignment::Causal)
            .with_padding(PaddingMode::Truncate);
        let st = p.analyze(&s).unwrap();
        // (205 - 32)/8 + 1 = 22 frames, vs ceil(205/8) = 26 for full modes.
        assert_eq!(st.num_frames(), 22);
        let back = p.synthesize(&st).unwrap();
        // The final samples are simply never covered.
        let tail_err: f64 = s[200..]
            .iter()
            .zip(&back[200..])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(
            tail_err > 1e-3,
            "tail unexpectedly reconstructed: {tail_err}"
        );
    }

    #[test]
    fn conventions_agree_in_magnitude_but_not_phase() {
        let s = test_signal(128);
        let ti = plan(PhaseConvention::TimeInvariant).analyze(&s).unwrap();
        let sti = plan(PhaseConvention::SimplifiedTimeInvariant)
            .analyze(&s)
            .unwrap();
        let mut max_mag_diff = 0.0f64;
        let mut max_phase_diff = 0.0f64;
        for (fa, fb) in ti.frames().iter().zip(sti.frames()) {
            for (a, b) in fa.iter().zip(fb) {
                max_mag_diff = max_mag_diff.max((a.abs() - b.abs()).abs());
                if a.abs() > 1e-6 {
                    max_phase_diff = max_phase_diff.max((a.arg() - b.arg()).abs());
                }
            }
        }
        assert!(max_mag_diff < 1e-10, "magnitudes differ: {max_mag_diff}");
        assert!(max_phase_diff > 0.1, "phases unexpectedly equal");
    }

    #[test]
    fn pointwise_phase_correction_converts_conventions() {
        let s = test_signal(160);
        for (from, to) in [
            (
                PhaseConvention::SimplifiedTimeInvariant,
                PhaseConvention::TimeInvariant,
            ),
            (
                PhaseConvention::TimeInvariant,
                PhaseConvention::FrequencyInvariant,
            ),
            (
                PhaseConvention::SimplifiedTimeInvariant,
                PhaseConvention::FrequencyInvariant,
            ),
        ] {
            let x_from = plan(from).analyze(&s).unwrap();
            let x_to_direct = plan(to).analyze(&s).unwrap();
            let x_converted = x_from.convert(to);
            for (fa, fb) in x_converted.frames().iter().zip(x_to_direct.frames()) {
                for (a, b) in fa.iter().zip(fb) {
                    assert!(
                        (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                        "{from:?}->{to:?}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn conversion_roundtrip_is_identity() {
        let s = test_signal(96);
        let x = plan(PhaseConvention::TimeInvariant).analyze(&s).unwrap();
        let back = x
            .convert(PhaseConvention::SimplifiedTimeInvariant)
            .convert(PhaseConvention::TimeInvariant);
        for (fa, fb) in x.frames().iter().zip(back.frames()) {
            for (a, b) in fa.iter().zip(fb) {
                assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn phase_skew_grows_with_window_length() {
        // Eq. 5 vs Eq. 6 skew at fixed bin: proportional to ⌊Lg/2⌋/M.
        let p16 = StftPlan::new(hann(16), 4, 64, PhaseConvention::TimeInvariant).unwrap();
        let p32 = StftPlan::new(hann(32), 4, 64, PhaseConvention::TimeInvariant).unwrap();
        let s16 = Stft::eq5_eq6_phase_skew(&p16, 3);
        let s32 = Stft::eq5_eq6_phase_skew(&p32, 3);
        assert!((s32 / s16 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn causal_alignment_is_delayed() {
        // A centered and a causal analysis of the same impulse peak in
        // different frames.
        let mut s = vec![0.0; 128];
        s[64] = 1.0;
        let pc = plan(PhaseConvention::TimeInvariant);
        let pd = plan(PhaseConvention::TimeInvariant).with_alignment(FrameAlignment::Causal);
        let energy = |st: &Stft| -> Vec<f64> {
            st.frames()
                .iter()
                .map(|f| f.iter().map(|c| c.norm_sqr()).sum())
                .collect()
        };
        let ec = energy(&pc.analyze(&s).unwrap());
        let ed = energy(&pd.analyze(&s).unwrap());
        let peak = |e: &[f64]| crate::peaks::peak_bin(e).unwrap();
        // Centered: impulse at sample 64 peaks at frame 64/8 = 8.
        assert_eq!(peak(&ec), 8);
        // Causal: window [n*8, n*8+32) has its Hann peak at n*8+16; energy
        // peaks when the impulse is near the window center, i.e. frame 6.
        assert_eq!(peak(&ed), 6);
    }

    #[test]
    fn plan_validation() {
        assert!(StftPlan::new(vec![], 4, 8, PhaseConvention::TimeInvariant).is_err());
        assert!(StftPlan::new(vec![1.0; 8], 0, 8, PhaseConvention::TimeInvariant).is_err());
        assert!(StftPlan::new(vec![1.0; 8], 4, 4, PhaseConvention::TimeInvariant).is_err());
        assert!(StftPlan::new(vec![f64::NAN; 8], 4, 8, PhaseConvention::TimeInvariant).is_err());
    }

    #[test]
    fn analyze_validates_signal() {
        let p = plan(PhaseConvention::TimeInvariant);
        assert!(p.analyze(&[]).is_err());
        assert!(p.analyze(&[f64::NAN; 64]).is_err());
    }

    #[test]
    fn synthesize_rejects_foreign_plan() {
        let s = test_signal(64);
        let p1 = plan(PhaseConvention::TimeInvariant);
        let p2 = StftPlan::new(hann(16), 8, 32, PhaseConvention::TimeInvariant).unwrap();
        let st = p1.analyze(&s).unwrap();
        assert!(p2.synthesize(&st).is_err());
    }
}
