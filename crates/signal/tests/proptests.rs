//! Property-based invariants of the signal kernels.

use proptest::prelude::*;
use rcr_signal::fft::{dft_naive, fft, ifft, irfft, rfft};
use rcr_signal::ofdm::{demodulate, modulate, OfdmConfig};
use rcr_signal::stft::{PhaseConvention, StftPlan};
use rcr_signal::window::{window, WindowKind, WindowSymmetry};
use rcr_signal::Complex64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_matches_naive_dft(values in prop::collection::vec(-10.0f64..10.0, 2..40)) {
        let x: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        let fast = fft(&x).unwrap();
        let slow = dft_naive(&x).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-7);
            prop_assert!((a.im - b.im).abs() < 1e-7);
        }
    }

    #[test]
    fn rfft_irfft_roundtrip(values in prop::collection::vec(-10.0f64..10.0, 2..64)) {
        let spec = rfft(&values).unwrap();
        let back = irfft(&spec, values.len()).unwrap();
        for (a, b) in values.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_linearity(
        a in prop::collection::vec(-5.0f64..5.0, 16),
        b in prop::collection::vec(-5.0f64..5.0, 16),
        alpha in -3.0f64..3.0,
    ) {
        let ca: Vec<Complex64> = a.iter().map(|&v| Complex64::from_real(v)).collect();
        let cb: Vec<Complex64> = b.iter().map(|&v| Complex64::from_real(v)).collect();
        let mix: Vec<Complex64> =
            ca.iter().zip(&cb).map(|(&x, &y)| x.scale(alpha) + y).collect();
        let lhs = fft(&mix).unwrap();
        let fa = fft(&ca).unwrap();
        let fb = fft(&cb).unwrap();
        for ((l, x), y) in lhs.iter().zip(&fa).zip(&fb) {
            let want = x.scale(alpha) + *y;
            prop_assert!((l.re - want.re).abs() < 1e-8);
            prop_assert!((l.im - want.im).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_holds(values in prop::collection::vec(-10.0f64..10.0, 4..64)) {
        let x: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        let spec = fft(&x).unwrap();
        let te: f64 = values.iter().map(|v| v * v).sum();
        let fe: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / values.len() as f64;
        prop_assert!((te - fe).abs() < 1e-7 * te.max(1.0));
    }

    #[test]
    fn ifft_inverts_fft(values in prop::collection::vec(-10.0f64..10.0, 6..48)) {
        let x: Vec<Complex64> = values
            .chunks(2)
            .map(|c| Complex64::new(c[0], *c.get(1).unwrap_or(&0.0)))
            .collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn stft_roundtrip_on_random_signals(
        values in prop::collection::vec(-5.0f64..5.0, 96..192),
    ) {
        let g = window(WindowKind::Hann, WindowSymmetry::Periodic, 16).unwrap();
        let plan = StftPlan::new(g, 4, 16, PhaseConvention::TimeInvariant).unwrap();
        let st = plan.analyze(&values).unwrap();
        let back = plan.synthesize(&st).unwrap();
        for (a, b) in values.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn ofdm_roundtrip_any_bits(raw in prop::collection::vec(any::<bool>(), 1..4)) {
        // Tile the random bits into exactly one OFDM symbol.
        let cfg = OfdmConfig { subcarriers: 16, cyclic_prefix: 4 };
        let bits: Vec<bool> =
            (0..cfg.bits_per_symbol()).map(|i| raw[i % raw.len()]).collect();
        let tx = modulate(&cfg, &bits).unwrap();
        let rx = demodulate(&cfg, &tx, &vec![Complex64::ONE; 16]).unwrap();
        prop_assert_eq!(bits, rx);
    }
}
