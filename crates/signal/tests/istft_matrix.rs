//! ISTFT round-trip matrix: every [`PaddingMode`] × [`Normalization`]
//! combination, with the expected reconstruction quality of each cell
//! spelled out — including the combinations that *cannot* reconstruct
//! (Truncate's unanalyzed tail, ColaConstant's attenuated boundaries),
//! which is exactly the library-behavior divergence the paper's §IV-B
//! catalogues.

use rcr_signal::stft::{FrameAlignment, Normalization, PaddingMode, PhaseConvention, StftPlan};
use rcr_signal::window::{window, WindowKind, WindowSymmetry};

const WIN: usize = 32;
const HOP: usize = 8; // 75% overlap: squared periodic Hann satisfies COLA.
const LEN: usize = 264; // LEN − WIN is a hop multiple: Truncate covers all.

fn test_signal() -> Vec<f64> {
    (0..LEN)
        .map(|i| {
            let t = i as f64;
            (0.19 * t).sin() + 0.4 * (0.053 * t + 0.7).cos()
        })
        .collect()
}

fn plan(padding: PaddingMode, normalization: Normalization) -> StftPlan {
    let g = window(WindowKind::Hann, WindowSymmetry::Periodic, WIN).unwrap();
    let alignment = match padding {
        // Truncate's frame-count formula assumes frames start inside the
        // signal; causal alignment is its natural pairing.
        PaddingMode::Truncate => FrameAlignment::Causal,
        _ => FrameAlignment::Centered,
    };
    StftPlan::new(g, HOP, WIN, PhaseConvention::TimeInvariant)
        .unwrap()
        .with_alignment(alignment)
        .with_padding(padding)
        .with_normalization(normalization)
}

/// Max absolute reconstruction error over `range`.
fn max_err(s: &[f64], back: &[f64], range: std::ops::Range<usize>) -> f64 {
    s[range.clone()]
        .iter()
        .zip(&back[range])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[test]
fn roundtrip_matrix_matches_documented_guarantees() {
    let s = test_signal();
    let paddings = [
        PaddingMode::Circular,
        PaddingMode::ZeroPad,
        PaddingMode::Truncate,
    ];
    let norms = [
        Normalization::WindowSquaredPerSample,
        Normalization::ColaConstant,
    ];

    for padding in paddings {
        for norm in norms {
            let p = plan(padding, norm);
            let st = p.analyze(&s).unwrap();
            let back = p.synthesize(&st).unwrap();
            assert_eq!(back.len(), s.len());
            let label = format!("{padding:?} x {norm:?}");

            // Interior samples reconstruct exactly in every combination:
            // full window overlap makes per-sample and COLA-constant
            // normalization coincide there.
            let interior = max_err(&s, &back, 2 * WIN..LEN - 2 * WIN);
            assert!(interior < 1e-10, "{label}: interior err {interior:e}");

            match padding {
                PaddingMode::Circular => {
                    // Periodic extension: no boundary at all. Both
                    // normalizations are exact end to end because the
                    // accumulated window energy is constant everywhere.
                    let full = max_err(&s, &back, 0..LEN);
                    assert!(full < 1e-10, "{label}: full err {full:e}");
                }
                PaddingMode::ZeroPad => {
                    let edge = max_err(&s, &back, 0..WIN / 2);
                    match norm {
                        Normalization::WindowSquaredPerSample => {
                            // Per-sample weights track the *actual*
                            // accumulated window energy, so even partially
                            // covered edges divide out correctly.
                            assert!(edge < 1e-9, "{label}: edge err {edge:e}");
                        }
                        Normalization::ColaConstant => {
                            // The constant assumes full overlap; edges see
                            // less window energy and come back attenuated.
                            assert!(edge > 1e-3, "{label}: edge unexpectedly exact");
                        }
                    }
                }
                PaddingMode::Truncate => {
                    // Frames exist only for n ≤ (L − L_g)/a. At this LEN
                    // the last frame happens to end exactly at the signal
                    // boundary, so the whole signal is covered; the
                    // unrecoverable-tail case (L − L_g not a hop multiple)
                    // is exercised by the dedicated test below.
                    let frames = p.num_frames(LEN);
                    assert_eq!(frames, (LEN - WIN) / HOP + 1, "{label}: frame count");
                }
            }
        }
    }
}

#[test]
fn truncate_tail_is_unrecoverable_under_both_normalizations() {
    // 269 samples: (269 − 32)/8 = 29 rem 5 → the last 5 samples fall
    // beyond every frame. Both normalizations must fail identically on
    // the tail while reconstructing the covered interior exactly.
    let len = 269usize;
    let s: Vec<f64> = (0..len).map(|i| (0.23 * i as f64).sin() + 0.5).collect();
    for norm in [
        Normalization::WindowSquaredPerSample,
        Normalization::ColaConstant,
    ] {
        let p = plan(PaddingMode::Truncate, norm);
        let st = p.analyze(&s).unwrap();
        assert_eq!(st.num_frames(), (len - WIN) / HOP + 1);
        let back = p.synthesize(&st).unwrap();
        let interior = max_err(&s, &back, 2 * WIN..len - 2 * WIN);
        assert!(interior < 1e-10, "{norm:?}: interior err {interior:e}");
        let tail = max_err(&s, &back, len - 5..len);
        assert!(
            tail > 1e-2,
            "{norm:?}: unanalyzed tail reconstructed: {tail:e}"
        );
    }
}

#[test]
fn truncate_rejects_signals_shorter_than_the_window() {
    let p = plan(PaddingMode::Truncate, Normalization::WindowSquaredPerSample);
    let short = vec![1.0; WIN - 1];
    assert!(p.analyze(&short).is_err());
}
