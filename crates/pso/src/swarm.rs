//! The continuous PSO core (Eqs. 1–2) with stagnation detection and
//! dispersion.
//!
//! Generations are evaluated *synchronously*: every particle's velocity
//! update reads the global best frozen at the start of the generation, and
//! each particle draws from its own RNG stream derived from
//! `settings.seed` + particle index ([`rcr_runtime::seed_stream`]). Those
//! two choices make the optimizer's output a pure function of the seed —
//! bit-identical across worker counts — so per-particle objective
//! evaluation fans out across the worker pool for free.

use crate::inertia::{InertiaSchedule, SwarmObservation};
use crate::PsoError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcr_runtime::{parallel_map, parallel_map_mut, resolve_workers, seed_stream};

/// PSO driver settings.
#[derive(Debug, Clone)]
pub struct PsoSettings {
    /// Number of particles.
    pub swarm_size: usize,
    /// Generation horizon.
    pub max_iter: usize,
    /// Cognitive acceleration α₁.
    pub cognitive: f64,
    /// Social acceleration α₂.
    pub social: f64,
    /// Inertia schedule ι(k).
    pub inertia: InertiaSchedule,
    /// Velocity clamp as a fraction of each dimension's range.
    pub velocity_clamp: f64,
    /// Generations without improvement before dispersion triggers
    /// (0 disables dispersion).
    pub stagnation_window: usize,
    /// Fraction of worst particles re-scattered on dispersion.
    pub dispersion_fraction: f64,
    /// Stop early when the best value drops below this target.
    pub target_value: Option<f64>,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Worker threads for objective evaluation: `0` = auto (the
    /// `RCR_WORKERS` environment variable, else serial). Results are
    /// identical for every worker count.
    pub workers: usize,
}

impl Default for PsoSettings {
    fn default() -> Self {
        PsoSettings {
            swarm_size: 30,
            max_iter: 400,
            cognitive: 1.49445,
            social: 1.49445,
            inertia: InertiaSchedule::default(),
            velocity_clamp: 0.5,
            stagnation_window: 25,
            dispersion_fraction: 0.3,
            target_value: None,
            seed: 0,
            workers: 0,
        }
    }
}

/// Result of a PSO run.
#[derive(Debug, Clone)]
pub struct PsoResult {
    /// Best position found.
    pub best_position: Vec<f64>,
    /// Best objective value found.
    pub best_value: f64,
    /// Generations actually run.
    pub iterations: usize,
    /// Best value after each generation (for convergence plots).
    pub history: Vec<f64>,
    /// Number of dispersion events triggered by stagnation.
    pub dispersion_events: usize,
    /// Objective evaluations consumed.
    pub evaluations: usize,
}

struct Particle {
    x: Vec<f64>,
    v: Vec<f64>,
    best_x: Vec<f64>,
    best_f: f64,
    /// Objective value at `x` from the latest sweep (merged serially).
    last_f: f64,
    /// Private RNG stream — what makes parallel sweeps deterministic.
    rng: StdRng,
}

/// The particle swarm optimizer.
///
/// Use [`Swarm::minimize`] for one-shot runs; the struct form exposes
/// generation-by-generation stepping for the adaptive-inertia experiments.
#[derive(Debug)]
pub struct Swarm {
    _private: (),
}

impl Swarm {
    /// Minimizes `f` over the box `bounds` (one `(lo, hi)` per dimension).
    ///
    /// Objective evaluations fan out across `settings.workers` threads;
    /// the result is bit-identical for every worker count because each
    /// particle owns an RNG stream derived from the seed and its index,
    /// and all best-so-far reductions run serially in particle order.
    ///
    /// # Errors
    /// * [`PsoError::InvalidBounds`] for empty/reversed/non-finite bounds.
    /// * [`PsoError::InvalidParameter`] for bad settings.
    /// * [`PsoError::ObjectiveNan`] if `f` returns NaN at a feasible point.
    pub fn minimize(
        f: impl Fn(&[f64]) -> f64 + Sync,
        bounds: &[(f64, f64)],
        settings: &PsoSettings,
    ) -> Result<PsoResult, PsoError> {
        validate(bounds, settings)?;
        let dim = bounds.len();
        let workers = resolve_workers(settings.workers);
        let mut evaluations = 0usize;

        // Velocity clamp per dimension.
        let vmax: Vec<f64> = bounds
            .iter()
            .map(|(lo, hi)| settings.velocity_clamp * (hi - lo))
            .collect();

        // Initialize the swarm uniformly at random within the box, each
        // particle drawing from its own seed-derived stream.
        let mut particles: Vec<Particle> = (0..settings.swarm_size)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seed_stream(settings.seed, i as u64));
                let x: Vec<f64> = bounds
                    .iter()
                    .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                    .collect();
                let v: Vec<f64> = vmax.iter().map(|&vm| rng.gen_range(-vm..=vm)).collect();
                Particle {
                    best_x: x.clone(),
                    x,
                    v,
                    best_f: f64::INFINITY,
                    last_f: f64::NAN,
                    rng,
                }
            })
            .collect();

        // Initial sweep: evaluate in parallel, reduce serially in order.
        parallel_map_mut(&mut particles, workers, |_, p| {
            p.last_f = f(&p.x);
        });
        let mut g_best_x = particles[0].x.clone();
        let mut g_best_f = f64::INFINITY;
        for p in &mut particles {
            let fx = p.last_f;
            evaluations += 1;
            if fx.is_nan() {
                return Err(PsoError::ObjectiveNan);
            }
            p.best_f = fx;
            if fx < g_best_f {
                g_best_f = fx;
                g_best_x = p.x.clone();
            }
        }

        let initial_diversity = diversity(&particles).max(1e-12);
        let mut history = Vec::with_capacity(settings.max_iter);
        let mut since_improvement = 0usize;
        let mut dispersion_events = 0usize;
        let mut iterations = 0usize;

        for gen in 0..settings.max_iter {
            iterations = gen + 1;
            let div = (diversity(&particles) / initial_diversity).clamp(0.0, 1.0);
            let obs = SwarmObservation {
                generation: gen,
                horizon: settings.max_iter,
                diversity: div,
                improved: since_improvement == 0,
            };
            let w = settings.inertia.weight(&obs);

            // Synchronous sweep: every particle sees the global best as of
            // the start of the generation, so the update is independent of
            // evaluation order and can fan out.
            {
                let g_best_snapshot = &g_best_x;
                parallel_map_mut(&mut particles, workers, |_, p| {
                    for d in 0..dim {
                        let beta1: f64 = p.rng.gen();
                        let beta2: f64 = p.rng.gen();
                        // Eq. 2.
                        p.v[d] = w * p.v[d]
                            + settings.cognitive * beta1 * (p.best_x[d] - p.x[d])
                            + settings.social * beta2 * (g_best_snapshot[d] - p.x[d]);
                        p.v[d] = p.v[d].clamp(-vmax[d], vmax[d]);
                        // Eq. 1, clamped to the box.
                        p.x[d] = (p.x[d] + p.v[d]).clamp(bounds[d].0, bounds[d].1);
                    }
                    p.last_f = f(&p.x);
                });
            }

            // Serial reduction in particle order.
            let mut improved = false;
            for p in &mut particles {
                let fx = p.last_f;
                evaluations += 1;
                if fx.is_nan() {
                    return Err(PsoError::ObjectiveNan);
                }
                if fx < p.best_f {
                    p.best_f = fx;
                    p.best_x.copy_from_slice(&p.x);
                }
                if fx < g_best_f {
                    g_best_f = fx;
                    g_best_x.copy_from_slice(&p.x);
                    improved = true;
                }
            }
            history.push(g_best_f);

            if let Some(target) = settings.target_value {
                if g_best_f <= target {
                    break;
                }
            }

            since_improvement = if improved { 0 } else { since_improvement + 1 };
            if settings.stagnation_window > 0 && since_improvement >= settings.stagnation_window {
                // Dispersion: re-scatter the worst particles uniformly.
                // Scatter draws come from each particle's own stream, so
                // this too is worker-count independent.
                let mut order: Vec<usize> = (0..particles.len()).collect();
                order.sort_by(|&a, &b| particles[b].best_f.total_cmp(&particles[a].best_f));
                let k = ((particles.len() as f64 * settings.dispersion_fraction) as usize).max(1);
                let scattered: Vec<usize> = order.iter().take(k).copied().collect();
                for &idx in &scattered {
                    let p = &mut particles[idx];
                    for d in 0..dim {
                        p.x[d] = p.rng.gen_range(bounds[d].0..=bounds[d].1);
                        p.v[d] = p.rng.gen_range(-vmax[d]..=vmax[d]);
                    }
                }
                let fresh = parallel_map(&scattered, workers, |_, &idx| f(&particles[idx].x));
                for (&idx, &fx) in scattered.iter().zip(&fresh) {
                    let p = &mut particles[idx];
                    evaluations += 1;
                    if fx.is_nan() {
                        return Err(PsoError::ObjectiveNan);
                    }
                    p.last_f = fx;
                    if fx < p.best_f {
                        p.best_f = fx;
                        p.best_x.copy_from_slice(&p.x);
                    }
                    if fx < g_best_f {
                        g_best_f = fx;
                        g_best_x.copy_from_slice(&p.x);
                    }
                }
                dispersion_events += 1;
                since_improvement = 0;
            }
        }

        Ok(PsoResult {
            best_position: g_best_x,
            best_value: g_best_f,
            iterations,
            history,
            dispersion_events,
            evaluations,
        })
    }
}

/// Mean distance of particle positions from the swarm centroid.
fn diversity(particles: &[Particle]) -> f64 {
    let n = particles.len();
    if n == 0 {
        return 0.0;
    }
    let dim = particles[0].x.len();
    let mut center = vec![0.0; dim];
    for p in particles {
        for (c, &xi) in center.iter_mut().zip(&p.x) {
            *c += xi;
        }
    }
    for c in &mut center {
        *c /= n as f64;
    }
    particles
        .iter()
        .map(|p| {
            p.x.iter()
                .zip(&center)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        })
        .sum::<f64>()
        / n as f64
}

fn validate(bounds: &[(f64, f64)], settings: &PsoSettings) -> Result<(), PsoError> {
    if bounds.is_empty() {
        return Err(PsoError::InvalidBounds("empty bounds".into()));
    }
    for &(lo, hi) in bounds {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(PsoError::InvalidBounds(format!("[{lo}, {hi}]")));
        }
    }
    if settings.swarm_size == 0 {
        return Err(PsoError::InvalidParameter("swarm_size must be >= 1".into()));
    }
    if settings.max_iter == 0 {
        return Err(PsoError::InvalidParameter("max_iter must be >= 1".into()));
    }
    if !(settings.cognitive >= 0.0) || !(settings.social >= 0.0) {
        return Err(PsoError::InvalidParameter(
            "accelerations must be >= 0".into(),
        ));
    }
    if !(settings.velocity_clamp > 0.0 && settings.velocity_clamp <= 1.0) {
        return Err(PsoError::InvalidParameter(
            "velocity_clamp must be in (0, 1]".into(),
        ));
    }
    if !(settings.dispersion_fraction > 0.0 && settings.dispersion_fraction <= 1.0) {
        return Err(PsoError::InvalidParameter(
            "dispersion_fraction must be in (0, 1]".into(),
        ));
    }
    settings
        .inertia
        .validate()
        .map_err(PsoError::InvalidParameter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchfn::BenchFunction;

    fn run(f: BenchFunction, dim: usize, seed: u64) -> PsoResult {
        let settings = PsoSettings {
            seed,
            ..Default::default()
        };
        Swarm::minimize(|x| f.eval(x), &f.bounds(dim), &settings).unwrap()
    }

    #[test]
    fn solves_sphere() {
        let r = run(BenchFunction::Sphere, 5, 1);
        assert!(r.best_value < 1e-6, "best {}", r.best_value);
    }

    #[test]
    fn solves_rosenbrock_2d() {
        let r = run(BenchFunction::Rosenbrock, 2, 2);
        assert!(r.best_value < 1e-3, "best {}", r.best_value);
    }

    #[test]
    fn solves_rastrigin_2d_with_adaptive_inertia() {
        let settings = PsoSettings {
            seed: 3,
            max_iter: 600,
            inertia: crate::inertia::InertiaSchedule::AdaptiveDiversity { min: 0.4, max: 0.9 },
            ..Default::default()
        };
        let f = BenchFunction::Rastrigin;
        let r = Swarm::minimize(|x| f.eval(x), &f.bounds(2), &settings).unwrap();
        assert!(r.best_value < 1.0, "best {}", r.best_value);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(BenchFunction::Ackley, 3, 42);
        let b = run(BenchFunction::Ackley, 3, 42);
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.best_position, b.best_position);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(BenchFunction::Ackley, 3, 1);
        let b = run(BenchFunction::Ackley, 3, 2);
        assert_ne!(a.best_position, b.best_position);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let r = run(BenchFunction::Griewank, 4, 5);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn target_value_stops_early() {
        let f = BenchFunction::Sphere;
        let settings = PsoSettings {
            target_value: Some(1e-2),
            seed: 9,
            ..Default::default()
        };
        let r = Swarm::minimize(|x| f.eval(x), &f.bounds(3), &settings).unwrap();
        assert!(r.iterations < settings.max_iter);
        assert!(r.best_value <= 1e-2);
    }

    #[test]
    fn best_position_within_bounds() {
        let f = BenchFunction::Rastrigin;
        let r = run(f, 4, 7);
        for (x, (lo, hi)) in r.best_position.iter().zip(f.bounds(4)) {
            assert!(*x >= lo && *x <= hi);
        }
    }

    #[test]
    fn small_swarm_still_finds_decent_solutions() {
        // §II-A: "even relatively small swarm sizes are fairly consistent
        // in providing good-enough near-optimum solutions".
        let f = BenchFunction::Sphere;
        let settings = PsoSettings {
            swarm_size: 5,
            seed: 11,
            ..Default::default()
        };
        let r = Swarm::minimize(|x| f.eval(x), &f.bounds(4), &settings).unwrap();
        assert!(r.best_value < 1e-3, "best {}", r.best_value);
    }

    #[test]
    fn validation_errors() {
        let f = |x: &[f64]| x[0];
        let s = PsoSettings::default();
        assert!(Swarm::minimize(f, &[], &s).is_err());
        assert!(Swarm::minimize(f, &[(1.0, 0.0)], &s).is_err());
        let bad = PsoSettings {
            swarm_size: 0,
            ..Default::default()
        };
        assert!(Swarm::minimize(f, &[(0.0, 1.0)], &bad).is_err());
        let bad = PsoSettings {
            velocity_clamp: 0.0,
            ..Default::default()
        };
        assert!(Swarm::minimize(f, &[(0.0, 1.0)], &bad).is_err());
    }

    #[test]
    fn nan_objective_reported() {
        let s = PsoSettings {
            swarm_size: 3,
            max_iter: 5,
            ..Default::default()
        };
        let r = Swarm::minimize(|_| f64::NAN, &[(0.0, 1.0)], &s);
        assert!(matches!(r, Err(PsoError::ObjectiveNan)));
    }

    #[test]
    fn dispersion_triggers_on_flat_landscape() {
        // Constant objective: no improvement ever → dispersion events fire.
        let s = PsoSettings {
            swarm_size: 8,
            max_iter: 120,
            stagnation_window: 10,
            seed: 1,
            ..Default::default()
        };
        let r = Swarm::minimize(|_| 1.0, &[(0.0, 1.0), (0.0, 1.0)], &s).unwrap();
        assert!(r.dispersion_events >= 5, "events {}", r.dispersion_events);
    }
}
