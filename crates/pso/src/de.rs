//! Differential evolution — the other swarm-intelligence family §II-A
//! lists ("genetic, differential evolution, colony optimization, and PSO
//! algorithms"), used as the comparison baseline in experiment E4.
//!
//! Classic DE/rand/1/bin: each generation, every agent `x_i` is
//! challenged by a trial vector built from three distinct random agents
//! `a + F·(b − c)` with binomial crossover at rate `CR`; the trial
//! replaces the agent when it scores better. Unlike PSO there is no
//! velocity state — and hence no inertia schedule to tune, which is
//! exactly the trade-off the paper weighs when it chooses PSO "given its
//! advantages in terms of the reduced number of hyperparameters to tune".

use crate::PsoError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Differential evolution settings.
#[derive(Debug, Clone)]
pub struct DeSettings {
    /// Population size (≥ 4 for DE/rand/1).
    pub population: usize,
    /// Generation horizon.
    pub max_iter: usize,
    /// Differential weight `F` ∈ (0, 2].
    pub weight: f64,
    /// Crossover rate `CR` ∈ [0, 1].
    pub crossover: f64,
    /// Stop early when the best value drops below this target.
    pub target_value: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeSettings {
    fn default() -> Self {
        DeSettings {
            population: 30,
            max_iter: 400,
            weight: 0.8,
            crossover: 0.9,
            target_value: None,
            seed: 0,
        }
    }
}

/// Result of a DE run.
#[derive(Debug, Clone)]
pub struct DeResult {
    /// Best position found.
    pub best_position: Vec<f64>,
    /// Best objective value found.
    pub best_value: f64,
    /// Generations actually run.
    pub iterations: usize,
    /// Best value after each generation.
    pub history: Vec<f64>,
    /// Objective evaluations consumed.
    pub evaluations: usize,
}

/// Minimizes `f` over the box `bounds` with DE/rand/1/bin.
///
/// ```
/// use rcr_pso::de::{minimize, DeSettings};
///
/// # fn main() -> Result<(), rcr_pso::PsoError> {
/// let settings = DeSettings { seed: 1, ..Default::default() };
/// let r = minimize(|x| x[0] * x[0] + x[1] * x[1], &[(-5.0, 5.0); 2], &settings)?;
/// assert!(r.best_value < 1e-8);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// * [`PsoError::InvalidBounds`] for malformed bounds.
/// * [`PsoError::InvalidParameter`] for bad settings (population < 4,
///   weight/crossover out of range).
/// * [`PsoError::ObjectiveNan`] if `f` returns NaN at a feasible point.
pub fn minimize(
    mut f: impl FnMut(&[f64]) -> f64,
    bounds: &[(f64, f64)],
    settings: &DeSettings,
) -> Result<DeResult, PsoError> {
    if bounds.is_empty() {
        return Err(PsoError::InvalidBounds("empty bounds".into()));
    }
    for &(lo, hi) in bounds {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(PsoError::InvalidBounds(format!("[{lo}, {hi}]")));
        }
    }
    if settings.population < 4 {
        return Err(PsoError::InvalidParameter("population must be >= 4".into()));
    }
    if settings.max_iter == 0 {
        return Err(PsoError::InvalidParameter("max_iter must be >= 1".into()));
    }
    if !(settings.weight > 0.0 && settings.weight <= 2.0) {
        return Err(PsoError::InvalidParameter(
            "weight must be in (0, 2]".into(),
        ));
    }
    if !(0.0..=1.0).contains(&settings.crossover) {
        return Err(PsoError::InvalidParameter(
            "crossover must be in [0, 1]".into(),
        ));
    }

    let dim = bounds.len();
    let np = settings.population;
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut pop: Vec<Vec<f64>> = (0..np)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                .collect()
        })
        .collect();
    let mut scores = Vec::with_capacity(np);
    let mut evaluations = 0usize;
    for x in &pop {
        let v = f(x);
        evaluations += 1;
        if v.is_nan() {
            return Err(PsoError::ObjectiveNan);
        }
        scores.push(v);
    }
    // total_cmp: scores are NaN-free (checked above), and the population
    // is non-empty (>= 4 validated), so this selection cannot panic.
    let mut best_idx = (0..np)
        .min_by(|&a, &b| scores[a].total_cmp(&scores[b]))
        .unwrap_or(0);
    let mut history = Vec::with_capacity(settings.max_iter);
    let mut iterations = 0usize;

    for gen in 0..settings.max_iter {
        iterations = gen + 1;
        for i in 0..np {
            // Three distinct agents, all different from i.
            let mut pick = || loop {
                let k = rng.gen_range(0..np);
                if k != i {
                    return k;
                }
            };
            let (a, b, c) = {
                let a = pick();
                let b = loop {
                    let k = pick();
                    if k != a {
                        break k;
                    }
                };
                let c = loop {
                    let k = pick();
                    if k != a && k != b {
                        break k;
                    }
                };
                (a, b, c)
            };
            // Binomial crossover with a guaranteed mutated coordinate.
            let forced = rng.gen_range(0..dim);
            let mut trial = pop[i].clone();
            for d in 0..dim {
                if d == forced || rng.gen::<f64>() < settings.crossover {
                    let v = pop[a][d] + settings.weight * (pop[b][d] - pop[c][d]);
                    trial[d] = v.clamp(bounds[d].0, bounds[d].1);
                }
            }
            let v = f(&trial);
            evaluations += 1;
            if v.is_nan() {
                return Err(PsoError::ObjectiveNan);
            }
            if v <= scores[i] {
                pop[i] = trial;
                scores[i] = v;
                if v < scores[best_idx] {
                    best_idx = i;
                }
            }
        }
        history.push(scores[best_idx]);
        if let Some(target) = settings.target_value {
            if scores[best_idx] <= target {
                break;
            }
        }
    }

    Ok(DeResult {
        best_position: pop[best_idx].clone(),
        best_value: scores[best_idx],
        iterations,
        history,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchfn::BenchFunction;

    fn run(f: BenchFunction, dim: usize, seed: u64) -> DeResult {
        let settings = DeSettings {
            seed,
            ..Default::default()
        };
        minimize(|x| f.eval(x), &f.bounds(dim), &settings).unwrap()
    }

    #[test]
    fn solves_sphere() {
        let r = run(BenchFunction::Sphere, 5, 1);
        assert!(r.best_value < 1e-6, "best {}", r.best_value);
    }

    #[test]
    fn solves_rastrigin_2d() {
        let r = run(BenchFunction::Rastrigin, 2, 2);
        assert!(r.best_value < 1e-3, "best {}", r.best_value);
    }

    #[test]
    fn solves_rosenbrock_2d() {
        let r = run(BenchFunction::Rosenbrock, 2, 3);
        assert!(r.best_value < 1e-2, "best {}", r.best_value);
    }

    #[test]
    fn deterministic_and_monotone() {
        let a = run(BenchFunction::Ackley, 3, 7);
        let b = run(BenchFunction::Ackley, 3, 7);
        assert_eq!(a.best_value, b.best_value);
        for w in a.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn stays_in_bounds_and_stops_at_target() {
        let f = BenchFunction::Griewank;
        let settings = DeSettings {
            target_value: Some(1e-1),
            seed: 4,
            ..Default::default()
        };
        let r = minimize(|x| f.eval(x), &f.bounds(4), &settings).unwrap();
        for (x, (lo, hi)) in r.best_position.iter().zip(f.bounds(4)) {
            assert!(*x >= lo && *x <= hi);
        }
        assert!(r.iterations <= settings.max_iter);
    }

    #[test]
    fn validation() {
        let f = |x: &[f64]| x[0];
        assert!(minimize(f, &[], &DeSettings::default()).is_err());
        assert!(minimize(f, &[(1.0, 0.0)], &DeSettings::default()).is_err());
        let bad = DeSettings {
            population: 3,
            ..Default::default()
        };
        assert!(minimize(f, &[(0.0, 1.0)], &bad).is_err());
        let bad = DeSettings {
            weight: 0.0,
            ..Default::default()
        };
        assert!(minimize(f, &[(0.0, 1.0)], &bad).is_err());
        let bad = DeSettings {
            crossover: 1.5,
            ..Default::default()
        };
        assert!(minimize(f, &[(0.0, 1.0)], &bad).is_err());
        assert!(minimize(|_| f64::NAN, &[(0.0, 1.0)], &DeSettings::default()).is_err());
    }
}
