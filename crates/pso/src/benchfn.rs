//! Standard continuous benchmark functions with known optima.
//!
//! These are the workloads of experiment E4 (PSO convergence vs swarm
//! size): a bowl, a curved valley, and three multimodal surfaces of
//! increasing ruggedness.

use std::f64::consts::PI;

/// A benchmark objective with a known global minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BenchFunction {
    /// `Σ x_i²`, minimum 0 at the origin. Convex.
    Sphere,
    /// The Rosenbrock valley, minimum 0 at `(1, …, 1)`. Unimodal, badly
    /// conditioned.
    Rosenbrock,
    /// Rastrigin, minimum 0 at the origin. Highly multimodal, separable.
    Rastrigin,
    /// Ackley, minimum 0 at the origin. Multimodal with a deep funnel.
    Ackley,
    /// Griewank, minimum 0 at the origin. Multimodal, non-separable.
    Griewank,
}

impl BenchFunction {
    /// All functions in catalog order.
    pub fn all() -> &'static [BenchFunction] {
        &[
            BenchFunction::Sphere,
            BenchFunction::Rosenbrock,
            BenchFunction::Rastrigin,
            BenchFunction::Ackley,
            BenchFunction::Griewank,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchFunction::Sphere => "sphere",
            BenchFunction::Rosenbrock => "rosenbrock",
            BenchFunction::Rastrigin => "rastrigin",
            BenchFunction::Ackley => "ackley",
            BenchFunction::Griewank => "griewank",
        }
    }

    /// Evaluates the function.
    pub fn eval(&self, x: &[f64]) -> f64 {
        match self {
            BenchFunction::Sphere => x.iter().map(|v| v * v).sum(),
            BenchFunction::Rosenbrock => x
                .windows(2)
                .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
                .sum(),
            BenchFunction::Rastrigin => {
                10.0 * x.len() as f64
                    + x.iter()
                        .map(|v| v * v - 10.0 * (2.0 * PI * v).cos())
                        .sum::<f64>()
            }
            BenchFunction::Ackley => {
                let n = x.len() as f64;
                let s1 = x.iter().map(|v| v * v).sum::<f64>() / n;
                let s2 = x.iter().map(|v| (2.0 * PI * v).cos()).sum::<f64>() / n;
                -20.0 * (-0.2 * s1.sqrt()).exp() - s2.exp() + 20.0 + std::f64::consts::E
            }
            BenchFunction::Griewank => {
                let s: f64 = x.iter().map(|v| v * v).sum::<f64>() / 4000.0;
                let p: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v / ((i + 1) as f64).sqrt()).cos())
                    .product();
                s - p + 1.0
            }
        }
    }

    /// The canonical search box for dimension `dim`.
    pub fn bounds(&self, dim: usize) -> Vec<(f64, f64)> {
        let (lo, hi) = match self {
            BenchFunction::Sphere => (-5.12, 5.12),
            BenchFunction::Rosenbrock => (-5.0, 10.0),
            BenchFunction::Rastrigin => (-5.12, 5.12),
            BenchFunction::Ackley => (-32.768, 32.768),
            BenchFunction::Griewank => (-600.0, 600.0),
        };
        vec![(lo, hi); dim]
    }

    /// The global minimizer for dimension `dim`.
    pub fn optimum(&self, dim: usize) -> Vec<f64> {
        match self {
            BenchFunction::Rosenbrock => vec![1.0; dim],
            _ => vec![0.0; dim],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optima_evaluate_to_zero() {
        for f in BenchFunction::all() {
            for dim in [2usize, 5] {
                let v = f.eval(&f.optimum(dim));
                assert!(v.abs() < 1e-12, "{} at dim {dim}: {v}", f.name());
            }
        }
    }

    #[test]
    fn functions_positive_away_from_optimum() {
        for f in BenchFunction::all() {
            let x = vec![2.5, -1.5, 3.0];
            assert!(f.eval(&x) > 0.0, "{}", f.name());
        }
    }

    #[test]
    fn rastrigin_is_multimodal() {
        // Local minimum near integers: f(1,0) is a local min but not 0.
        let f = BenchFunction::Rastrigin;
        let near_local = f.eval(&[1.0, 0.0]);
        assert!(near_local > 0.5 && near_local < 2.0);
    }

    #[test]
    fn bounds_contain_optimum() {
        for f in BenchFunction::all() {
            for (b, o) in f.bounds(4).iter().zip(f.optimum(4)) {
                assert!(o >= b.0 && o <= b.1, "{}", f.name());
            }
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = BenchFunction::all().iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BenchFunction::all().len());
    }
}
