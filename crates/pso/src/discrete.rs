//! Discrete and mixed-integer PSO.
//!
//! §II-A-2: "the rounding of the calculated velocities to discrete integer
//! values creates an artificial environment, wherein particles may
//! stagnate prematurely". Two strategies are provided so experiment E5 can
//! measure exactly that effect:
//!
//! * [`DiscreteStrategy::Rounding`] — the naive approach: run the
//!   continuous kernel and round discrete coordinates at evaluation time.
//!   Once the inertia decays, rounded positions stop changing and the
//!   swarm freezes on a lattice point.
//! * [`DiscreteStrategy::Distribution`] — the Strasser-style encoding
//!   where "each attribute of a PSO particle is a distribution over its
//!   possible values rather than a specific value"; velocities act on the
//!   distribution simplex and evaluation samples from it, so exploration
//!   pressure never quantizes away.

use crate::inertia::{InertiaSchedule, SwarmObservation};
use crate::swarm::PsoSettings;
use crate::PsoError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One decision variable of a mixed problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarSpec {
    /// A continuous variable in `[lo, hi]`.
    Continuous {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// An integer variable in `{lo, …, hi}`.
    Integer {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// A categorical variable with values `{0, …, cardinality − 1}`.
    Categorical {
        /// Number of categories.
        cardinality: usize,
    },
}

impl VarSpec {
    fn validate(&self) -> Result<(), PsoError> {
        match *self {
            VarSpec::Continuous { lo, hi } => {
                if lo.is_finite() && hi.is_finite() && lo <= hi {
                    Ok(())
                } else {
                    Err(PsoError::InvalidBounds(format!("continuous [{lo}, {hi}]")))
                }
            }
            VarSpec::Integer { lo, hi } => {
                if lo <= hi {
                    Ok(())
                } else {
                    Err(PsoError::InvalidBounds(format!("integer [{lo}, {hi}]")))
                }
            }
            VarSpec::Categorical { cardinality } => {
                if cardinality >= 1 {
                    Ok(())
                } else {
                    Err(PsoError::InvalidBounds("categorical with 0 values".into()))
                }
            }
        }
    }

    fn is_discrete(&self) -> bool {
        !matches!(self, VarSpec::Continuous { .. })
    }

    /// Number of discrete values (1 for continuous, used as a sentinel).
    fn cardinality(&self) -> usize {
        match *self {
            VarSpec::Continuous { .. } => 1,
            VarSpec::Integer { lo, hi } => (hi - lo + 1) as usize,
            VarSpec::Categorical { cardinality } => cardinality,
        }
    }

    /// Decodes category index `k` to the variable's numeric value.
    fn decode(&self, k: usize) -> f64 {
        match *self {
            VarSpec::Continuous { .. } => unreachable!("decode on continuous"),
            VarSpec::Integer { lo, .. } => (lo + k as i64) as f64,
            VarSpec::Categorical { .. } => k as f64,
        }
    }
}

/// Discretization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscreteStrategy {
    /// Round continuous positions at evaluation time (stagnation-prone).
    Rounding,
    /// Distribution-over-values attributes (Strasser et al.).
    Distribution,
}

/// Result of a mixed-integer PSO run.
#[derive(Debug, Clone)]
pub struct MixedPsoResult {
    /// Best point found (discrete coordinates hold exact integer values).
    pub best_position: Vec<f64>,
    /// Best objective value found.
    pub best_value: f64,
    /// Best value after each generation.
    pub history: Vec<f64>,
    /// Number of *distinct* discrete assignments evaluated — the
    /// exploration measure of experiment E5 (small = premature lattice
    /// stagnation).
    pub distinct_discrete_points: usize,
    /// Objective evaluations consumed.
    pub evaluations: usize,
    /// Fraction of particles whose discrete velocity had fully collapsed
    /// to zero at the final generation — the paper's "premature
    /// stagnation" symptom. Always 0 for the distribution strategy, whose
    /// sampling never freezes.
    pub frozen_fraction: f64,
}

/// Minimizes `f` over a mixed continuous/discrete space.
///
/// Discrete coordinates are passed to `f` as exact `f64` integers.
///
/// ```
/// use rcr_pso::discrete::{minimize_mixed, DiscreteStrategy, VarSpec};
/// use rcr_pso::swarm::PsoSettings;
///
/// # fn main() -> Result<(), rcr_pso::PsoError> {
/// // min (n - 3)² over n ∈ {-10..10}.
/// let specs = [VarSpec::Integer { lo: -10, hi: 10 }];
/// let settings = PsoSettings { seed: 1, max_iter: 60, ..Default::default() };
/// let r = minimize_mixed(|x| (x[0] - 3.0).powi(2), &specs,
///                        DiscreteStrategy::Distribution, &settings)?;
/// assert_eq!(r.best_position, vec![3.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// * [`PsoError::InvalidBounds`] / [`PsoError::InvalidParameter`] for bad
///   problem or settings data.
/// * [`PsoError::ObjectiveNan`] if `f` returns NaN.
pub fn minimize_mixed(
    mut f: impl FnMut(&[f64]) -> f64,
    specs: &[VarSpec],
    strategy: DiscreteStrategy,
    settings: &PsoSettings,
) -> Result<MixedPsoResult, PsoError> {
    if specs.is_empty() {
        return Err(PsoError::InvalidBounds("empty variable list".into()));
    }
    for s in specs {
        s.validate()?;
    }
    if settings.swarm_size == 0 || settings.max_iter == 0 {
        return Err(PsoError::InvalidParameter(
            "swarm_size and max_iter must be >= 1".into(),
        ));
    }
    settings
        .inertia
        .validate()
        .map_err(PsoError::InvalidParameter)?;
    match strategy {
        DiscreteStrategy::Rounding => rounding_pso(&mut f, specs, settings),
        DiscreteStrategy::Distribution => distribution_pso(&mut f, specs, settings),
    }
}

/// Relaxed box for the rounding strategy.
fn relaxed_bounds(specs: &[VarSpec]) -> Vec<(f64, f64)> {
    specs
        .iter()
        .map(|s| match *s {
            VarSpec::Continuous { lo, hi } => (lo, hi),
            VarSpec::Integer { lo, hi } => (lo as f64, hi as f64),
            VarSpec::Categorical { cardinality } => (0.0, (cardinality - 1) as f64),
        })
        .collect()
}

fn discrete_key(specs: &[VarSpec], x: &[f64]) -> Vec<i64> {
    x.iter()
        .zip(specs)
        .filter(|(_, s)| s.is_discrete())
        .map(|(&v, _)| v.round() as i64)
        .collect()
}

/// The naive strategy of §II-A-2 implemented *faithfully*: discrete
/// coordinates hold integer positions and the calculated velocities are
/// rounded to integers before being applied. When the swarm contracts so
/// that `|v| < 0.5`, the rounded velocity becomes exactly 0 and the
/// particle freezes on its lattice point — the premature stagnation the
/// paper describes.
fn rounding_pso(
    f: &mut dyn FnMut(&[f64]) -> f64,
    specs: &[VarSpec],
    settings: &PsoSettings,
) -> Result<MixedPsoResult, PsoError> {
    let dim = specs.len();
    let bounds = relaxed_bounds(specs);
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut seen: BTreeSet<Vec<i64>> = BTreeSet::new();
    let mut evaluations = 0usize;

    struct RPart {
        x: Vec<f64>,
        v: Vec<f64>,
        best_x: Vec<f64>,
        best_f: f64,
    }

    let mut particles: Vec<RPart> = (0..settings.swarm_size)
        .map(|_| {
            let x: Vec<f64> = (0..dim)
                .map(|d| {
                    let (lo, hi) = bounds[d];
                    let raw = rng.gen_range(lo..=hi);
                    if specs[d].is_discrete() {
                        raw.round()
                    } else {
                        raw
                    }
                })
                .collect();
            let v: Vec<f64> = (0..dim)
                .map(|d| {
                    let (lo, hi) = bounds[d];
                    let vm = settings.velocity_clamp * (hi - lo);
                    let raw = rng.gen_range(-vm..=vm);
                    if specs[d].is_discrete() {
                        raw.round()
                    } else {
                        raw
                    }
                })
                .collect();
            RPart {
                best_x: x.clone(),
                x,
                v,
                best_f: f64::INFINITY,
            }
        })
        .collect();

    let mut g_best = particles[0].x.clone();
    let mut g_best_f = f64::INFINITY;
    for p in &mut particles {
        let fx = f(&p.x);
        evaluations += 1;
        if fx.is_nan() {
            return Err(PsoError::ObjectiveNan);
        }
        seen.insert(discrete_key(specs, &p.x));
        p.best_f = fx;
        if fx < g_best_f {
            g_best_f = fx;
            g_best = p.x.clone();
        }
    }

    // True swarm diversity (mean distance to centroid), normalized by its
    // initial value, so adaptive schedules see genuine collapse.
    let diversity = |parts: &[RPart]| -> f64 {
        let n = parts.len();
        let mut center = vec![0.0; dim];
        for p in parts {
            for (c, &xi) in center.iter_mut().zip(&p.x) {
                *c += xi;
            }
        }
        for c in &mut center {
            *c /= n as f64;
        }
        parts
            .iter()
            .map(|p| {
                p.x.iter()
                    .zip(&center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum::<f64>()
            / n as f64
    };
    let initial_diversity = diversity(&particles).max(1e-12);

    let mut history = Vec::with_capacity(settings.max_iter);
    for gen in 0..settings.max_iter {
        let obs = SwarmObservation {
            generation: gen,
            horizon: settings.max_iter,
            diversity: (diversity(&particles) / initial_diversity).clamp(0.0, 1.0),
            improved: false,
        };
        let w = settings.inertia.weight(&obs);
        for p in &mut particles {
            for d in 0..dim {
                let (lo, hi) = bounds[d];
                let vmax = settings.velocity_clamp * (hi - lo);
                let beta1: f64 = rng.gen();
                let beta2: f64 = rng.gen();
                let mut v = w * p.v[d]
                    + settings.cognitive * beta1 * (p.best_x[d] - p.x[d])
                    + settings.social * beta2 * (g_best[d] - p.x[d]);
                v = v.clamp(-vmax, vmax);
                if specs[d].is_discrete() {
                    // The defect under study: velocities rounded to ints.
                    v = v.round();
                }
                p.v[d] = v;
                p.x[d] = (p.x[d] + v).clamp(lo, hi);
            }
            let fx = f(&p.x);
            evaluations += 1;
            if fx.is_nan() {
                return Err(PsoError::ObjectiveNan);
            }
            seen.insert(discrete_key(specs, &p.x));
            if fx < p.best_f {
                p.best_f = fx;
                p.best_x.copy_from_slice(&p.x);
            }
            if fx < g_best_f {
                g_best_f = fx;
                g_best.copy_from_slice(&p.x);
            }
        }
        history.push(g_best_f);
        if let Some(target) = settings.target_value {
            if g_best_f <= target {
                break;
            }
        }
    }

    let frozen = particles
        .iter()
        .filter(|p| {
            specs
                .iter()
                .zip(&p.v)
                .filter(|(s, _)| s.is_discrete())
                .all(|(_, &v)| v == 0.0)
        })
        .count();
    let frozen_fraction = if specs.iter().any(|s| s.is_discrete()) {
        frozen as f64 / particles.len() as f64
    } else {
        0.0
    };

    Ok(MixedPsoResult {
        best_position: g_best,
        best_value: g_best_f,
        history,
        distinct_discrete_points: seen.len(),
        evaluations,
        frozen_fraction,
    })
}

/// Distribution-attribute PSO for the discrete coordinates; continuous
/// coordinates keep the classic update.
fn distribution_pso(
    f: &mut dyn FnMut(&[f64]) -> f64,
    specs: &[VarSpec],
    settings: &PsoSettings,
) -> Result<MixedPsoResult, PsoError> {
    const MAX_CARD: usize = 512;
    for s in specs {
        if s.is_discrete() && s.cardinality() > MAX_CARD {
            return Err(PsoError::InvalidParameter(format!(
                "distribution strategy supports at most {MAX_CARD} values per attribute"
            )));
        }
    }
    let dim = specs.len();
    let mut rng = StdRng::seed_from_u64(settings.seed);

    struct DistParticle {
        // One simplex (probability vector) per discrete dim, plus scalar
        // position/velocity for continuous dims.
        dist: Vec<Vec<f64>>,
        dist_v: Vec<Vec<f64>>,
        xc: Vec<f64>,
        vc: Vec<f64>,
        best_sample: Vec<f64>,
        best_f: f64,
    }

    let card: Vec<usize> = specs.iter().map(|s| s.cardinality()).collect();
    let cont_bounds = relaxed_bounds(specs);

    let sample_point = |p: &DistParticle, rng: &mut StdRng| -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for d in 0..dim {
            if specs[d].is_discrete() {
                let dist = &p.dist[d];
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                let mut k = dist.len() - 1;
                for (i, &pi) in dist.iter().enumerate() {
                    acc += pi;
                    if u <= acc {
                        k = i;
                        break;
                    }
                }
                out[d] = specs[d].decode(k);
            } else {
                out[d] = p.xc[d];
            }
        }
        out
    };

    let normalize = |dist: &mut Vec<f64>| {
        // Floor keeps every value reachable (exploration never dies).
        let floor = 0.01 / dist.len() as f64;
        for v in dist.iter_mut() {
            *v = v.max(floor);
        }
        let s: f64 = dist.iter().sum();
        for v in dist.iter_mut() {
            *v /= s;
        }
    };

    let mut particles: Vec<DistParticle> = (0..settings.swarm_size)
        .map(|_| {
            let mut dist = Vec::with_capacity(dim);
            let mut dist_v = Vec::with_capacity(dim);
            let mut xc = vec![0.0; dim];
            let mut vc = vec![0.0; dim];
            for d in 0..dim {
                if specs[d].is_discrete() {
                    // Random Dirichlet-ish start.
                    let mut p: Vec<f64> = (0..card[d]).map(|_| rng.gen::<f64>() + 0.1).collect();
                    let s: f64 = p.iter().sum();
                    for v in &mut p {
                        *v /= s;
                    }
                    dist.push(p);
                    dist_v.push(vec![0.0; card[d]]);
                } else {
                    dist.push(Vec::new());
                    dist_v.push(Vec::new());
                    let (lo, hi) = cont_bounds[d];
                    xc[d] = rng.gen_range(lo..=hi);
                    vc[d] = rng.gen_range(-(hi - lo)..=(hi - lo)) * settings.velocity_clamp;
                }
            }
            DistParticle {
                dist,
                dist_v,
                xc,
                vc,
                best_sample: Vec::new(),
                best_f: f64::INFINITY,
            }
        })
        .collect();

    let mut g_best: Vec<f64> = Vec::new();
    let mut g_best_f = f64::INFINITY;
    let mut seen: BTreeSet<Vec<i64>> = BTreeSet::new();
    let mut evaluations = 0usize;
    let mut history = Vec::with_capacity(settings.max_iter);

    // One-hot target for a discrete dim from a concrete sampled value.
    let one_hot_index = |d: usize, value: f64| -> usize {
        match specs[d] {
            VarSpec::Integer { lo, .. } => (value as i64 - lo) as usize,
            VarSpec::Categorical { .. } => value as usize,
            VarSpec::Continuous { .. } => unreachable!(),
        }
    };

    // Diversity for the distribution encoding: mean normalized entropy of
    // the attribute distributions (1 = uniform sampling, 0 = collapsed).
    let dist_diversity = |parts: &[DistParticle]| -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for p in parts {
            for d in 0..dim {
                if !specs[d].is_discrete() || card[d] < 2 {
                    continue;
                }
                let h: f64 = p.dist[d]
                    .iter()
                    .filter(|&&q| q > 0.0)
                    .map(|&q| -q * q.ln())
                    .sum();
                total += h / (card[d] as f64).ln();
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            total / count as f64
        }
    };

    for gen in 0..settings.max_iter {
        let obs = SwarmObservation {
            generation: gen,
            horizon: settings.max_iter,
            diversity: dist_diversity(&particles).clamp(0.0, 1.0),
            improved: false,
        };
        let w = match settings.inertia {
            InertiaSchedule::AdaptiveDiversity { .. } => settings.inertia.weight(&obs),
            other => other.weight(&obs),
        };
        for p in &mut particles {
            let x = sample_point(p, &mut rng);
            let fx = f(&x);
            evaluations += 1;
            if fx.is_nan() {
                return Err(PsoError::ObjectiveNan);
            }
            seen.insert(discrete_key(specs, &x));
            if fx < p.best_f {
                p.best_f = fx;
                p.best_sample = x.clone();
            }
            if fx < g_best_f {
                g_best_f = fx;
                g_best = x.clone();
            }
        }
        history.push(g_best_f);
        if let Some(target) = settings.target_value {
            if g_best_f <= target {
                break;
            }
        }

        // Velocity/position updates toward personal and global bests.
        for p in 0..particles.len() {
            let (beta1, beta2): (f64, f64) = (rng.gen(), rng.gen());
            let pb = particles[p].best_sample.clone();
            for d in 0..dim {
                if specs[d].is_discrete() {
                    let ki = one_hot_index(d, pb[d]);
                    let kg = one_hot_index(d, g_best[d]);
                    let part = &mut particles[p];
                    for k in 0..card[d] {
                        let target_i = if k == ki { 1.0 } else { 0.0 };
                        let target_g = if k == kg { 1.0 } else { 0.0 };
                        part.dist_v[d][k] = w * part.dist_v[d][k]
                            + settings.cognitive * beta1 * (target_i - part.dist[d][k])
                            + settings.social * beta2 * (target_g - part.dist[d][k]);
                        part.dist[d][k] += part.dist_v[d][k];
                    }
                    normalize(&mut part.dist[d]);
                } else {
                    let (lo, hi) = cont_bounds[d];
                    let vmax = settings.velocity_clamp * (hi - lo);
                    let part = &mut particles[p];
                    part.vc[d] = w * part.vc[d]
                        + settings.cognitive * beta1 * (pb[d] - part.xc[d])
                        + settings.social * beta2 * (g_best[d] - part.xc[d]);
                    part.vc[d] = part.vc[d].clamp(-vmax, vmax);
                    part.xc[d] = (part.xc[d] + part.vc[d]).clamp(lo, hi);
                }
            }
        }
    }

    Ok(MixedPsoResult {
        best_position: g_best,
        best_value: g_best_f,
        history,
        distinct_discrete_points: seen.len(),
        evaluations,
        frozen_fraction: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shifted integer quadratic: min at x = (3, -2), value 0.
    fn int_quadratic(x: &[f64]) -> f64 {
        (x[0] - 3.0).powi(2) + (x[1] + 2.0).powi(2)
    }

    fn int_specs() -> Vec<VarSpec> {
        vec![
            VarSpec::Integer { lo: -10, hi: 10 },
            VarSpec::Integer { lo: -10, hi: 10 },
        ]
    }

    fn settings(seed: u64) -> PsoSettings {
        PsoSettings {
            seed,
            max_iter: 120,
            swarm_size: 20,
            ..Default::default()
        }
    }

    #[test]
    fn rounding_solves_small_integer_quadratic() {
        let r = minimize_mixed(
            int_quadratic,
            &int_specs(),
            DiscreteStrategy::Rounding,
            &settings(1),
        )
        .unwrap();
        assert_eq!(r.best_value, 0.0);
        assert_eq!(r.best_position, vec![3.0, -2.0]);
    }

    #[test]
    fn distribution_solves_small_integer_quadratic() {
        // Sampling-based search needs a longer budget than the lattice
        // walk to pin the exact optimum among 441 assignments.
        let s = PsoSettings {
            max_iter: 400,
            ..settings(2)
        };
        let r = minimize_mixed(
            int_quadratic,
            &int_specs(),
            DiscreteStrategy::Distribution,
            &s,
        )
        .unwrap();
        assert_eq!(r.best_value, 0.0);
        assert_eq!(r.best_position, vec![3.0, -2.0]);
        assert_eq!(r.frozen_fraction, 0.0);
    }

    #[test]
    fn discrete_positions_are_exact_integers() {
        for strat in [DiscreteStrategy::Rounding, DiscreteStrategy::Distribution] {
            let r = minimize_mixed(int_quadratic, &int_specs(), strat, &settings(3)).unwrap();
            for v in &r.best_position {
                assert_eq!(v.fract(), 0.0);
            }
        }
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // min (n − 4)² + (x − 0.25)² over n ∈ {0..10}, x ∈ [0, 1].
        let f = |z: &[f64]| (z[0] - 4.0).powi(2) + (z[1] - 0.25).powi(2);
        let specs = vec![
            VarSpec::Integer { lo: 0, hi: 10 },
            VarSpec::Continuous { lo: 0.0, hi: 1.0 },
        ];
        for strat in [DiscreteStrategy::Rounding, DiscreteStrategy::Distribution] {
            let r = minimize_mixed(f, &specs, strat, &settings(4)).unwrap();
            assert_eq!(r.best_position[0], 4.0, "{strat:?}");
            assert!(
                (r.best_position[1] - 0.25).abs() < 0.05,
                "{strat:?}: {:?}",
                r.best_position
            );
        }
    }

    #[test]
    fn categorical_variable_selected_correctly() {
        // Category 2 of 5 is the unique minimum.
        let f = |z: &[f64]| if z[0] == 2.0 { 0.0 } else { 1.0 + z[0] };
        let specs = vec![VarSpec::Categorical { cardinality: 5 }];
        for strat in [DiscreteStrategy::Rounding, DiscreteStrategy::Distribution] {
            let r = minimize_mixed(f, &specs, strat, &settings(5)).unwrap();
            assert_eq!(r.best_position[0], 2.0, "{strat:?}");
        }
    }

    #[test]
    fn rounding_velocities_freeze_particles_but_distribution_never_does() {
        // §II-A-2's premature stagnation: with decaying inertia, rounded
        // velocities collapse to exactly 0 and particles freeze on their
        // lattice points. The distribution encoding keeps sampling.
        let f = |z: &[f64]| {
            let (a, b) = (z[0], z[1]);
            (a * 0.3).sin() * 3.0 + (b * 0.4).cos() * 3.0 + 0.01 * (a * a + b * b)
        };
        let specs = vec![
            VarSpec::Integer { lo: -20, hi: 20 },
            VarSpec::Integer { lo: -20, hi: 20 },
        ];
        let s = PsoSettings {
            max_iter: 200,
            swarm_size: 15,
            stagnation_window: 0,
            inertia: crate::inertia::InertiaSchedule::LinearDecay {
                start: 0.9,
                end: 0.2,
            },
            ..settings(6)
        };
        let rr = minimize_mixed(f, &specs, DiscreteStrategy::Rounding, &s).unwrap();
        let rd = minimize_mixed(f, &specs, DiscreteStrategy::Distribution, &s).unwrap();
        assert!(
            rr.frozen_fraction > 0.3,
            "rounding frozen fraction only {}",
            rr.frozen_fraction
        );
        assert_eq!(rd.frozen_fraction, 0.0);
    }

    #[test]
    fn validation_errors() {
        let f = |_: &[f64]| 0.0;
        assert!(minimize_mixed(f, &[], DiscreteStrategy::Rounding, &settings(0)).is_err());
        let bad = vec![VarSpec::Integer { lo: 5, hi: 1 }];
        assert!(minimize_mixed(f, &bad, DiscreteStrategy::Rounding, &settings(0)).is_err());
        let bad = vec![VarSpec::Categorical { cardinality: 0 }];
        assert!(minimize_mixed(f, &bad, DiscreteStrategy::Distribution, &settings(0)).is_err());
        let huge = vec![VarSpec::Integer { lo: 0, hi: 100_000 }];
        assert!(minimize_mixed(f, &huge, DiscreteStrategy::Distribution, &settings(0)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = minimize_mixed(
            int_quadratic,
            &int_specs(),
            DiscreteStrategy::Distribution,
            &settings(9),
        )
        .unwrap();
        let b = minimize_mixed(
            int_quadratic,
            &int_specs(),
            DiscreteStrategy::Distribution,
            &settings(9),
        )
        .unwrap();
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.evaluations, b.evaluations);
    }
}
