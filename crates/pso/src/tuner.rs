//! Hyperparameter tuning harness — Phase 2 of the RCR stack.
//!
//! "Ultimately, the final rendition of the MSY3I is dictated by the PSO
//! deployment; the PSO determines the reduction in the number of
//! hyperparameters and the tuning thereof" (§II-B-3). This module wraps
//! [`crate::discrete::minimize_mixed`] in a named-parameter interface so a
//! model-training crate can expose its hyperparameters without knowing
//! anything about swarms.

use crate::discrete::{minimize_mixed, DiscreteStrategy, MixedPsoResult, VarSpec};
use crate::swarm::PsoSettings;
use crate::PsoError;
use std::collections::BTreeMap;

/// A named hyperparameter with its search range.
#[derive(Debug, Clone)]
pub struct Hyperparameter {
    /// Name used in the result map (e.g. `"learning_rate"`).
    pub name: String,
    /// Search specification.
    pub spec: VarSpec,
}

impl Hyperparameter {
    /// A continuous hyperparameter.
    pub fn continuous(name: &str, lo: f64, hi: f64) -> Self {
        Hyperparameter {
            name: name.to_owned(),
            spec: VarSpec::Continuous { lo, hi },
        }
    }

    /// An integer hyperparameter.
    pub fn integer(name: &str, lo: i64, hi: i64) -> Self {
        Hyperparameter {
            name: name.to_owned(),
            spec: VarSpec::Integer { lo, hi },
        }
    }

    /// A categorical hyperparameter.
    pub fn categorical(name: &str, cardinality: usize) -> Self {
        Hyperparameter {
            name: name.to_owned(),
            spec: VarSpec::Categorical { cardinality },
        }
    }
}

/// A concrete assignment of hyperparameter values, keyed by name.
pub type Assignment = BTreeMap<String, f64>;

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// Best assignment found.
    pub best: Assignment,
    /// Fitness (lower is better) of the best assignment.
    pub best_fitness: f64,
    /// Raw PSO result (history, exploration metrics).
    pub raw: MixedPsoResult,
}

/// Tunes hyperparameters by minimizing `fitness` (lower is better).
///
/// # Errors
/// * [`PsoError::InvalidParameter`] for an empty parameter list or
///   duplicate names.
/// * Propagates PSO errors.
pub fn tune(
    params: &[Hyperparameter],
    mut fitness: impl FnMut(&Assignment) -> f64,
    strategy: DiscreteStrategy,
    settings: &PsoSettings,
) -> Result<TuningResult, PsoError> {
    if params.is_empty() {
        return Err(PsoError::InvalidParameter(
            "no hyperparameters to tune".into(),
        ));
    }
    {
        let mut names: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != params.len() {
            return Err(PsoError::InvalidParameter(
                "duplicate hyperparameter names".into(),
            ));
        }
    }
    let specs: Vec<VarSpec> = params.iter().map(|p| p.spec).collect();
    let to_assignment = |x: &[f64]| -> Assignment {
        params
            .iter()
            .zip(x)
            .map(|(p, &v)| (p.name.clone(), v))
            .collect()
    };
    let raw = minimize_mixed(|x| fitness(&to_assignment(x)), &specs, strategy, settings)?;
    let best = to_assignment(&raw.best_position);
    Ok(TuningResult {
        best,
        best_fitness: raw.best_value,
        raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> PsoSettings {
        PsoSettings {
            swarm_size: 15,
            max_iter: 80,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn tunes_named_parameters() {
        let params = vec![
            Hyperparameter::continuous("lr", 0.0, 1.0),
            Hyperparameter::integer("layers", 1, 8),
            Hyperparameter::categorical("activation", 3),
        ];
        // Optimum: lr = 0.3, layers = 4, activation = 1.
        let fitness = |a: &Assignment| {
            (a["lr"] - 0.3).powi(2)
                + (a["layers"] - 4.0).powi(2)
                + if a["activation"] == 1.0 { 0.0 } else { 1.0 }
        };
        let r = tune(
            &params,
            fitness,
            DiscreteStrategy::Distribution,
            &settings(),
        )
        .unwrap();
        assert_eq!(r.best["layers"], 4.0);
        assert_eq!(r.best["activation"], 1.0);
        assert!((r.best["lr"] - 0.3).abs() < 0.05, "lr = {}", r.best["lr"]);
        assert!(r.best_fitness < 0.01);
    }

    #[test]
    fn both_strategies_work() {
        let params = vec![Hyperparameter::integer("n", 0, 20)];
        let fitness = |a: &Assignment| (a["n"] - 13.0).abs();
        for strat in [DiscreteStrategy::Rounding, DiscreteStrategy::Distribution] {
            let r = tune(&params, fitness, strat, &settings()).unwrap();
            assert_eq!(r.best["n"], 13.0, "{strat:?}");
        }
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        let fitness = |_: &Assignment| 0.0;
        assert!(tune(&[], fitness, DiscreteStrategy::Rounding, &settings()).is_err());
        let dup = vec![
            Hyperparameter::integer("x", 0, 1),
            Hyperparameter::integer("x", 0, 1),
        ];
        assert!(tune(&dup, |_| 0.0, DiscreteStrategy::Rounding, &settings()).is_err());
    }

    #[test]
    fn assignment_contains_all_names() {
        let params = vec![
            Hyperparameter::continuous("a", 0.0, 1.0),
            Hyperparameter::integer("b", 0, 5),
        ];
        let r = tune(&params, |_| 1.0, DiscreteStrategy::Rounding, &settings()).unwrap();
        assert!(r.best.contains_key("a") && r.best.contains_key("b"));
    }
}
