use std::fmt;

/// Errors produced by the PSO kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PsoError {
    /// A search-space bound was malformed (`lo > hi`, NaN, or empty).
    InvalidBounds(String),
    /// A solver setting was outside its documented domain.
    InvalidParameter(String),
    /// The objective returned NaN at a feasible point.
    ObjectiveNan,
}

impl fmt::Display for PsoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsoError::InvalidBounds(msg) => write!(f, "invalid bounds: {msg}"),
            PsoError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            PsoError::ObjectiveNan => write!(f, "objective returned NaN at a feasible point"),
        }
    }
}

impl std::error::Error for PsoError {}
