//! Particle Swarm Optimization with adaptive inertia weighting and
//! discrete-variable support.
//!
//! Implements the paper's Eqs. 1–2 —
//!
//! ```text
//! x_i(k+1) = x_i(k) + v_i(k+1)
//! v_i(k+1) = ι(k)·v_i(k) + α₁[β₁(I_i − x_i(k))] + α₂[β₂(G − x_i(k))]
//! ```
//!
//! — together with the three implementation concerns §II-A/§III dwell on:
//!
//! * **Inertia schedules** ([`inertia::InertiaSchedule`]): constant,
//!   linearly decaying, and the adaptive diversity-driven weighting that
//!   the paper's "M-GNU-O" layer supplies to rescue particles from
//!   premature stagnation.
//! * **Discretization strategies** ([`discrete`]): naive velocity/position
//!   rounding (which "creates an artificial paradigm, wherein particles
//!   may stagnate prematurely") versus the distribution-over-values
//!   attribute encoding of Strasser et al. that "maximally preserves the
//!   original semantics".
//! * **Stagnation detection and dispersion** ([`swarm`]): velocity
//!   collapse is detected and the worst particles are re-scattered
//!   (Worasucheep-style) rather than left trapped at local optima.
//!
//! # Example
//!
//! ```
//! use rcr_pso::benchfn::BenchFunction;
//! use rcr_pso::swarm::{PsoSettings, Swarm};
//!
//! # fn main() -> Result<(), rcr_pso::PsoError> {
//! let f = BenchFunction::Sphere;
//! let settings = PsoSettings { seed: 7, ..PsoSettings::default() };
//! let result = Swarm::minimize(|x| f.eval(x), &f.bounds(2), &settings)?;
//! assert!(result.best_value < 1e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchfn;
pub mod de;
pub mod discrete;
pub mod inertia;
pub mod swarm;
pub mod tuner;

mod error;

pub use error::PsoError;
