//! Inertia weighting schedules `ι(k)` for the velocity update (Eq. 2).
//!
//! §II-A-2: naive discretization leads to "a nongraceful degradation of
//! the particle inertia ι(k)"; "certain techniques, such as increasing the
//! inertia (e.g., weighting the distance from the particle's local
//! optimum) allow the involved particles to progress past their current
//! local optimum instead of stagnating prematurely; these techniques beget
//! calculating varying inertial weights." The adaptive schedule here is
//! the one the RCR stack's Phase-3 kernel drives: the weight rises when
//! swarm diversity collapses and decays when the swarm is healthy.

/// A rule for computing the inertia weight at each generation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum InertiaSchedule {
    /// Fixed weight (classic PSO, typically 0.7–0.9).
    Constant(f64),
    /// Linear decay from `start` at generation 0 to `end` at the horizon —
    /// the standard Shi–Eberhart schedule.
    LinearDecay {
        /// Weight at generation 0.
        start: f64,
        /// Weight at the final generation.
        end: f64,
    },
    /// Diversity-adaptive weighting: interpolates between `min` (healthy,
    /// diverse swarm → favor exploitation) and `max` (collapsed swarm →
    /// boost inertia so particles can escape their local optima). The
    /// interpolation coefficient is the *normalized diversity deficit*,
    /// the closed-form solution of the 1-D convex penalty problem
    /// `min_w (w − min)² s.t. w ≥ max − diversity·(max − min)`.
    AdaptiveDiversity {
        /// Weight used when the swarm is fully diverse.
        min: f64,
        /// Weight used when the swarm has fully collapsed.
        max: f64,
    },
}

/// Swarm state observed by adaptive schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmObservation {
    /// Current generation index.
    pub generation: usize,
    /// Generation horizon (`max_iter`).
    pub horizon: usize,
    /// Normalized swarm diversity in `[0, 1]`: mean pairwise-to-center
    /// distance relative to its initial value (clamped).
    pub diversity: f64,
    /// Whether the global best improved last generation.
    pub improved: bool,
}

impl InertiaSchedule {
    /// Computes `ι(k)` for the observed swarm state.
    pub fn weight(&self, obs: &SwarmObservation) -> f64 {
        match *self {
            InertiaSchedule::Constant(w) => w,
            InertiaSchedule::LinearDecay { start, end } => {
                if obs.horizon == 0 {
                    return end;
                }
                let t = (obs.generation as f64 / obs.horizon as f64).clamp(0.0, 1.0);
                start + (end - start) * t
            }
            InertiaSchedule::AdaptiveDiversity { min, max } => {
                // Deficit 0 (fully diverse) → min; deficit 1 (collapsed) → max.
                let deficit = (1.0 - obs.diversity).clamp(0.0, 1.0);
                min + (max - min) * deficit
            }
        }
    }

    /// Validates schedule parameters.
    ///
    /// # Errors
    /// Returns a message describing the violated condition.
    pub fn validate(&self) -> Result<(), String> {
        let ok = |w: f64| w.is_finite() && (0.0..2.0).contains(&w);
        match *self {
            InertiaSchedule::Constant(w) => {
                if ok(w) {
                    Ok(())
                } else {
                    Err(format!("constant inertia {w} outside [0, 2)"))
                }
            }
            InertiaSchedule::LinearDecay { start, end } => {
                if ok(start) && ok(end) {
                    Ok(())
                } else {
                    Err(format!(
                        "linear decay weights ({start}, {end}) outside [0, 2)"
                    ))
                }
            }
            InertiaSchedule::AdaptiveDiversity { min, max } => {
                if ok(min) && ok(max) && min <= max {
                    Ok(())
                } else {
                    Err(format!("adaptive weights ({min}, {max}) invalid"))
                }
            }
        }
    }
}

impl Default for InertiaSchedule {
    fn default() -> Self {
        InertiaSchedule::LinearDecay {
            start: 0.9,
            end: 0.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(gen: usize, horizon: usize, diversity: f64) -> SwarmObservation {
        SwarmObservation {
            generation: gen,
            horizon,
            diversity,
            improved: false,
        }
    }

    #[test]
    fn constant_is_constant() {
        let s = InertiaSchedule::Constant(0.7);
        assert_eq!(s.weight(&obs(0, 100, 1.0)), 0.7);
        assert_eq!(s.weight(&obs(99, 100, 0.0)), 0.7);
    }

    #[test]
    fn linear_decay_interpolates() {
        let s = InertiaSchedule::LinearDecay {
            start: 0.9,
            end: 0.4,
        };
        assert!((s.weight(&obs(0, 100, 1.0)) - 0.9).abs() < 1e-12);
        assert!((s.weight(&obs(50, 100, 1.0)) - 0.65).abs() < 1e-12);
        assert!((s.weight(&obs(100, 100, 1.0)) - 0.4).abs() < 1e-12);
        // Zero horizon degenerates to the end weight.
        assert_eq!(s.weight(&obs(0, 0, 1.0)), 0.4);
    }

    #[test]
    fn adaptive_raises_inertia_when_diversity_collapses() {
        let s = InertiaSchedule::AdaptiveDiversity { min: 0.4, max: 0.9 };
        let healthy = s.weight(&obs(10, 100, 1.0));
        let collapsed = s.weight(&obs(10, 100, 0.0));
        assert!((healthy - 0.4).abs() < 1e-12);
        assert!((collapsed - 0.9).abs() < 1e-12);
        let mid = s.weight(&obs(10, 100, 0.5));
        assert!((mid - 0.65).abs() < 1e-12);
    }

    #[test]
    fn adaptive_clamps_out_of_range_diversity() {
        let s = InertiaSchedule::AdaptiveDiversity { min: 0.4, max: 0.9 };
        assert_eq!(s.weight(&obs(0, 10, 2.0)), 0.4);
        assert_eq!(s.weight(&obs(0, 10, -1.0)), 0.9);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(InertiaSchedule::Constant(0.7).validate().is_ok());
        assert!(InertiaSchedule::Constant(2.5).validate().is_err());
        assert!(InertiaSchedule::Constant(f64::NAN).validate().is_err());
        assert!(InertiaSchedule::LinearDecay {
            start: 0.9,
            end: -0.1
        }
        .validate()
        .is_err());
        assert!(InertiaSchedule::AdaptiveDiversity { min: 0.9, max: 0.4 }
            .validate()
            .is_err());
    }
}
