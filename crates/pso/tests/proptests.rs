//! Property-based invariants of the stochastic-search kernels.

use proptest::prelude::*;
use rcr_pso::de::{self, DeSettings};
use rcr_pso::discrete::{minimize_mixed, DiscreteStrategy, VarSpec};
use rcr_pso::swarm::{PsoSettings, Swarm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pso_result_always_within_bounds(
        centers in prop::collection::vec(-3.0f64..3.0, 1..4),
        width in 0.5f64..4.0,
        seed in 0u64..1000,
    ) {
        let bounds: Vec<(f64, f64)> =
            centers.iter().map(|&c| (c - width, c + width)).collect();
        let settings = PsoSettings { swarm_size: 8, max_iter: 30, seed, ..Default::default() };
        let target = centers.clone();
        let r = Swarm::minimize(
            move |x| x.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum(),
            &bounds,
            &settings,
        )
        .unwrap();
        for (x, (lo, hi)) in r.best_position.iter().zip(&bounds) {
            prop_assert!(x >= lo && x <= hi);
        }
        // The optimum (the box center) is reachable, so PSO should land
        // close after 30 generations on these tiny problems.
        prop_assert!(r.best_value < width * width);
        // History is the running best: monotone non-increasing.
        for w in r.history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn de_result_always_within_bounds(
        width in 0.5f64..4.0,
        seed in 0u64..1000,
    ) {
        let bounds = vec![(-width, width); 3];
        let settings = DeSettings { population: 8, max_iter: 30, seed, ..Default::default() };
        let r = de::minimize(|x| x.iter().map(|v| v * v).sum(), &bounds, &settings).unwrap();
        for (x, (lo, hi)) in r.best_position.iter().zip(&bounds) {
            prop_assert!(x >= lo && x <= hi);
        }
        prop_assert_eq!(r.history.len(), r.iterations);
    }

    #[test]
    fn discrete_results_are_exact_lattice_points(
        lo in -8i64..0,
        hi in 1i64..8,
        seed in 0u64..200,
    ) {
        let specs = vec![VarSpec::Integer { lo, hi }; 2];
        let settings = PsoSettings { swarm_size: 6, max_iter: 20, seed, ..Default::default() };
        for strat in [DiscreteStrategy::Rounding, DiscreteStrategy::Distribution] {
            let r = minimize_mixed(
                |x| x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum(),
                &specs,
                strat,
                &settings,
            )
            .unwrap();
            for v in &r.best_position {
                prop_assert_eq!(v.fract(), 0.0);
                prop_assert!(*v >= lo as f64 && *v <= hi as f64);
            }
            prop_assert!(r.frozen_fraction >= 0.0 && r.frozen_fraction <= 1.0);
        }
    }
}
