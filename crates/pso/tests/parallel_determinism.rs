//! Parallel PSO must be a pure performance knob: for a fixed seed, the
//! optimizer's entire observable output — best point, best value, the
//! per-iteration history, evaluation and dispersion counters — must be
//! bit-identical for every worker count. This holds because each particle
//! owns an RNG stream derived from `(seed, index)` and all best-so-far
//! reductions run serially in particle order.

use rcr_pso::swarm::{PsoResult, PsoSettings, Swarm};

fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|&v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
            .sum::<f64>()
}

fn run(workers: usize, seed: u64) -> PsoResult {
    let settings = PsoSettings {
        swarm_size: 24,
        max_iter: 120,
        seed,
        workers,
        ..Default::default()
    };
    let bounds = vec![(-5.12, 5.12); 4];
    Swarm::minimize(rastrigin, &bounds, &settings).unwrap()
}

fn assert_identical(a: &PsoResult, b: &PsoResult, label: &str) {
    assert_eq!(
        a.best_value.to_bits(),
        b.best_value.to_bits(),
        "{label}: best_value"
    );
    assert_eq!(a.best_position.len(), b.best_position.len(), "{label}: dim");
    for (i, (x, y)) in a.best_position.iter().zip(&b.best_position).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: best_position[{i}]");
    }
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(a.evaluations, b.evaluations, "{label}: evaluations");
    assert_eq!(
        a.dispersion_events, b.dispersion_events,
        "{label}: dispersion_events"
    );
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: history[{i}]");
    }
}

#[test]
fn minimize_is_bit_identical_across_worker_counts() {
    for seed in [0u64, 7, 42] {
        let serial = run(1, seed);
        for workers in [2usize, 4, 7] {
            let parallel = run(workers, seed);
            assert_identical(
                &serial,
                &parallel,
                &format!("seed {seed}, {workers} workers"),
            );
        }
    }
}

#[test]
fn worker_zero_resolves_without_changing_results() {
    // workers = 0 means "auto" (RCR_WORKERS env var, else serial); with
    // the variable unset in the test environment it must match serial.
    if std::env::var_os("RCR_WORKERS").is_some() {
        return; // environment pins a count; the equality below may still
                // hold but the test's premise doesn't.
    }
    assert_identical(&run(0, 13), &run(1, 13), "auto vs serial");
}
