//! Convex optimization solvers for the RCR relaxation chain.
//!
//! Implements every solver class the paper's §IV-C walks through:
//!
//! * [`qp`] — an OSQP-style ADMM solver for quadratic programs with
//!   two-sided linear constraints `l ≤ Ax ≤ u`.
//! * [`qcqp`] — a log-barrier interior-point method for the convex QCQP of
//!   Eq. 7 (quadratic objective, quadratic inequality constraints, linear
//!   equalities), with an explicit convexity gate: indefinite `P_i` are
//!   rejected, mirroring the paper's "two envelopes" classification.
//! * [`sdp`] — a conic-ADMM semidefinite programming solver
//!   (`min ⟨C,X⟩ s.t. A(X)=b, X ⪰ 0`) built on eigenvalue PSD projection.
//! * [`rankmin`] — the paper's Eq. 8 → Eq. 9 → Eq. 10 pipeline: the
//!   nonconvex Rank Minimization Problem relaxed to Trace Minimization and
//!   solved as an SDP.
//! * [`trust_region`] — a Moré–Sorensen exact trust-region subproblem
//!   solver (the QCQP special case the paper uses for Hessian proxies).
//! * [`quasi_newton`] — BFGS and L-BFGS with Armijo backtracking, the
//!   Hessian-proxy machinery referenced in §IV-C.
//! * [`envelope`] — convex under-estimators and concave over-estimators
//!   (convex/concave envelopes, McCormick bilinear relaxation) used by the
//!   MINLP branch-and-bound.
//! * [`warm`] — a warm-start and solution-reuse cache for the three
//!   solver families above: fingerprints instances, keeps a bounded
//!   deterministic LRU of prior solutions and factorizations, and
//!   re-solves drifting instances in a handful of iterations.
//!
//! # Example
//!
//! ```
//! use rcr_convex::qp::{QpProblem, QpSettings};
//! use rcr_linalg::Matrix;
//!
//! # fn main() -> Result<(), rcr_convex::ConvexError> {
//! // minimize ½xᵀx - [1,1]ᵀx  subject to 0 ≤ x ≤ 0.5
//! let p = Matrix::identity(2);
//! let a = Matrix::identity(2);
//! let prob = QpProblem::new(p, vec![-1.0, -1.0], a, vec![0.0, 0.0], vec![0.5, 0.5])?;
//! let sol = prob.solve(&QpSettings::default())?;
//! assert!((sol.x[0] - 0.5).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
mod error;
pub mod lasserre;
pub mod qcqp;
pub mod qp;
pub mod quasi_newton;
pub mod rankmin;
pub mod sdp;
pub mod trust_region;
pub mod warm;

pub use error::ConvexError;
