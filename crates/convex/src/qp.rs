//! An OSQP-style ADMM solver for convex quadratic programs.
//!
//! Standard form:
//!
//! ```text
//! minimize   ½ xᵀ P x + qᵀ x
//! subject to l ≤ A x ≤ u
//! ```
//!
//! with `P ⪰ 0`. Equality constraints are rows with `l_i = u_i`; one-sided
//! constraints use ±[`QP_INF`]. The splitting, residuals and stopping rule
//! follow the OSQP paper (Stellato et al.), scaled down: the KKT matrix is
//! factorized once by Cholesky and reused every iteration.

use crate::ConvexError;
use rcr_linalg::{vector, Cholesky, Matrix};

/// The "infinity" bound understood by the QP solver.
pub const QP_INF: f64 = 1e30;

/// Convergence is checked every iteration this early in the run, because
/// warm-started solves routinely finish in a handful of iterations; past
/// the window the check falls back to every 10 iterations to save the
/// residual matvecs on long cold solves.
const EARLY_CHECK_WINDOW: usize = 32;

/// A warm-start seed for the ADMM iteration: the primal iterate `x`, the
/// constraint duals `y` and the auxiliary (projected) variable `z` of a
/// previous solve of a nearby problem. Seeding from the previous solution
/// of a drifting instance typically cuts the iteration count from
/// hundreds to single digits.
#[derive(Debug, Clone)]
pub struct QpWarmStart {
    /// Primal seed (length `n`).
    pub x: Vec<f64>,
    /// Dual seed (length `m`).
    pub y: Vec<f64>,
    /// Auxiliary-variable seed (length `m`); usually the projected `A x`
    /// of the previous solution.
    pub z: Vec<f64>,
}

impl QpWarmStart {
    /// Builds a warm start from a previous [`QpSolution`] of a problem
    /// with the same shape, reconstructing `z` as the projection of the
    /// cached `A x` onto the new bounds.
    pub fn from_solution(problem: &QpProblem, sol: &QpSolution) -> Result<Self, ConvexError> {
        let ax = problem.a.matvec(&sol.x)?;
        let z = ax
            .iter()
            .zip(problem.l.iter().zip(&problem.u))
            .map(|(v, (lo, hi))| v.clamp(*lo, *hi))
            .collect();
        Ok(QpWarmStart {
            x: sol.x.clone(),
            y: sol.y.clone(),
            z,
        })
    }
}

/// Solver settings.
#[derive(Debug, Clone)]
pub struct QpSettings {
    /// ADMM penalty parameter ρ.
    pub rho: f64,
    /// Regularization parameter σ added to `P`.
    pub sigma: f64,
    /// Over-relaxation parameter α ∈ (0, 2).
    pub alpha: f64,
    /// Maximum ADMM iterations.
    pub max_iter: usize,
    /// Absolute tolerance for primal/dual residuals.
    pub eps_abs: f64,
    /// Relative tolerance for primal/dual residuals.
    pub eps_rel: f64,
}

impl Default for QpSettings {
    fn default() -> Self {
        QpSettings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            max_iter: 20_000,
            eps_abs: 1e-7,
            eps_rel: 1e-7,
        }
    }
}

/// Solution of a QP.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Dual variables for the constraint rows.
    pub y: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// ADMM iterations used.
    pub iterations: usize,
    /// Final primal residual `‖Ax − z‖∞`.
    pub primal_residual: f64,
    /// Final dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual_residual: f64,
}

/// A convex QP in OSQP standard form.
#[derive(Debug, Clone)]
pub struct QpProblem {
    p: Matrix,
    q: Vec<f64>,
    a: Matrix,
    l: Vec<f64>,
    u: Vec<f64>,
}

impl QpProblem {
    /// Builds a problem, validating shapes, bound ordering and symmetry of
    /// `P` (PSD-ness is certified later, cheaply, by the KKT Cholesky).
    ///
    /// # Errors
    /// * [`ConvexError::DimensionMismatch`] on inconsistent sizes.
    /// * [`ConvexError::InvalidParameter`] when some `l_i > u_i`.
    /// * [`ConvexError::NotFinite`] for NaN entries (±[`QP_INF`] is fine).
    /// * [`ConvexError::NotConvex`] when `P` is visibly asymmetric.
    pub fn new(
        p: Matrix,
        q: Vec<f64>,
        a: Matrix,
        l: Vec<f64>,
        u: Vec<f64>,
    ) -> Result<Self, ConvexError> {
        let n = q.len();
        let m = l.len();
        if p.shape() != (n, n) {
            return Err(ConvexError::DimensionMismatch(format!(
                "P is {:?}, expected {n}x{n}",
                p.shape()
            )));
        }
        if a.shape() != (m, n) {
            return Err(ConvexError::DimensionMismatch(format!(
                "A is {:?}, expected {m}x{n}",
                a.shape()
            )));
        }
        if u.len() != m {
            return Err(ConvexError::DimensionMismatch(format!(
                "u has {} entries, expected {m}",
                u.len()
            )));
        }
        if !p.is_finite() || !a.is_finite() || q.iter().any(|v| v.is_nan()) {
            return Err(ConvexError::NotFinite);
        }
        if l.iter().any(|v| v.is_nan()) || u.iter().any(|v| v.is_nan()) {
            return Err(ConvexError::NotFinite);
        }
        if l.iter().zip(&u).any(|(lo, hi)| lo > hi) {
            return Err(ConvexError::InvalidParameter("some l_i > u_i".into()));
        }
        if !p.is_symmetric(1e-8 * p.max_abs().max(1.0)) {
            return Err(ConvexError::NotConvex("P must be symmetric".into()));
        }
        Ok(QpProblem { p, q, a, l, u })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    // Internal accessors for the warm-start layer (fingerprinting needs
    // to read the raw data without widening the public API).
    pub(crate) fn p(&self) -> &Matrix {
        &self.p
    }
    pub(crate) fn q(&self) -> &[f64] {
        &self.q
    }
    pub(crate) fn a(&self) -> &Matrix {
        &self.a
    }
    pub(crate) fn l(&self) -> &[f64] {
        &self.l
    }
    pub(crate) fn u(&self) -> &[f64] {
        &self.u
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.l.len()
    }

    /// Objective value `½xᵀPx + qᵀx`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        0.5 * self.p.quadratic_form(x).unwrap_or(f64::NAN) + vector::dot(&self.q, x)
    }

    /// Solves the QP by ADMM from a cold (all-zero) start.
    ///
    /// # Errors
    /// * [`ConvexError::NotConvex`] when the regularized KKT matrix is not
    ///   positive definite (indefinite `P`).
    /// * [`ConvexError::NonConvergence`] when the iteration budget runs out.
    pub fn solve(&self, settings: &QpSettings) -> Result<QpSolution, ConvexError> {
        self.solve_with(settings, None, None)
    }

    /// Solves the QP by ADMM, seeding the iteration from `warm`.
    ///
    /// The result satisfies the same stopping tolerance as a cold
    /// [`QpProblem::solve`]; only the iteration count (and which of the
    /// tolerance-equivalent iterates is returned) changes.
    ///
    /// # Errors
    /// Same as [`QpProblem::solve`], plus
    /// [`ConvexError::DimensionMismatch`] / [`ConvexError::NotFinite`] for
    /// a malformed seed.
    pub fn solve_warm(
        &self,
        settings: &QpSettings,
        warm: &QpWarmStart,
    ) -> Result<QpSolution, ConvexError> {
        self.solve_with(settings, Some(warm), None)
    }

    /// Assembles the condensed KKT matrix `P + σI + ρAᵀA` without
    /// factorizing it. Exposed so batch planners (the serve robust path)
    /// can assemble the KKT systems of many independent requests and push
    /// them through `rcr_linalg::BatchFactor::cholesky_batch` together,
    /// then hand each factor back via [`QpProblem::solve_prefactored`].
    ///
    /// # Errors
    /// [`ConvexError::DimensionMismatch`] if `AᵀA` cannot be formed (not
    /// reachable for a validated problem).
    pub fn kkt_matrix(&self, rho: f64, sigma: f64) -> Result<Matrix, ConvexError> {
        let n = self.num_vars();
        let ata = self.a.transpose().matmul(&self.a)?;
        let mut kkt = &self.p + &(&ata * rho);
        for i in 0..n {
            kkt[(i, i)] += sigma;
        }
        Ok(kkt)
    }

    /// Solves with a caller-supplied KKT factorization, skipping the
    /// per-solve refactorize. `factor` must factor exactly
    /// [`QpProblem::kkt_matrix`]`(settings.rho, settings.sigma)` for this
    /// problem — typically produced by a batched pre-factor phase.
    ///
    /// # Errors
    /// Same as [`QpProblem::solve`].
    pub fn solve_prefactored(
        &self,
        settings: &QpSettings,
        factor: &Cholesky,
    ) -> Result<QpSolution, ConvexError> {
        self.solve_with(settings, None, Some(factor))
    }

    /// Factorizes the condensed KKT matrix `P + σI + ρAᵀA` for the given
    /// penalty parameters. The factor can be passed back to
    /// [`QpProblem::solve_with`] to skip refactorization, and is what the
    /// warm-start cache stores per fingerprint.
    pub(crate) fn kkt_factor(&self, rho: f64, sigma: f64) -> Result<Cholesky, ConvexError> {
        let kkt = self.kkt_matrix(rho, sigma)?;
        Cholesky::new(&kkt)
            .map_err(|_| ConvexError::NotConvex("P + σI + ρAᵀA is not positive definite".into()))
    }

    /// The full-control solve: optional warm start and optional
    /// pre-computed KKT factorization. `factor`, when given, must factor
    /// `P + σI + ρAᵀA` for exactly this problem's `(P, A)` and the
    /// settings' `(rho, sigma)` — the warm cache enforces that by keying
    /// factors on a bit-exact hash.
    pub(crate) fn solve_with(
        &self,
        settings: &QpSettings,
        warm: Option<&QpWarmStart>,
        factor: Option<&Cholesky>,
    ) -> Result<QpSolution, ConvexError> {
        let n = self.num_vars();
        let m = self.num_constraints();
        let rho = settings.rho;
        let sigma = settings.sigma;
        let alpha = settings.alpha;
        // Negated so NaN parameters fail validation too.
        if !(rho > 0.0 && sigma >= 0.0 && alpha > 0.0 && alpha < 2.0) {
            return Err(ConvexError::InvalidParameter(
                "need rho > 0, sigma >= 0, 0 < alpha < 2".into(),
            ));
        }
        if let Some(w) = warm {
            if w.x.len() != n || w.y.len() != m || w.z.len() != m {
                return Err(ConvexError::DimensionMismatch(format!(
                    "warm start has lengths ({}, {}, {}), expected ({n}, {m}, {m})",
                    w.x.len(),
                    w.y.len(),
                    w.z.len()
                )));
            }
            let finite = |v: &[f64]| v.iter().all(|x| x.is_finite());
            if !finite(&w.x) || !finite(&w.y) || !finite(&w.z) {
                return Err(ConvexError::NotFinite);
            }
        }

        // KKT matrix: P + σI + ρ AᵀA (condensed form), factorized once —
        // or reused from a previous solve when the caller certifies it.
        let owned;
        let chol = match factor {
            Some(f) => f,
            None => {
                owned = self.kkt_factor(rho, sigma)?;
                &owned
            }
        };

        let (mut x, mut z, mut y) = match warm {
            Some(w) => (w.x.clone(), w.z.clone(), w.y.clone()),
            None => (vec![0.0; n], vec![0.0; m], vec![0.0; m]),
        };

        // Per-iteration workspaces, hoisted so the ADMM loop allocates
        // nothing in steady state. Every buffer is fully overwritten before
        // use each iteration, so reuse cannot change any computed value.
        let mut rhs = vec![0.0; n];
        let mut w = vec![0.0; m];
        let mut atw = vec![0.0; n];
        let mut x_new = vec![0.0; n];
        let mut chol_work = vec![0.0; n];
        let mut ax = vec![0.0; m];
        let mut z_new = vec![0.0; m];
        let mut px = vec![0.0; n];
        let mut aty = vec![0.0; n];
        let mut d = vec![0.0; n];

        let mut primal_res = f64::INFINITY;
        let mut dual_res = f64::INFINITY;
        for iter in 0..settings.max_iter {
            // x-update: solve (P+σI+ρAᵀA)x = σx - q + Aᵀ(ρz - y).
            for i in 0..n {
                rhs[i] = sigma * x[i] - self.q[i];
            }
            for i in 0..m {
                w[i] = rho * z[i] - y[i];
            }
            self.a.matvec_t_into(&w, &mut atw)?;
            for i in 0..n {
                rhs[i] += atw[i];
            }
            chol.solve_into(&rhs, &mut chol_work, &mut x_new)?;

            // Over-relaxed z-update with projection onto [l, u].
            self.a.matvec_into(&x_new, &mut ax)?;
            for i in 0..m {
                let v = alpha * ax[i] + (1.0 - alpha) * z[i] + y[i] / rho;
                z_new[i] = v.clamp(self.l[i], self.u[i]);
            }
            // Dual update.
            for i in 0..m {
                y[i] += rho * (alpha * ax[i] + (1.0 - alpha) * z[i] - z_new[i]);
            }
            std::mem::swap(&mut x, &mut x_new);
            std::mem::swap(&mut z, &mut z_new);

            // Residuals: every iteration inside the early window (where
            // warm-started solves converge), then every 10 iterations to
            // save work, and always on the final iteration so the
            // non-convergence report reflects a performed check. `ax`
            // still holds A·x for the just-accepted iterate, so it is not
            // recomputed.
            if iter < EARLY_CHECK_WINDOW || iter % 10 == 0 || iter + 1 == settings.max_iter {
                primal_res = rcr_kernels::norm_inf_diff(&ax, &z);
                self.p.matvec_into(&x, &mut px)?;
                self.a.matvec_t_into(&y, &mut aty)?;
                for i in 0..n {
                    d[i] = px[i] + self.q[i] + aty[i];
                }
                dual_res = vector::norm_inf(&d);
                let eps_pri = settings.eps_abs
                    + settings.eps_rel * vector::norm_inf(&ax).max(vector::norm_inf(&z));
                let eps_dua = settings.eps_abs
                    + settings.eps_rel
                        * vector::norm_inf(&px)
                            .max(vector::norm_inf(&aty))
                            .max(vector::norm_inf(&self.q));
                if primal_res <= eps_pri && dual_res <= eps_dua {
                    return Ok(QpSolution {
                        objective: self.objective(&x),
                        x,
                        y,
                        iterations: iter + 1,
                        primal_residual: primal_res,
                        dual_residual: dual_res,
                    });
                }
            }
        }
        Err(ConvexError::NonConvergence {
            iterations: settings.max_iter,
            residual: primal_res.max(dual_res),
        })
    }
}

/// Convenience: box-constrained QP `min ½xᵀPx + qᵀx, lo ≤ x ≤ hi`.
///
/// # Errors
/// Same as [`QpProblem::new`] / [`QpProblem::solve`].
pub fn solve_box_qp(
    p: Matrix,
    q: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    settings: &QpSettings,
) -> Result<QpSolution, ConvexError> {
    let n = q.len();
    QpProblem::new(p, q, Matrix::identity(n), lo, hi)?.solve(settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> QpSettings {
        QpSettings::default()
    }

    #[test]
    fn unconstrained_minimum_inside_box() {
        // min ½‖x - c‖² with generous box: solution is c.
        let c = [0.3, -0.2];
        let sol = solve_box_qp(
            Matrix::identity(2),
            vec![-c[0], -c[1]],
            vec![-10.0, -10.0],
            vec![10.0, 10.0],
            &settings(),
        )
        .unwrap();
        assert!((sol.x[0] - c[0]).abs() < 1e-5);
        assert!((sol.x[1] - c[1]).abs() < 1e-5);
    }

    #[test]
    fn active_box_constraint() {
        // min ½‖x - (2,2)‖² s.t. x ≤ 1: solution clamps to (1,1).
        let sol = solve_box_qp(
            Matrix::identity(2),
            vec![-2.0, -2.0],
            vec![-QP_INF, -QP_INF],
            vec![1.0, 1.0],
            &settings(),
        )
        .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] - 1.0).abs() < 1e-5);
        // Dual variables at the active constraints are positive.
        assert!(sol.y[0] > 0.5 && sol.y[1] > 0.5);
    }

    #[test]
    fn equality_constraint_via_tight_bounds() {
        // min ½(x₁² + x₂²) s.t. x₁ + x₂ = 1 → x = (0.5, 0.5).
        let a = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let prob =
            QpProblem::new(Matrix::identity(2), vec![0.0, 0.0], a, vec![1.0], vec![1.0]).unwrap();
        let sol = prob.solve(&settings()).unwrap();
        assert!((sol.x[0] - 0.5).abs() < 1e-5);
        assert!((sol.x[1] - 0.5).abs() < 1e-5);
        assert!((sol.objective - 0.25).abs() < 1e-5);
    }

    #[test]
    fn known_kkt_solution() {
        // Boyd & Vandenberghe-style 2-var QP with one inequality active:
        // min ½xᵀ[[2,0],[0,2]]x + [-2,-5]ᵀx s.t. x₁ ≥ 0, x₂ ≥ 0, x₁+x₂ ≤ 2.
        // Unconstrained opt = (1, 2.5), constraint x₁+x₂ ≤ 2 is active.
        let p = Matrix::from_diag(&[2.0, 2.0]);
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let prob = QpProblem::new(
            p,
            vec![-2.0, -5.0],
            a,
            vec![0.0, 0.0, -QP_INF],
            vec![QP_INF, QP_INF, 2.0],
        )
        .unwrap();
        let sol = prob.solve(&settings()).unwrap();
        // KKT: x₁ = x* with λ for sum constraint: x = (0.25, 1.75).
        assert!((sol.x[0] - 0.25).abs() < 1e-4, "{:?}", sol.x);
        assert!((sol.x[1] - 1.75).abs() < 1e-4, "{:?}", sol.x);
    }

    #[test]
    fn psd_but_singular_p_is_accepted() {
        // P = [[1,0],[0,0]] is PSD (not PD); σ regularization handles it.
        let p = Matrix::from_diag(&[1.0, 0.0]);
        let sol = solve_box_qp(
            p,
            vec![0.0, 1.0],
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
            &settings(),
        )
        .unwrap();
        // x₂ has linear objective coefficient 1 → slides to its lower bound.
        assert!((sol.x[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn validation_errors() {
        let p = Matrix::identity(2);
        let a = Matrix::identity(2);
        // wrong P shape
        assert!(QpProblem::new(
            Matrix::identity(3),
            vec![0.0; 2],
            a.clone(),
            vec![0.0; 2],
            vec![1.0; 2]
        )
        .is_err());
        // l > u
        assert!(QpProblem::new(
            p.clone(),
            vec![0.0; 2],
            a.clone(),
            vec![2.0, 0.0],
            vec![1.0, 1.0]
        )
        .is_err());
        // NaN
        assert!(QpProblem::new(
            p.clone(),
            vec![f64::NAN, 0.0],
            a.clone(),
            vec![0.0; 2],
            vec![1.0; 2]
        )
        .is_err());
        // asymmetric P
        let bad = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(QpProblem::new(bad, vec![0.0; 2], a, vec![0.0; 2], vec![1.0; 2]).is_err());
    }

    #[test]
    fn indefinite_p_rejected_at_solve() {
        let p = Matrix::from_diag(&[1.0, -5.0]);
        let prob = QpProblem::new(
            p,
            vec![0.0, 0.0],
            Matrix::identity(2),
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        // -5 on the diagonal defeats ρAᵀA + σ for default settings.
        assert!(matches!(
            prob.solve(&settings()),
            Err(ConvexError::NotConvex(_))
        ));
    }

    #[test]
    fn invalid_settings_rejected() {
        let prob = QpProblem::new(
            Matrix::identity(1),
            vec![0.0],
            Matrix::identity(1),
            vec![0.0],
            vec![1.0],
        )
        .unwrap();
        let mut s = settings();
        s.alpha = 2.5;
        assert!(prob.solve(&s).is_err());
    }

    /// A modest strictly-convex QP with coupled variables and an active
    /// constraint, used by the cadence/warm-start tests below.
    fn coupled_qp() -> QpProblem {
        let n = 6;
        let p = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                1.0
            } else {
                0.0
            }
        });
        let q: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.9).cos() - 0.5).collect();
        let a = Matrix::identity(n);
        QpProblem::new(p, q, a, vec![-0.2; n], vec![0.2; n]).unwrap()
    }

    #[test]
    fn convergence_checked_every_iteration_in_early_window() {
        // Regression test for the residual-check cadence: the old code only
        // checked when `iter % 10 == 0`, so reported iteration counts could
        // only be ≡ 1 (mod 10) or max_iter. A solve warm-started from a
        // slightly perturbed solution converges inside (1, 11) exclusive —
        // counts the old cadence could never report.
        let prob = coupled_qp();
        let settings = settings();
        let cold = prob.solve(&settings).unwrap();
        let mut warm = QpWarmStart::from_solution(&prob, &cold).unwrap();
        // Perturb the dual seed: dual error contracts slowly (~0.93/iter
        // here), so a 1e-7 nudge needs a handful of iterations — inside
        // the every-iteration window, past the iter-0 check.
        for (i, v) in warm.y.iter_mut().enumerate() {
            *v += 1e-7 * ((i as f64) + 1.0).sin();
        }
        let sol = prob.solve_warm(&settings, &warm).unwrap();
        assert!(
            sol.iterations > 1 && sol.iterations < 11,
            "warm solve took {} iterations; the every-iteration early window \
             should land strictly between the old cadence's only possible \
             reports (1, 11, 21, ...)",
            sol.iterations
        );
        assert!((sol.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn nonconvergence_reports_residual_from_a_performed_check() {
        // With a tiny iteration budget the final iteration always performs
        // a check, so the reported residual must be finite (not the
        // initial +inf placeholder).
        let prob = coupled_qp();
        let mut s = settings();
        s.max_iter = 3;
        s.eps_abs = 1e-16;
        s.eps_rel = 1e-16;
        match prob.solve(&s) {
            Err(ConvexError::NonConvergence {
                iterations,
                residual,
            }) => {
                assert_eq!(iterations, 3);
                assert!(residual.is_finite(), "residual {residual} not finite");
                assert!(residual > 0.0);
            }
            other => panic!("expected NonConvergence, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_validation() {
        let prob = coupled_qp();
        let s = settings();
        let bad_len = QpWarmStart {
            x: vec![0.0; 2],
            y: vec![0.0; 6],
            z: vec![0.0; 6],
        };
        assert!(matches!(
            prob.solve_warm(&s, &bad_len),
            Err(ConvexError::DimensionMismatch(_))
        ));
        let bad_nan = QpWarmStart {
            x: vec![f64::NAN; 6],
            y: vec![0.0; 6],
            z: vec![0.0; 6],
        };
        assert!(matches!(
            prob.solve_warm(&s, &bad_nan),
            Err(ConvexError::NotFinite)
        ));
    }

    #[test]
    fn warm_start_matches_cold_objective() {
        let prob = coupled_qp();
        let s = settings();
        let cold = prob.solve(&s).unwrap();
        let warm = QpWarmStart::from_solution(&prob, &cold).unwrap();
        let sol = prob.solve_warm(&s, &warm).unwrap();
        assert!(sol.iterations <= cold.iterations);
        assert!((sol.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn reused_factor_matches_fresh_solve() {
        let prob = coupled_qp();
        let s = settings();
        let factor = prob.kkt_factor(s.rho, s.sigma).unwrap();
        let with_factor = prob.solve_with(&s, None, Some(&factor)).unwrap();
        let fresh = prob.solve(&s).unwrap();
        // Same factorization, same arithmetic: bit-identical iterates.
        assert_eq!(with_factor.iterations, fresh.iterations);
        assert_eq!(with_factor.x, fresh.x);
        assert_eq!(with_factor.y, fresh.y);
    }

    #[test]
    fn larger_random_like_qp_matches_projection() {
        // min ½‖x − c‖² over the box [0,1]^8: answer is clamp(c).
        let n = 8;
        let c: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 1.5).collect();
        let q: Vec<f64> = c.iter().map(|v| -v).collect();
        let sol = solve_box_qp(
            Matrix::identity(n),
            q,
            vec![0.0; n],
            vec![1.0; n],
            &settings(),
        )
        .unwrap();
        for (xi, ci) in sol.x.iter().zip(&c) {
            assert!((xi - ci.clamp(0.0, 1.0)).abs() < 1e-5);
        }
    }
}
