use rcr_linalg::LinalgError;
use std::fmt;

/// Errors produced by the convex solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConvexError {
    /// Problem data dimensions are inconsistent.
    DimensionMismatch(String),
    /// The problem is not convex (an indefinite quadratic form where a PSD
    /// one is required).
    NotConvex(String),
    /// No strictly feasible point could be found (Slater's condition
    /// appears violated, or phase-I failed).
    Infeasible,
    /// The iteration budget was exhausted before reaching tolerance.
    NonConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual when the solver gave up.
        residual: f64,
    },
    /// Problem data contained NaN or infinite entries.
    NotFinite,
    /// An invalid solver or problem parameter.
    InvalidParameter(String),
    /// An underlying linear-algebra kernel failed.
    Linalg(LinalgError),
}

impl fmt::Display for ConvexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvexError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            ConvexError::NotConvex(msg) => write!(f, "problem is not convex: {msg}"),
            ConvexError::Infeasible => write!(f, "no strictly feasible point found"),
            ConvexError::NonConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:.3e})"
                )
            }
            ConvexError::NotFinite => write!(f, "problem data contains NaN or infinite entries"),
            ConvexError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ConvexError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for ConvexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvexError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ConvexError {
    fn from(e: LinalgError) -> Self {
        ConvexError::Linalg(e)
    }
}
