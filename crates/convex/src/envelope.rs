//! Convex under-estimators and concave over-estimators.
//!
//! §II-B: "the nonlinearities are typically replaced by convex
//! under-estimators and concave over-estimators. The tightest convex
//! under-estimator and the tightest concave over-estimator are referred to
//! as the convex envelope and the concave envelope of a function." This
//! module provides:
//!
//! * [`Interval`] arithmetic for bound propagation;
//! * the exact envelopes of common nonlinearities over an interval
//!   ([`square_envelopes`], [`exp_envelopes`], [`log_envelopes`]);
//! * the McCormick relaxation of a bilinear term ([`mccormick`]), the
//!   canonical "key combinatorial substructure" relaxation used by the
//!   MINLP branch-and-bound.

use crate::ConvexError;

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval, validating `lo <= hi` and finiteness.
    ///
    /// # Errors
    /// Returns [`ConvexError::InvalidParameter`] for reversed or non-finite
    /// endpoints.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ConvexError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(ConvexError::InvalidParameter(format!(
                "bad interval [{lo}, {hi}]"
            )));
        }
        Ok(Interval { lo, hi })
    }

    /// Width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Containment test.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Interval sum.
    pub fn add(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    /// Interval product (exact for intervals).
    pub fn mul(&self, o: &Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval {
            lo: c.iter().cloned().fold(f64::INFINITY, f64::min),
            hi: c.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Scales by a constant.
    pub fn scale(&self, s: f64) -> Interval {
        if s >= 0.0 {
            Interval {
                lo: self.lo * s,
                hi: self.hi * s,
            }
        } else {
            Interval {
                lo: self.hi * s,
                hi: self.lo * s,
            }
        }
    }

    /// Splits at the midpoint (for branch-and-bound).
    pub fn bisect(&self) -> (Interval, Interval) {
        let m = self.mid();
        (
            Interval { lo: self.lo, hi: m },
            Interval { lo: m, hi: self.hi },
        )
    }
}

/// An affine function `a·x + b` used as an estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineEstimator {
    /// Slope.
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl AffineEstimator {
    /// Evaluates the estimator.
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x + self.b
    }

    /// The secant of `f` through the interval endpoints — the concave
    /// envelope of any convex `f` (and the convex envelope of any concave
    /// `f`) over that interval.
    pub fn secant(f: impl Fn(f64) -> f64, iv: Interval) -> AffineEstimator {
        let (flo, fhi) = (f(iv.lo), f(iv.hi));
        if iv.width() <= f64::EPSILON * iv.lo.abs().max(1.0) {
            return AffineEstimator { a: 0.0, b: flo };
        }
        let a = (fhi - flo) / iv.width();
        AffineEstimator {
            a,
            b: flo - a * iv.lo,
        }
    }

    /// The tangent of a differentiable `f` at `x0` — an under-estimator of
    /// any convex `f` (over-estimator of any concave `f`).
    pub fn tangent(f: impl Fn(f64) -> f64, df: impl Fn(f64) -> f64, x0: f64) -> AffineEstimator {
        let a = df(x0);
        AffineEstimator {
            a,
            b: f(x0) - a * x0,
        }
    }
}

/// Envelope pair for a univariate function over an interval: the convex
/// under-estimator (here the function itself when convex, otherwise an
/// affine minorant) and the concave over-estimator.
///
/// Envelopes are only defined *on* the interval, so evaluators clamp `x`
/// into `[iv.lo, iv.hi]` first. Without the clamp the bracket property
/// `under(x) ≤ f(x) ≤ over(x)` silently breaks outside the interval (the
/// secant of a convex function drops below it past the endpoints) — the
/// exact failure the committed proptest regression at `x = 1.6514…`
/// outside `[0, 1]` caught.
#[derive(Debug, Clone)]
pub struct EnvelopePair {
    /// Evaluates the convex under-estimator (clamping `x` into the
    /// interval).
    pub under: fn(f64, Interval) -> f64,
    /// Evaluates the concave over-estimator (clamping `x` into the
    /// interval).
    pub over: fn(f64, Interval) -> f64,
}

impl Interval {
    /// Clamps `x` to the nearest point of the interval.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

/// Envelopes of `x²` over `iv`: the convex envelope is `x²` itself; the
/// concave envelope is the secant.
pub fn square_envelopes() -> EnvelopePair {
    EnvelopePair {
        under: |x, iv| {
            let x = iv.clamp(x);
            x * x
        },
        over: |x, iv| AffineEstimator::secant(|t| t * t, iv).eval(iv.clamp(x)),
    }
}

/// Envelopes of `eˣ` over `iv` (convex function: itself / secant).
pub fn exp_envelopes() -> EnvelopePair {
    EnvelopePair {
        under: |x, iv| iv.clamp(x).exp(),
        over: |x, iv| AffineEstimator::secant(f64::exp, iv).eval(iv.clamp(x)),
    }
}

/// Envelopes of `ln x` over a positive `iv` (concave function:
/// secant / itself).
pub fn log_envelopes() -> EnvelopePair {
    EnvelopePair {
        under: |x, iv| AffineEstimator::secant(f64::ln, iv).eval(iv.clamp(x)),
        over: |x, iv| iv.clamp(x).ln(),
    }
}

/// The four McCormick inequalities for `w = x·y` over a box, returned as
/// the implied interval for `w` at a specific `(x, y)`:
///
/// ```text
/// w ≥ x_lo·y + x·y_lo − x_lo·y_lo      w ≥ x_hi·y + x·y_hi − x_hi·y_hi
/// w ≤ x_hi·y + x·y_lo − x_hi·y_lo      w ≤ x_lo·y + x·y_hi − x_lo·y_hi
/// ```
///
/// The returned interval always contains the true product and collapses to
/// it when either interval is degenerate.
pub fn mccormick(x: f64, y: f64, xi: Interval, yi: Interval) -> Interval {
    let under1 = xi.lo * y + x * yi.lo - xi.lo * yi.lo;
    let under2 = xi.hi * y + x * yi.hi - xi.hi * yi.hi;
    let over1 = xi.hi * y + x * yi.lo - xi.hi * yi.lo;
    let over2 = xi.lo * y + x * yi.hi - xi.lo * yi.hi;
    Interval {
        lo: under1.max(under2),
        hi: over1.min(over2),
    }
}

/// Two-sided gap of the McCormick relaxation at the box midpoint — the
/// standard tightness measure, equal to `(x_hi − x_lo)(y_hi − y_lo)/2`
/// (each one-sided envelope is off by a quarter of the box area).
pub fn mccormick_midpoint_gap(xi: Interval, yi: Interval) -> f64 {
    let iv = mccormick(xi.mid(), yi.mid(), xi, yi);
    iv.hi - iv.lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(-1.0, 3.0).unwrap();
        assert_eq!(iv.width(), 4.0);
        assert_eq!(iv.mid(), 1.0);
        assert!(iv.contains(0.0) && !iv.contains(3.5));
        let (a, b) = iv.bisect();
        assert_eq!(a.hi, 1.0);
        assert_eq!(b.lo, 1.0);
    }

    #[test]
    fn interval_validation() {
        assert!(Interval::new(1.0, 0.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn interval_product_covers_all_signs() {
        let a = Interval::new(-2.0, 3.0).unwrap();
        let b = Interval::new(-1.0, 4.0).unwrap();
        let p = a.mul(&b);
        // Extremes: (-2)(4) = -8 and (3)(4) = 12.
        assert_eq!(p.lo, -8.0);
        assert_eq!(p.hi, 12.0);
    }

    #[test]
    fn scale_flips_for_negative_factor() {
        let iv = Interval::new(1.0, 2.0).unwrap().scale(-3.0);
        assert_eq!(iv.lo, -6.0);
        assert_eq!(iv.hi, -3.0);
    }

    #[test]
    fn secant_over_estimates_convex_function() {
        let iv = Interval::new(0.0, 2.0).unwrap();
        let sec = AffineEstimator::secant(|x| x * x, iv);
        for i in 0..=20 {
            let x = iv.lo + iv.width() * i as f64 / 20.0;
            assert!(sec.eval(x) >= x * x - 1e-12);
        }
        // Tight at the endpoints.
        assert!((sec.eval(0.0) - 0.0).abs() < 1e-14);
        assert!((sec.eval(2.0) - 4.0).abs() < 1e-14);
    }

    #[test]
    fn tangent_under_estimates_convex_function() {
        let tan = AffineEstimator::tangent(f64::exp, f64::exp, 0.5);
        for i in -10..=10 {
            let x = i as f64 / 5.0;
            assert!(tan.eval(x) <= x.exp() + 1e-12);
        }
        assert!((tan.eval(0.5) - 0.5f64.exp()).abs() < 1e-14);
    }

    #[test]
    fn square_envelopes_bracket_function() {
        let env = square_envelopes();
        let iv = Interval::new(-1.0, 2.0).unwrap();
        for i in 0..=30 {
            let x = iv.lo + iv.width() * i as f64 / 30.0;
            let f = x * x;
            assert!((env.under)(x, iv) <= f + 1e-12);
            assert!((env.over)(x, iv) >= f - 1e-12);
        }
    }

    #[test]
    fn log_envelopes_bracket_function() {
        let env = log_envelopes();
        let iv = Interval::new(0.5, 4.0).unwrap();
        for i in 0..=30 {
            let x = iv.lo + iv.width() * i as f64 / 30.0;
            let f = x.ln();
            assert!((env.under)(x, iv) <= f + 1e-12);
            assert!((env.over)(x, iv) >= f - 1e-12);
        }
    }

    #[test]
    fn mccormick_contains_true_product() {
        let xi = Interval::new(-1.0, 2.0).unwrap();
        let yi = Interval::new(0.5, 3.0).unwrap();
        for i in 0..=10 {
            for j in 0..=10 {
                let x = xi.lo + xi.width() * i as f64 / 10.0;
                let y = yi.lo + yi.width() * j as f64 / 10.0;
                let iv = mccormick(x, y, xi, yi);
                assert!(iv.lo <= x * y + 1e-12, "({x},{y}): {iv:?}");
                assert!(iv.hi >= x * y - 1e-12, "({x},{y}): {iv:?}");
            }
        }
    }

    #[test]
    fn mccormick_exact_at_corners() {
        let xi = Interval::new(-1.0, 2.0).unwrap();
        let yi = Interval::new(0.5, 3.0).unwrap();
        for &x in &[xi.lo, xi.hi] {
            for &y in &[yi.lo, yi.hi] {
                let iv = mccormick(x, y, xi, yi);
                assert!((iv.lo - x * y).abs() < 1e-12);
                assert!((iv.hi - x * y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mccormick_gap_shrinks_with_bisection() {
        let xi = Interval::new(0.0, 4.0).unwrap();
        let yi = Interval::new(0.0, 4.0).unwrap();
        let g0 = mccormick_midpoint_gap(xi, yi);
        let (xl, _) = xi.bisect();
        let (yl, _) = yi.bisect();
        let g1 = mccormick_midpoint_gap(xl, yl);
        assert!((g0 - 8.0).abs() < 1e-12); // (4·4)/2
        assert!((g1 - 2.0).abs() < 1e-12); // (2·2)/2
    }
}
