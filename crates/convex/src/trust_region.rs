//! Exact trust-region subproblem solver (Moré–Sorensen via
//! eigendecomposition):
//!
//! ```text
//! minimize  ½ xᵀ B x + gᵀ x   subject to ‖x‖₂ ≤ Δ
//! ```
//!
//! This is the "QCQP special class convex optimization problem" of §IV-C
//! that the paper uses to obtain trust regions for Hessian proxies
//! (BFGS-style curvature with "additional initialization conditions to
//! avoid false curvature information"). `B` may be **indefinite** — the
//! subproblem is still solvable exactly thanks to the secular-equation
//! structure, including the hard case.

use crate::ConvexError;
use rcr_linalg::{vector, Matrix};

/// Solution of a trust-region subproblem.
#[derive(Debug, Clone)]
pub struct TrustRegionSolution {
    /// The minimizer.
    pub x: Vec<f64>,
    /// Model value `½xᵀBx + gᵀx` at the minimizer.
    pub value: f64,
    /// The Lagrange multiplier λ ≥ 0 of the norm constraint.
    pub lambda: f64,
    /// True when the constraint is active (‖x‖ = Δ).
    pub on_boundary: bool,
    /// True when the hard case was taken (g ⟂ leading eigenspace with an
    /// indefinite `B`).
    pub hard_case: bool,
}

/// Solves the trust-region subproblem exactly.
///
/// # Errors
/// * [`ConvexError::DimensionMismatch`] when `g.len()` differs from `B`'s
///   dimension.
/// * [`ConvexError::InvalidParameter`] when `delta <= 0`.
/// * [`ConvexError::NotFinite`] for non-finite data.
pub fn solve_trust_region(
    b: &Matrix,
    g: &[f64],
    delta: f64,
) -> Result<TrustRegionSolution, ConvexError> {
    let n = g.len();
    if b.shape() != (n, n) {
        return Err(ConvexError::DimensionMismatch(format!(
            "B is {:?}, expected {n}x{n}",
            b.shape()
        )));
    }
    if !(delta > 0.0) || !delta.is_finite() {
        return Err(ConvexError::InvalidParameter(format!("delta = {delta}")));
    }
    if !b.is_finite() || !vector::is_finite(g) {
        return Err(ConvexError::NotFinite);
    }

    let sym = b.symmetrize()?;
    let eig = sym.symmetric_eigen()?;
    let lam = eig.eigenvalues().to_vec();
    let v = eig.eigenvectors();
    // g in the eigenbasis.
    let gt = v.matvec_t(g)?;
    let lam_min = lam[0];

    let model =
        |x: &[f64]| -> f64 { 0.5 * sym.quadratic_form(x).unwrap_or(f64::NAN) + vector::dot(g, x) };

    // Candidate 1: interior solution B x = -g (requires B ≻ 0).
    if lam_min > 1e-12 {
        let y: Vec<f64> = gt.iter().zip(&lam).map(|(gi, li)| -gi / li).collect();
        let x = v.matvec(&y)?;
        if vector::norm2(&x) <= delta {
            return Ok(TrustRegionSolution {
                value: model(&x),
                x,
                lambda: 0.0,
                on_boundary: false,
                hard_case: false,
            });
        }
    }

    // Boundary solution: find λ > max(0, -λ_min) with ‖x(λ)‖ = Δ where
    // x(λ) = -(B + λI)^{-1} g, via the secular equation in the eigenbasis:
    // φ(λ) = Σ g_i² / (λ_i + λ)² − Δ² = 0 (strictly decreasing in λ).
    let lam_lo_base = (-lam_min).max(0.0);

    // Hard case detection: components of g along the minimal eigenspace.
    let g_min_norm: f64 = gt
        .iter()
        .zip(&lam)
        .filter(|(_, &li)| (li - lam_min).abs() < 1e-10)
        .map(|(gi, _)| gi * gi)
        .sum::<f64>()
        .sqrt();

    let norm_at = |l: f64| -> f64 {
        gt.iter()
            .zip(&lam)
            .map(|(gi, li)| {
                let d = li + l;
                if d.abs() < 1e-300 {
                    0.0
                } else {
                    (gi / d) * (gi / d)
                }
            })
            .sum::<f64>()
            .sqrt()
    };

    if g_min_norm < 1e-12 && lam_min <= 1e-12 {
        // Possible hard case: at λ = -λ_min the norm may stay below Δ.
        let l = lam_lo_base;
        let partial = norm_at(l + 1e-14);
        if partial <= delta {
            // x = pseudo-solution + τ·(min eigenvector) to reach the boundary.
            let y: Vec<f64> = gt
                .iter()
                .zip(&lam)
                .map(|(gi, li)| {
                    let d = li + l;
                    if d.abs() < 1e-10 {
                        0.0
                    } else {
                        -gi / d
                    }
                })
                .collect();
            let tau = (delta * delta - vector::dot(&y, &y)).max(0.0).sqrt();
            let mut y_adj = y;
            // Add τ along the first minimal eigen-direction.
            let idx = 0;
            y_adj[idx] += tau;
            let x = v.matvec(&y_adj)?;
            return Ok(TrustRegionSolution {
                value: model(&x),
                x,
                lambda: l,
                on_boundary: true,
                hard_case: true,
            });
        }
    }

    // Safeguarded bisection + Newton on the secular equation.
    let mut lo = lam_lo_base + 1e-14;
    let mut hi = lam_lo_base + 1.0;
    let mut grow = 0;
    while norm_at(hi) > delta && grow < 200 {
        hi = lam_lo_base + (hi - lam_lo_base) * 4.0;
        grow += 1;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if norm_at(mid) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 * (1.0 + hi) {
            break;
        }
    }
    let l = 0.5 * (lo + hi);
    let y: Vec<f64> = gt.iter().zip(&lam).map(|(gi, li)| -gi / (li + l)).collect();
    let x = v.matvec(&y)?;
    Ok(TrustRegionSolution {
        value: model(&x),
        x,
        lambda: l,
        on_boundary: true,
        hard_case: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_solution_when_newton_step_fits() {
        // B = I, g = (-1, 0): Newton step (1, 0), Δ = 2 → interior.
        let b = Matrix::identity(2);
        let sol = solve_trust_region(&b, &[-1.0, 0.0], 2.0).unwrap();
        assert!(!sol.on_boundary);
        assert!((sol.x[0] - 1.0).abs() < 1e-10);
        assert!(sol.lambda.abs() < 1e-12);
    }

    #[test]
    fn boundary_solution_when_step_too_long() {
        // Newton step (3, 0) with Δ = 1 → clipped to (1, 0).
        let b = Matrix::identity(2);
        let sol = solve_trust_region(&b, &[-3.0, 0.0], 1.0).unwrap();
        assert!(sol.on_boundary);
        assert!((vector::norm2(&sol.x) - 1.0).abs() < 1e-8);
        assert!((sol.x[0] - 1.0).abs() < 1e-6);
        // λ = 2 satisfies (1+λ)·1 = 3.
        assert!((sol.lambda - 2.0).abs() < 1e-6);
    }

    #[test]
    fn indefinite_b_goes_to_boundary() {
        // Negative curvature: solution always on the boundary.
        let b = Matrix::from_diag(&[1.0, -2.0]);
        let sol = solve_trust_region(&b, &[0.5, 0.3], 1.0).unwrap();
        assert!(sol.on_boundary);
        assert!((vector::norm2(&sol.x) - 1.0).abs() < 1e-6);
        // λ must dominate the negative eigenvalue.
        assert!(sol.lambda >= 2.0 - 1e-8);
        // Verify stationarity: (B + λI)x = -g.
        let lhs = {
            let mut m = b.clone();
            m[(0, 0)] += sol.lambda;
            m[(1, 1)] += sol.lambda;
            m.matvec(&sol.x).unwrap()
        };
        assert!((lhs[0] + 0.5).abs() < 1e-5 && (lhs[1] + 0.3).abs() < 1e-5);
    }

    #[test]
    fn hard_case_handled() {
        // g orthogonal to the negative eigenvector: classic hard case.
        let b = Matrix::from_diag(&[-1.0, 2.0]);
        let sol = solve_trust_region(&b, &[0.0, 0.1], 1.0).unwrap();
        assert!(sol.on_boundary);
        assert!((vector::norm2(&sol.x) - 1.0).abs() < 1e-6);
        assert!(sol.hard_case);
        // Optimal value: ½(-1)(x₁²) + ½(2)x₂² + 0.1x₂ minimized with
        // x₁² + x₂² = 1; the x₁ direction absorbs most of the norm.
        assert!(sol.x[0].abs() > 0.9);
    }

    #[test]
    fn beats_random_feasible_points() {
        let b =
            Matrix::from_rows(&[&[2.0, 0.5, 0.0], &[0.5, -1.0, 0.3], &[0.0, 0.3, 0.5]]).unwrap();
        let g = [0.2, -0.4, 0.7];
        let delta = 1.3;
        let sol = solve_trust_region(&b, &g, delta).unwrap();
        let model = |x: &[f64]| 0.5 * b.quadratic_form(x).unwrap() + vector::dot(&g, x);
        // Deterministic probe points on and inside the ball.
        for seed in 0..50 {
            let raw: Vec<f64> = (0..3)
                .map(|i| ((seed * 37 + i * 17) % 21) as f64 / 10.0 - 1.0)
                .collect();
            let nrm = vector::norm2(&raw).max(1e-9);
            let scale = delta * ((seed % 10) as f64 / 10.0) / nrm;
            let x: Vec<f64> = raw.iter().map(|v| v * scale).collect();
            assert!(model(&sol.x) <= model(&x) + 1e-7, "beaten at seed {seed}");
        }
    }

    #[test]
    fn zero_gradient_with_psd_b_stays_at_origin() {
        let b = Matrix::identity(3);
        let sol = solve_trust_region(&b, &[0.0; 3], 1.0).unwrap();
        assert!(vector::norm2(&sol.x) < 1e-10);
        assert!(sol.value.abs() < 1e-12);
    }

    #[test]
    fn zero_gradient_with_indefinite_b_rides_negative_curvature() {
        let b = Matrix::from_diag(&[1.0, -3.0]);
        let sol = solve_trust_region(&b, &[0.0, 0.0], 2.0).unwrap();
        assert!(sol.on_boundary);
        // value = ½(-3)(4) = -6 along the negative eigenvector.
        assert!((sol.value + 6.0).abs() < 1e-6);
    }

    #[test]
    fn validation() {
        let b = Matrix::identity(2);
        assert!(solve_trust_region(&b, &[1.0], 1.0).is_err());
        assert!(solve_trust_region(&b, &[1.0, 1.0], 0.0).is_err());
        assert!(solve_trust_region(&b, &[f64::NAN, 1.0], 1.0).is_err());
    }
}
