//! Quasi-Newton smooth minimization: BFGS and L-BFGS with Armijo
//! backtracking.
//!
//! §IV-C: "given a particular Hessian matrix in a resolvable form, proxies
//! (i.e., approximations) of the Hessian matrix can be obtained in
//! alternative ways, e.g., Broyden–Fletcher–Goldfarb–Shanno (BFGS) ...
//! however, to avoid false curvature information, additional
//! initialization conditions are required." Both solvers here implement
//! the standard curvature guard (`sᵀy > 0` check with damping/skip) and
//! the scaled initial Hessian `γI` initialization the cited L-BFGS
//! trust-region literature recommends.

use crate::ConvexError;
use rcr_linalg::{vector, Matrix};
use std::collections::VecDeque;

/// A smooth objective: value and gradient at a point.
pub trait Objective {
    /// Evaluates `f(x)`.
    fn value(&self, x: &[f64]) -> f64;
    /// Evaluates `∇f(x)`.
    fn gradient(&self, x: &[f64]) -> Vec<f64>;
}

impl<F, G> Objective for (F, G)
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    fn value(&self, x: &[f64]) -> f64 {
        (self.0)(x)
    }
    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        (self.1)(x)
    }
}

/// Settings shared by both quasi-Newton drivers.
#[derive(Debug, Clone)]
pub struct QuasiNewtonSettings {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Gradient infinity-norm stopping tolerance.
    pub grad_tol: f64,
    /// Armijo sufficient-decrease constant.
    pub armijo_c: f64,
    /// Backtracking shrink factor.
    pub backtrack: f64,
    /// History size (L-BFGS only).
    pub memory: usize,
}

impl Default for QuasiNewtonSettings {
    fn default() -> Self {
        QuasiNewtonSettings {
            max_iter: 500,
            grad_tol: 1e-8,
            armijo_c: 1e-4,
            backtrack: 0.5,
            memory: 10,
        }
    }
}

/// Result of a quasi-Newton run.
#[derive(Debug, Clone)]
pub struct QuasiNewtonResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Objective value at the final iterate.
    pub value: f64,
    /// Gradient infinity norm at the final iterate.
    pub grad_norm: f64,
    /// Iterations used.
    pub iterations: usize,
    /// True when `grad_norm <= grad_tol` (otherwise the budget ran out —
    /// still returned, per C-INTERMEDIATE, since the iterate is useful).
    pub converged: bool,
}

fn line_search(
    f: &dyn Objective,
    x: &[f64],
    fx: f64,
    g: &[f64],
    dir: &[f64],
    settings: &QuasiNewtonSettings,
) -> Option<(Vec<f64>, f64, f64)> {
    let slope = vector::dot(g, dir);
    if slope >= 0.0 {
        return None; // not a descent direction
    }
    let mut step = 1.0;
    for _ in 0..60 {
        let cand: Vec<f64> = x.iter().zip(dir).map(|(xi, di)| xi + step * di).collect();
        let fc = f.value(&cand);
        if fc.is_finite() && fc <= fx + settings.armijo_c * step * slope {
            return Some((cand, fc, step));
        }
        step *= settings.backtrack;
    }
    None
}

/// Full-memory BFGS.
///
/// # Errors
/// * [`ConvexError::NotFinite`] when the start point or its gradient is
///   non-finite.
/// * [`ConvexError::InvalidParameter`] for an empty start.
pub fn bfgs(
    f: &dyn Objective,
    x0: &[f64],
    settings: &QuasiNewtonSettings,
) -> Result<QuasiNewtonResult, ConvexError> {
    let n = x0.len();
    if n == 0 {
        return Err(ConvexError::InvalidParameter("empty start point".into()));
    }
    if !vector::is_finite(x0) {
        return Err(ConvexError::NotFinite);
    }
    let mut x = x0.to_vec();
    let mut fx = f.value(&x);
    let mut g = f.gradient(&x);
    if !fx.is_finite() || !vector::is_finite(&g) {
        return Err(ConvexError::NotFinite);
    }
    let mut h = Matrix::identity(n); // inverse Hessian approximation

    for iter in 0..settings.max_iter {
        let gn = vector::norm_inf(&g);
        if gn <= settings.grad_tol {
            return Ok(QuasiNewtonResult {
                x,
                value: fx,
                grad_norm: gn,
                iterations: iter,
                converged: true,
            });
        }
        let dir = vector::scale(-1.0, &h.matvec(&g)?);
        let Some((x_new, f_new, _)) = line_search(f, &x, fx, &g, &dir, settings) else {
            // Reset curvature and fall back to steepest descent once.
            h = Matrix::identity(n);
            let dir = vector::scale(-1.0, &g);
            match line_search(f, &x, fx, &g, &dir, settings) {
                Some((x_new, f_new, _)) => {
                    let g_new = f.gradient(&x_new);
                    x = x_new;
                    fx = f_new;
                    g = g_new;
                    continue;
                }
                None => {
                    return Ok(QuasiNewtonResult {
                        x,
                        value: fx,
                        grad_norm: gn,
                        iterations: iter,
                        converged: false,
                    })
                }
            }
        };
        let g_new = f.gradient(&x_new);
        let s = vector::sub(&x_new, &x);
        let y = vector::sub(&g_new, &g);
        let sy = vector::dot(&s, &y);
        // Curvature guard: skip the update when sᵀy is not safely positive
        // ("to avoid false curvature information").
        if sy > 1e-12 * vector::norm2(&s) * vector::norm2(&y) {
            // H ← (I − ρsyᵀ) H (I − ρysᵀ) + ρssᵀ with ρ = 1/sᵀy.
            let rho = 1.0 / sy;
            let hy = h.matvec(&y)?;
            let yhy = vector::dot(&y, &hy);
            for r in 0..n {
                for c in 0..n {
                    h[(r, c)] +=
                        rho * rho * (sy + yhy) * s[r] * s[c] - rho * (hy[r] * s[c] + s[r] * hy[c]);
                }
            }
        }
        x = x_new;
        fx = f_new;
        g = g_new;
    }
    let gn = vector::norm_inf(&g);
    Ok(QuasiNewtonResult {
        x,
        value: fx,
        grad_norm: gn,
        iterations: settings.max_iter,
        converged: gn <= settings.grad_tol,
    })
}

/// Limited-memory BFGS (two-loop recursion).
///
/// # Errors
/// Same as [`bfgs`].
pub fn lbfgs(
    f: &dyn Objective,
    x0: &[f64],
    settings: &QuasiNewtonSettings,
) -> Result<QuasiNewtonResult, ConvexError> {
    let n = x0.len();
    if n == 0 {
        return Err(ConvexError::InvalidParameter("empty start point".into()));
    }
    if !vector::is_finite(x0) {
        return Err(ConvexError::NotFinite);
    }
    let mut x = x0.to_vec();
    let mut fx = f.value(&x);
    let mut g = f.gradient(&x);
    if !fx.is_finite() || !vector::is_finite(&g) {
        return Err(ConvexError::NotFinite);
    }
    let mut hist: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new(); // (s, y, ρ)

    for iter in 0..settings.max_iter {
        let gn = vector::norm_inf(&g);
        if gn <= settings.grad_tol {
            return Ok(QuasiNewtonResult {
                x,
                value: fx,
                grad_norm: gn,
                iterations: iter,
                converged: true,
            });
        }
        // Two-loop recursion.
        let mut q = g.clone();
        let mut alphas = Vec::with_capacity(hist.len());
        for (s, y, rho) in hist.iter().rev() {
            let a = rho * vector::dot(s, &q);
            vector::axpy(-a, y, &mut q);
            alphas.push(a);
        }
        // Scaled initial inverse Hessian γI ("improving L-BFGS
        // initialization", Rafati & Marcia).
        let gamma = hist
            .back()
            .map(|(s, y, _)| vector::dot(s, y) / vector::dot(y, y).max(1e-300))
            .unwrap_or(1.0);
        let mut r = vector::scale(gamma, &q);
        for ((s, y, rho), a) in hist.iter().zip(alphas.iter().rev()) {
            let b = rho * vector::dot(y, &r);
            vector::axpy(a - b, s, &mut r);
        }
        let dir = vector::scale(-1.0, &r);
        let Some((x_new, f_new, _)) = line_search(f, &x, fx, &g, &dir, settings) else {
            hist.clear();
            let dir = vector::scale(-1.0, &g);
            match line_search(f, &x, fx, &g, &dir, settings) {
                Some((x_new, f_new, _)) => {
                    let g_new = f.gradient(&x_new);
                    x = x_new;
                    fx = f_new;
                    g = g_new;
                    continue;
                }
                None => {
                    return Ok(QuasiNewtonResult {
                        x,
                        value: fx,
                        grad_norm: gn,
                        iterations: iter,
                        converged: false,
                    })
                }
            }
        };
        let g_new = f.gradient(&x_new);
        let s = vector::sub(&x_new, &x);
        let y = vector::sub(&g_new, &g);
        let sy = vector::dot(&s, &y);
        if sy > 1e-12 * vector::norm2(&s) * vector::norm2(&y) {
            if hist.len() == settings.memory {
                hist.pop_front();
            }
            hist.push_back((s, y, 1.0 / sy));
        }
        x = x_new;
        fx = f_new;
        g = g_new;
    }
    let gn = vector::norm_inf(&g);
    Ok(QuasiNewtonResult {
        x,
        value: fx,
        grad_norm: gn,
        iterations: settings.max_iter,
        converged: gn <= settings.grad_tol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic() -> impl Objective {
        // f(x) = ½(x₁ − 1)² + 2(x₂ + 0.5)²
        (
            |x: &[f64]| 0.5 * (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 0.5).powi(2),
            |x: &[f64]| vec![x[0] - 1.0, 4.0 * (x[1] + 0.5)],
        )
    }

    fn rosenbrock() -> impl Objective {
        (
            |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            |x: &[f64]| {
                vec![
                    -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]),
                    200.0 * (x[1] - x[0] * x[0]),
                ]
            },
        )
    }

    #[test]
    fn bfgs_solves_quadratic() {
        let r = bfgs(&quadratic(), &[5.0, 5.0], &QuasiNewtonSettings::default()).unwrap();
        assert!(r.converged);
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn lbfgs_solves_quadratic() {
        let r = lbfgs(&quadratic(), &[-3.0, 7.0], &QuasiNewtonSettings::default()).unwrap();
        assert!(r.converged);
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn bfgs_solves_rosenbrock() {
        let s = QuasiNewtonSettings {
            max_iter: 2000,
            ..Default::default()
        };
        let r = bfgs(&rosenbrock(), &[-1.2, 1.0], &s).unwrap();
        assert!(r.converged, "grad norm {}", r.grad_norm);
        assert!((r.x[0] - 1.0).abs() < 1e-5);
        assert!((r.x[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lbfgs_solves_rosenbrock() {
        let s = QuasiNewtonSettings {
            max_iter: 2000,
            ..Default::default()
        };
        let r = lbfgs(&rosenbrock(), &[-1.2, 1.0], &s).unwrap();
        assert!(r.converged, "grad norm {}", r.grad_norm);
        assert!((r.x[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lbfgs_high_dimensional_quadratic() {
        // f(x) = ½Σ (i+1)·x_i², n = 50.
        let n = 50usize;
        let f = (
            move |x: &[f64]| {
                0.5 * x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i + 1) as f64 * v * v)
                    .sum::<f64>()
            },
            move |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i + 1) as f64 * v)
                    .collect::<Vec<_>>()
            },
        );
        let x0 = vec![1.0; n];
        let r = lbfgs(&f, &x0, &QuasiNewtonSettings::default()).unwrap();
        assert!(r.converged);
        assert!(vector::norm_inf(&r.x) < 1e-6);
    }

    #[test]
    fn starting_at_optimum_returns_immediately() {
        let r = bfgs(&quadratic(), &[1.0, -0.5], &QuasiNewtonSettings::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn validates_input() {
        assert!(bfgs(&quadratic(), &[], &QuasiNewtonSettings::default()).is_err());
        assert!(bfgs(
            &quadratic(),
            &[f64::NAN, 0.0],
            &QuasiNewtonSettings::default()
        )
        .is_err());
        assert!(lbfgs(&quadratic(), &[], &QuasiNewtonSettings::default()).is_err());
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let s = QuasiNewtonSettings {
            max_iter: 2,
            ..Default::default()
        };
        let r = bfgs(&rosenbrock(), &[-1.2, 1.0], &s).unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
    }
}
