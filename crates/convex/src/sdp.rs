//! A conic-ADMM semidefinite programming solver.
//!
//! Standard primal form (the shape of the paper's Eq. 10):
//!
//! ```text
//! minimize   ⟨C, X⟩
//! subject to ⟨A_i, X⟩ = b_i,  i = 1..m
//!            X ⪰ 0
//! ```
//!
//! Splitting: `X` lives on the affine subspace, `Z` on the PSD cone, with
//! the consensus constraint `X = Z`:
//!
//! * X-update: Euclidean projection of `Z − U − C/ρ` onto `{A(X) = b}`
//!   (one pre-factorized Gram solve);
//! * Z-update: [`rcr_linalg::Matrix::psd_projection`] of `X + U`;
//! * U-update: dual ascent.
//!
//! This is a scaled-down cousin of SCS/SDPT3, adequate for the ≤ ~60×60
//! cones the experiments need.
//!
//! The per-iteration cost is dominated by the Z-update's
//! eigendecomposition. That call dispatches on cone size inside
//! `rcr-linalg` (see [`rcr_linalg::EIGH_CROSSOVER`]): small cones keep the
//! cyclic-Jacobi path bit-for-bit, larger ones take the blocked
//! tridiagonalization + implicit-QL kernel — iterate trajectories and
//! iteration counts are unchanged in the small regime and only the
//! per-iteration wall time changes in the large one.

use crate::ConvexError;
use rcr_linalg::{Cholesky, Matrix};

/// Solver settings.
#[derive(Debug, Clone)]
pub struct SdpSettings {
    /// ADMM penalty ρ.
    pub rho: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Tolerance on the consensus, constraint, and dual residuals
    /// (Frobenius norms).
    pub tol: f64,
}

impl Default for SdpSettings {
    fn default() -> Self {
        SdpSettings {
            rho: 1.0,
            max_iter: 20_000,
            tol: 1e-7,
        }
    }
}

/// Solution of an SDP.
#[derive(Debug, Clone)]
pub struct SdpSolution {
    /// The PSD primal solution (the cone-side iterate `Z`).
    pub x: Matrix,
    /// Objective `⟨C, X⟩`.
    pub objective: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual: the largest of the consensus residual
    /// `‖X − Z‖_F`, the constraint residual, and the dual residual
    /// `ρ‖Z_k − Z_{k−1}‖_F`.
    pub residual: f64,
}

/// An SDP in standard primal form.
#[derive(Debug, Clone)]
pub struct SdpProblem {
    c: Matrix,
    constraints: Vec<(Matrix, f64)>,
    n: usize,
}

impl SdpProblem {
    /// Builds a problem over `n x n` symmetric matrices.
    ///
    /// # Errors
    /// * [`ConvexError::DimensionMismatch`] when `C` or some `A_i` is not
    ///   `n x n`.
    /// * [`ConvexError::NotFinite`] for NaN/inf data.
    pub fn new(c: Matrix, constraints: Vec<(Matrix, f64)>) -> Result<Self, ConvexError> {
        let n = c.rows();
        if !c.is_square() {
            return Err(ConvexError::DimensionMismatch(format!(
                "C is {:?}",
                c.shape()
            )));
        }
        if !c.is_finite() {
            return Err(ConvexError::NotFinite);
        }
        for (i, (a, b)) in constraints.iter().enumerate() {
            if a.shape() != (n, n) {
                return Err(ConvexError::DimensionMismatch(format!(
                    "A_{i} is {:?}, expected {n}x{n}",
                    a.shape()
                )));
            }
            if !a.is_finite() || !b.is_finite() {
                return Err(ConvexError::NotFinite);
            }
        }
        Ok(SdpProblem { c, constraints, n })
    }

    /// Cone dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of equality constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Constraint residual `max_i |⟨A_i, X⟩ − b_i|`.
    pub fn constraint_residual(&self, x: &Matrix) -> f64 {
        self.constraints
            .iter()
            .map(|(a, b)| (a.inner(x).unwrap_or(f64::NAN) - b).abs())
            .fold(0.0, f64::max)
    }

    // Internal accessors for the warm-start layer.
    pub(crate) fn c(&self) -> &Matrix {
        &self.c
    }
    pub(crate) fn constraints(&self) -> &[(Matrix, f64)] {
        &self.constraints
    }

    /// Factorizes the Gram matrix `G_ij = ⟨A_i, A_j⟩` of the affine
    /// projection (`None` for an unconstrained cone). Depends only on the
    /// constraint *matrices*, not on `C` or `b`, so the warm cache can
    /// reuse it across a drifting trace.
    ///
    /// # Errors
    /// [`ConvexError::Infeasible`] when the constraint matrices are
    /// linearly dependent (singular Gram).
    pub(crate) fn gram_factor(&self) -> Result<Option<Cholesky>, ConvexError> {
        let m = self.constraints.len();
        if m == 0 {
            return Ok(None);
        }
        let gram = Matrix::from_fn(m, m, |i, j| {
            self.constraints[i]
                .0
                .inner(&self.constraints[j].0)
                .unwrap_or(f64::NAN)
        });
        Cholesky::new(&gram)
            .map(Some)
            .map_err(|_| ConvexError::Infeasible)
    }

    /// Solves the SDP from a cold start.
    ///
    /// # Errors
    /// * [`ConvexError::Infeasible`] when the affine system `A(X) = b` is
    ///   itself inconsistent (detected at Gram factorization).
    /// * [`ConvexError::NonConvergence`] when the iteration budget runs
    ///   out — typical for infeasible or unbounded cone problems.
    pub fn solve(&self, settings: &SdpSettings) -> Result<SdpSolution, ConvexError> {
        self.solve_with(settings, None, None).map(|(sol, _)| sol)
    }

    /// The full-control solve: optional warm `(Z, U)` seed (the cone-side
    /// iterate and scaled dual of a previous solve) and an optional
    /// pre-computed Gram factorization from [`SdpProblem::gram_factor`].
    /// The warm cache keys the factor on a bit-exact hash of the
    /// constraint matrices, which is exactly its validity condition.
    ///
    /// Returns the solution together with the final scaled dual `U`, so
    /// callers (the warm cache) can seed the next solve's dual — seeding
    /// `Z` alone leaves the dual residual to re-converge from scratch.
    pub(crate) fn solve_with(
        &self,
        settings: &SdpSettings,
        warm: Option<(&Matrix, &Matrix)>,
        gram: Option<&Cholesky>,
    ) -> Result<(SdpSolution, Matrix), ConvexError> {
        let n = self.n;
        let rho = settings.rho;
        if !(rho > 0.0) {
            return Err(ConvexError::InvalidParameter("rho must be positive".into()));
        }
        if let Some((z0, u0)) = warm {
            if z0.shape() != (n, n) || u0.shape() != (n, n) {
                return Err(ConvexError::DimensionMismatch(format!(
                    "warm (Z, U) are {:?}, {:?}, expected {n}x{n}",
                    z0.shape(),
                    u0.shape()
                )));
            }
            if !z0.is_finite() || !u0.is_finite() {
                return Err(ConvexError::NotFinite);
            }
        }

        let owned;
        let chol: Option<&Cholesky> = match gram {
            Some(f) => Some(f),
            None => {
                owned = self.gram_factor()?;
                owned.as_ref()
            }
        };

        let proj_affine = |mat: &Matrix| -> Result<Matrix, ConvexError> {
            let Some(chol) = chol else {
                return Ok(mat.clone());
            };
            // X = M − Σ w_i A_i with G w = A(M) − b.
            let resid: Vec<f64> = self
                .constraints
                .iter()
                .map(|(a, b)| a.inner(mat).map(|v| v - b))
                .collect::<Result<_, _>>()?;
            let w = chol.solve(&resid)?;
            let mut out = mat.clone();
            for ((a, _), wi) in self.constraints.iter().zip(&w) {
                // In-place axpy replaces the historical `out - a·wᵢ`
                // temporaries; x + (-w)·a and x - w·a are bitwise equal.
                rcr_kernels::axpy(-wi, a.as_slice(), out.as_mut_slice());
            }
            Ok(out)
        };

        let (mut z, mut u) = match warm {
            Some((z0, u0)) => (z0.clone(), u0.clone()),
            None => (Matrix::zeros(n, n), Matrix::zeros(n, n)),
        };
        let mut residual = f64::INFINITY;
        for iter in 0..settings.max_iter {
            // X-update: project Z − U − C/ρ onto the affine subspace.
            let target = &(&z - &u) - &(&self.c * (1.0 / rho));
            let x = proj_affine(&target)?;
            // Z-update: PSD projection of X + U.
            let z_new = (&x + &u).psd_projection()?;
            // Dual update.
            u = &(&u + &x) - &z_new;
            let diff = (&x - &z_new).frobenius_norm();
            // The ADMM dual residual ρ‖Z_k − Z_{k−1}‖_F. Without it the
            // solve can stop at iteration 1: from a zero (or stale warm)
            // seed the first affine projection is sometimes already PSD,
            // making the consensus residual ~0 at a feasible but
            // suboptimal point.
            let dual = rho * (&z_new - &z).frobenius_norm();
            z = z_new;
            residual = diff.max(self.constraint_residual(&z)).max(dual);
            if residual < settings.tol {
                return Ok((
                    SdpSolution {
                        objective: self.c.inner(&z)?,
                        x: z,
                        iterations: iter + 1,
                        residual,
                    },
                    u,
                ));
            }
        }
        Err(ConvexError::NonConvergence {
            iterations: settings.max_iter,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e_ii(n: usize, i: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        m[(i, i)] = 1.0;
        m
    }

    #[test]
    fn diagonal_sdp_reduces_to_lp() {
        // min x₁ + 2x₂ s.t. x₁ + x₂ = 1, X = diag ⪰ 0 → X = diag(1, 0).
        let c = Matrix::from_diag(&[1.0, 2.0]);
        let sum = Matrix::identity(2);
        // Also force off-diagonals to zero so the solution stays diagonal.
        let mut off = Matrix::zeros(2, 2);
        off[(0, 1)] = 1.0;
        off[(1, 0)] = 1.0;
        let prob = SdpProblem::new(c, vec![(sum, 1.0), (off, 0.0)]).unwrap();
        let sol = prob.solve(&SdpSettings::default()).unwrap();
        assert!((sol.x[(0, 0)] - 1.0).abs() < 1e-4, "{}", sol.x);
        assert!(sol.x[(1, 1)].abs() < 1e-4);
        assert!((sol.objective - 1.0).abs() < 1e-4);
    }

    #[test]
    fn trace_one_min_eigenvalue_objective() {
        // min ⟨C, X⟩ s.t. tr X = 1, X ⪰ 0 gives λ_min(C) (extreme point is
        // the eigenvector outer product).
        let c = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap(); // eigs 1, 3
        let prob = SdpProblem::new(c, vec![(Matrix::identity(2), 1.0)]).unwrap();
        let sol = prob.solve(&SdpSettings::default()).unwrap();
        assert!(
            (sol.objective - 1.0).abs() < 1e-4,
            "objective {}",
            sol.objective
        );
        // X should be rank-1 on the eigenvector (1,-1)/√2.
        assert!((sol.x[(0, 1)] + 0.5).abs() < 1e-3, "{}", sol.x);
    }

    #[test]
    fn solution_is_psd_and_feasible() {
        let c = Matrix::from_diag(&[1.0, 1.0, 1.0]);
        let prob = SdpProblem::new(c, vec![(e_ii(3, 0), 0.5), (e_ii(3, 1), 0.25)]).unwrap();
        let sol = prob.solve(&SdpSettings::default()).unwrap();
        assert!(sol.x.min_eigenvalue().unwrap() > -1e-6);
        assert!(prob.constraint_residual(&sol.x) < 1e-6);
        // Minimizing trace with fixed diagonal entries: X₃₃ → 0.
        assert!(sol.x[(2, 2)].abs() < 1e-4);
    }

    #[test]
    fn unconstrained_psd_min_of_positive_c_is_zero() {
        let c = Matrix::from_diag(&[1.0, 2.0]);
        let prob = SdpProblem::new(c, vec![]).unwrap();
        let sol = prob.solve(&SdpSettings::default()).unwrap();
        assert!(sol.objective.abs() < 1e-6);
        assert!(sol.x.frobenius_norm() < 1e-5);
    }

    #[test]
    fn inconsistent_affine_detected_or_divergent() {
        // Same A with two different right-hand sides. The Gram matrix is
        // singular, so Cholesky fails → Infeasible.
        let a = e_ii(2, 0);
        let prob = SdpProblem::new(Matrix::identity(2), vec![(a.clone(), 1.0), (a, 2.0)]).unwrap();
        assert!(matches!(
            prob.solve(&SdpSettings::default()),
            Err(ConvexError::Infeasible) | Err(ConvexError::NonConvergence { .. })
        ));
    }

    #[test]
    fn validation() {
        assert!(SdpProblem::new(Matrix::zeros(2, 3), vec![]).is_err());
        assert!(SdpProblem::new(Matrix::identity(2), vec![(Matrix::identity(3), 1.0)]).is_err());
        let mut c = Matrix::identity(2);
        c[(0, 0)] = f64::NAN;
        assert!(SdpProblem::new(c, vec![]).is_err());
    }

    #[test]
    fn negative_rho_rejected() {
        let prob = SdpProblem::new(Matrix::identity(2), vec![]).unwrap();
        let s = SdpSettings {
            rho: -1.0,
            ..Default::default()
        };
        assert!(prob.solve(&s).is_err());
    }
}
