//! A log-barrier interior-point solver for the convex QCQP of Eq. 7:
//!
//! ```text
//! minimize   ½ xᵀ P₀ x + q₀ᵀ x + r₀
//! subject to ½ xᵀ Pᵢ x + qᵢᵀ x + rᵢ ≤ 0,  i = 1..m
//!            A x = b
//! ```
//!
//! The paper's "two envelopes" gate is enforced literally: each `P_i` must
//! be positive semidefinite (`P_i ∈ S₊ⁿ`), otherwise construction fails
//! with [`ConvexError::NotConvex`] — that problem belongs to the
//! relaxation pipeline ([`crate::rankmin`]), not to this solver.
//!
//! The implementation is the textbook barrier method: an outer loop scales
//! the barrier parameter `t` by `mu`, an inner (feasible-start, equality-
//! constrained) Newton iteration solves each centering problem, and a
//! phase-I pass manufactures the strictly feasible start when the caller
//! has none.

use crate::ConvexError;
use rcr_linalg::{vector, Matrix};

/// A quadratic form `½ xᵀ P x + qᵀ x + r`.
#[derive(Debug, Clone)]
pub struct QuadraticForm {
    /// Symmetric matrix `P`.
    pub p: Matrix,
    /// Linear coefficient `q`.
    pub q: Vec<f64>,
    /// Constant offset `r`.
    pub r: f64,
}

impl QuadraticForm {
    /// Builds a form, validating shape, symmetry and finiteness.
    ///
    /// # Errors
    /// * [`ConvexError::DimensionMismatch`] / [`ConvexError::NotFinite`] on
    ///   malformed data.
    pub fn new(p: Matrix, q: Vec<f64>, r: f64) -> Result<Self, ConvexError> {
        let n = q.len();
        if p.shape() != (n, n) {
            return Err(ConvexError::DimensionMismatch(format!(
                "P is {:?}, expected {n}x{n}",
                p.shape()
            )));
        }
        if !p.is_finite() || !vector::is_finite(&q) || !r.is_finite() {
            return Err(ConvexError::NotFinite);
        }
        if !p.is_symmetric(1e-8 * p.max_abs().max(1.0)) {
            return Err(ConvexError::NotConvex("P must be symmetric".into()));
        }
        Ok(QuadraticForm { p, q, r })
    }

    /// A purely linear form `qᵀx + r`.
    pub fn linear(q: Vec<f64>, r: f64) -> Self {
        let n = q.len();
        QuadraticForm {
            p: Matrix::zeros(n, n),
            q,
            r,
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.q.len()
    }

    /// Evaluates the form at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        0.5 * self.p.quadratic_form(x).unwrap_or(f64::NAN) + vector::dot(&self.q, x) + self.r
    }

    /// Gradient `P x + q`.
    pub fn grad(&self, x: &[f64]) -> Vec<f64> {
        let mut g = self.p.matvec(x).unwrap_or_else(|_| vec![f64::NAN; x.len()]);
        vector::axpy(1.0, &self.q, &mut g);
        g
    }

    /// True when `P ⪰ 0` (up to tolerance) — the Eq. 7 convexity test.
    pub fn is_convex(&self, tol: f64) -> bool {
        match self.p.min_eigenvalue() {
            Ok(min) => min >= -tol,
            Err(_) => false,
        }
    }
}

/// Solver settings for the barrier method.
#[derive(Debug, Clone)]
pub struct QcqpSettings {
    /// Initial barrier parameter.
    pub t0: f64,
    /// Barrier multiplier per outer iteration.
    pub mu: f64,
    /// Target duality-gap bound `m / t`.
    pub tol: f64,
    /// Newton iterations per centering step.
    pub max_newton: usize,
    /// Maximum outer (centering) steps.
    pub max_outer: usize,
}

impl Default for QcqpSettings {
    fn default() -> Self {
        QcqpSettings {
            t0: 1.0,
            mu: 20.0,
            tol: 1e-8,
            max_newton: 80,
            max_outer: 60,
        }
    }
}

/// Solution of a QCQP.
#[derive(Debug, Clone)]
pub struct QcqpSolution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Upper bound on the duality gap (`m / t_final`).
    pub gap_bound: f64,
    /// Total Newton iterations across all centering steps.
    pub newton_iterations: usize,
}

/// A convex QCQP (Eq. 7).
#[derive(Debug, Clone)]
pub struct QcqpProblem {
    objective: QuadraticForm,
    constraints: Vec<QuadraticForm>,
    equality: Option<(Matrix, Vec<f64>)>,
}

/// PSD tolerance used by the convexity gate.
const PSD_TOL: f64 = 1e-8;

impl QcqpProblem {
    /// Builds a QCQP, enforcing the Eq. 7 convexity conditions on the
    /// objective and every constraint.
    ///
    /// # Errors
    /// * [`ConvexError::NotConvex`] when any `P_i` has a negative
    ///   eigenvalue beyond tolerance.
    /// * [`ConvexError::DimensionMismatch`] on inconsistent dimensions.
    pub fn new(
        objective: QuadraticForm,
        constraints: Vec<QuadraticForm>,
        equality: Option<(Matrix, Vec<f64>)>,
    ) -> Result<Self, ConvexError> {
        let n = objective.dim();
        if !objective.is_convex(PSD_TOL * objective.p.max_abs().max(1.0)) {
            return Err(ConvexError::NotConvex("objective P₀ is indefinite".into()));
        }
        for (i, c) in constraints.iter().enumerate() {
            if c.dim() != n {
                return Err(ConvexError::DimensionMismatch(format!(
                    "constraint {i} has dim {}, expected {n}",
                    c.dim()
                )));
            }
            if !c.is_convex(PSD_TOL * c.p.max_abs().max(1.0)) {
                return Err(ConvexError::NotConvex(format!(
                    "constraint {i} P is indefinite"
                )));
            }
        }
        if let Some((a, b)) = &equality {
            if a.cols() != n || a.rows() != b.len() {
                return Err(ConvexError::DimensionMismatch(format!(
                    "equality system is {:?} with rhs {}",
                    a.shape(),
                    b.len()
                )));
            }
            if !a.is_finite() || !vector::is_finite(b) {
                return Err(ConvexError::NotFinite);
            }
        }
        Ok(QcqpProblem {
            objective,
            constraints,
            equality,
        })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.dim()
    }

    /// Number of inequality constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Maximum constraint violation at `x` (≤ 0 means feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ineq = self
            .constraints
            .iter()
            .map(|c| c.eval(x))
            .fold(f64::NEG_INFINITY, f64::max);
        let eq = match &self.equality {
            Some((a, b)) => {
                let ax = a.matvec(x).unwrap_or_else(|_| vec![f64::NAN; b.len()]);
                vector::norm_inf(&vector::sub(&ax, b))
            }
            None => 0.0,
        };
        ineq.max(eq)
    }

    /// Solves from a caller-supplied strictly feasible start.
    ///
    /// # Errors
    /// * [`ConvexError::Infeasible`] when `x0` is not strictly feasible
    ///   (every `f_i(x0) < 0` and `A x0 = b`).
    /// * [`ConvexError::NonConvergence`] when Newton stalls.
    pub fn solve_with_start(
        &self,
        x0: &[f64],
        settings: &QcqpSettings,
    ) -> Result<QcqpSolution, ConvexError> {
        if x0.len() != self.num_vars() {
            return Err(ConvexError::DimensionMismatch(format!(
                "x0 has {} entries, expected {}",
                x0.len(),
                self.num_vars()
            )));
        }
        let strict = self.constraints.iter().all(|c| c.eval(x0) < 0.0);
        let eq_ok = match &self.equality {
            Some((a, b)) => {
                let ax = a.matvec(x0)?;
                vector::norm_inf(&vector::sub(&ax, b)) < 1e-8
            }
            None => true,
        };
        if !strict || !eq_ok {
            return Err(ConvexError::Infeasible);
        }
        self.barrier(x0.to_vec(), settings)
    }

    /// Solves, manufacturing a strictly feasible start by the standard
    /// phase-I problem `min s  s.t. f_i(x) ≤ s, Ax = b`.
    ///
    /// # Errors
    /// * [`ConvexError::Infeasible`] when phase-I cannot drive `s` below 0.
    /// * Propagates barrier-method errors.
    pub fn solve(&self, settings: &QcqpSettings) -> Result<QcqpSolution, ConvexError> {
        let n = self.num_vars();
        // Starting x: satisfy Ax = b by least squares (or zero).
        let x_init = match &self.equality {
            Some((a, b)) => {
                if a.rows() >= a.cols() {
                    a.qr()?.solve_least_squares(b)?
                } else {
                    // Under-determined: minimum-norm solution via AᵀA on Aᵀ.
                    let at = a.transpose();
                    let aat = a.matmul(&at)?;
                    let w = aat.solve(b)?;
                    at.matvec(&w)?
                }
            }
            None => vec![0.0; n],
        };
        if self.constraints.iter().all(|c| c.eval(&x_init) < -1e-10) {
            return self.barrier(x_init, settings);
        }

        // Phase I over z = (x, s).
        let m = self.constraints.len();
        let mut phase1_cons = Vec::with_capacity(m);
        for c in &self.constraints {
            // f_i(x) - s ≤ 0 in the lifted space.
            let mut p = Matrix::zeros(n + 1, n + 1);
            p.set_block(0, 0, &c.p);
            let mut q = c.q.clone();
            q.push(-1.0);
            phase1_cons.push(QuadraticForm { p, q, r: c.r });
        }
        let mut obj_q = vec![0.0; n + 1];
        obj_q[n] = 1.0;
        let phase1_eq = self.equality.as_ref().map(|(a, b)| {
            let mut aw = Matrix::zeros(a.rows(), n + 1);
            aw.set_block(0, 0, a);
            (aw, b.clone())
        });
        let phase1 = QcqpProblem {
            objective: QuadraticForm::linear(obj_q, 0.0),
            constraints: phase1_cons,
            equality: phase1_eq,
        };
        let s0 = self
            .constraints
            .iter()
            .map(|c| c.eval(&x_init))
            .fold(f64::NEG_INFINITY, f64::max)
            + 1.0;
        let mut z0 = x_init;
        z0.push(s0);
        let p1 = phase1.barrier(z0, settings)?;
        let s_star = p1.x[n];
        if s_star >= -1e-10 {
            return Err(ConvexError::Infeasible);
        }
        let x0 = p1.x[..n].to_vec();
        self.barrier(x0, settings)
    }

    // Internal accessors for the warm-start layer.
    pub(crate) fn objective(&self) -> &QuadraticForm {
        &self.objective
    }
    pub(crate) fn constraints(&self) -> &[QuadraticForm] {
        &self.constraints
    }
    pub(crate) fn equality(&self) -> Option<&(Matrix, Vec<f64>)> {
        self.equality.as_ref()
    }

    /// Warm-started barrier solve: seeds the primal iterate from `x0`
    /// (skipping phase-I entirely) and starts the barrier parameter at
    /// `t0` instead of `settings.t0`. In the barrier method the slack of
    /// constraint `i` is `-f_i(x)`, so a strictly feasible primal seed
    /// *is* a centered-slack seed, and a boosted `t0` carries over the
    /// dual progress of the previous solve (whose final `t` is
    /// `m / gap_bound`) — together they replace the cold solver's outer
    /// homotopy from `t0 = 1`.
    ///
    /// # Errors
    /// * [`ConvexError::Infeasible`] when `x0` is not strictly feasible
    ///   with margin (the caller falls back to a cold solve).
    /// * [`ConvexError::InvalidParameter`] for a non-positive `t0`.
    pub(crate) fn solve_warm_start(
        &self,
        x0: &[f64],
        t0: f64,
        settings: &QcqpSettings,
    ) -> Result<QcqpSolution, ConvexError> {
        if x0.len() != self.num_vars() {
            return Err(ConvexError::DimensionMismatch(format!(
                "x0 has {} entries, expected {}",
                x0.len(),
                self.num_vars()
            )));
        }
        if !(t0 > 0.0) || !t0.is_finite() {
            return Err(ConvexError::InvalidParameter("t0 must be positive".into()));
        }
        // Strictness margin: a cached solution hugging the boundary after
        // drift would make the first centering step numerically hopeless.
        let strict = self.constraints.iter().all(|c| c.eval(x0) < -1e-10);
        let eq_ok = match &self.equality {
            Some((a, b)) => {
                let ax = a.matvec(x0)?;
                vector::norm_inf(&vector::sub(&ax, b)) < 1e-8
            }
            None => true,
        };
        if !strict || !eq_ok || !vector::is_finite(x0) {
            return Err(ConvexError::Infeasible);
        }
        let mut warm_settings = settings.clone();
        warm_settings.t0 = t0;
        self.barrier(x0.to_vec(), &warm_settings)
    }

    /// The barrier outer loop; `x` must be strictly feasible.
    fn barrier(
        &self,
        mut x: Vec<f64>,
        settings: &QcqpSettings,
    ) -> Result<QcqpSolution, ConvexError> {
        let m = self.constraints.len().max(1) as f64;
        let mut t = settings.t0;
        let mut total_newton = 0usize;
        for _outer in 0..settings.max_outer {
            let used = self.center(&mut x, t, settings)?;
            total_newton += used;
            if m / t < settings.tol {
                return Ok(QcqpSolution {
                    objective: self.objective.eval(&x),
                    gap_bound: m / t,
                    x,
                    newton_iterations: total_newton,
                });
            }
            t *= settings.mu;
        }
        Err(ConvexError::NonConvergence {
            iterations: total_newton,
            residual: m / t,
        })
    }

    /// Newton centering for fixed `t`; returns iterations used.
    fn center(
        &self,
        x: &mut Vec<f64>,
        t: f64,
        settings: &QcqpSettings,
    ) -> Result<usize, ConvexError> {
        let n = self.num_vars();
        let p_eq = self.equality.as_ref().map(|(a, _)| a.rows()).unwrap_or(0);
        // Work with the 1/t-scaled objective f₀ + φ/t so the KKT system
        // stays well-scaled as t grows (the unscaled t·f₀ + φ form drives
        // the equality-block Schur complement below pivot tolerance).
        let inv_t = 1.0 / t;
        for iter in 0..settings.max_newton {
            let mut grad = self.objective.grad(x);
            let mut hess = self.objective.p.clone();
            for c in &self.constraints {
                let fi = c.eval(x);
                debug_assert!(fi < 0.0, "Newton iterate left the interior");
                let gi = c.grad(x);
                let inv = -inv_t / fi; // (1/t)·1/(-f_i) > 0
                vector::axpy(inv, &gi, &mut grad);
                // Hessian: (1/t)(P_i/(-f_i) + g_i g_iᵀ / f_i²).
                let inv2 = inv * (-1.0 / fi);
                for r in 0..n {
                    for cidx in 0..n {
                        hess[(r, cidx)] += c.p[(r, cidx)] * inv + gi[r] * gi[cidx] * inv2;
                    }
                }
            }
            // Tiny Tikhonov term keeps the KKT system nonsingular when the
            // barrier Hessian is flat along some direction.
            for i in 0..n {
                hess[(i, i)] += 1e-10;
            }

            // KKT system for the equality-constrained Newton step.
            let (dx, _w) = if let Some((a, _)) = &self.equality {
                let mut kkt = Matrix::zeros(n + p_eq, n + p_eq);
                kkt.set_block(0, 0, &hess);
                kkt.set_block(n, 0, a);
                kkt.set_block(0, n, &a.transpose());
                let mut rhs = vec![0.0; n + p_eq];
                for i in 0..n {
                    rhs[i] = -grad[i];
                }
                let sol = kkt.solve(&rhs)?;
                (sol[..n].to_vec(), sol[n..].to_vec())
            } else {
                (hess.solve(&vector::scale(-1.0, &grad))?, Vec::new())
            };

            // Newton decrement.
            let lambda2 = -vector::dot(&grad, &dx);
            if lambda2 / 2.0 < 1e-12 {
                return Ok(iter);
            }

            // Backtracking: stay strictly feasible, then Armijo (in the
            // same 1/t scaling as the Newton system).
            let f0 = self.objective.eval(x) + inv_t * self.barrier_phi(x);
            let mut step = 1.0;
            let mut accepted = false;
            for _ in 0..60 {
                let cand: Vec<f64> = x.iter().zip(&dx).map(|(xi, di)| xi + step * di).collect();
                if self.constraints.iter().all(|c| c.eval(&cand) < 0.0) {
                    let fc = self.objective.eval(&cand) + inv_t * self.barrier_phi(&cand);
                    if fc <= f0 - 0.25 * step * lambda2 {
                        *x = cand;
                        accepted = true;
                        break;
                    }
                }
                step *= 0.5;
            }
            if !accepted {
                // Line search failed: already as centered as float allows.
                return Ok(iter + 1);
            }
        }
        Ok(settings.max_newton)
    }

    fn barrier_phi(&self, x: &[f64]) -> f64 {
        self.constraints.iter().map(|c| -(-c.eval(x)).ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball_constraint(center: &[f64], radius: f64) -> QuadraticForm {
        // ½‖x − c‖² − ½r² ≤ 0  ⇔  ‖x − c‖ ≤ r.
        let n = center.len();
        let q: Vec<f64> = center.iter().map(|v| -v).collect();
        let r = 0.5 * vector::dot(center, center) - 0.5 * radius * radius;
        QuadraticForm {
            p: Matrix::identity(n),
            q,
            r,
        }
    }

    #[test]
    fn quadratic_form_eval_and_grad() {
        let f = QuadraticForm::new(Matrix::from_diag(&[2.0, 4.0]), vec![1.0, -1.0], 3.0).unwrap();
        assert_eq!(f.eval(&[1.0, 1.0]), 0.5 * 6.0 + 0.0 + 3.0);
        assert_eq!(f.grad(&[1.0, 1.0]), vec![3.0, 3.0]);
        assert!(f.is_convex(1e-10));
    }

    #[test]
    fn convexity_gate_rejects_indefinite_constraint() {
        let obj = QuadraticForm::new(Matrix::identity(2), vec![0.0; 2], 0.0).unwrap();
        let bad = QuadraticForm::new(Matrix::from_diag(&[1.0, -1.0]), vec![0.0; 2], -1.0).unwrap();
        assert!(matches!(
            QcqpProblem::new(obj, vec![bad], None),
            Err(ConvexError::NotConvex(_))
        ));
    }

    #[test]
    fn unconstrained_center_of_ball() {
        // min ½‖x − a‖² s.t. ‖x‖ ≤ 10, a inside: solution a.
        let a = [1.0, -2.0];
        let obj = QuadraticForm::new(Matrix::identity(2), vec![-a[0], -a[1]], 0.0).unwrap();
        let prob = QcqpProblem::new(obj, vec![ball_constraint(&[0.0, 0.0], 10.0)], None).unwrap();
        let sol = prob.solve(&QcqpSettings::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-5, "{:?}", sol.x);
        assert!((sol.x[1] + 2.0).abs() < 1e-5, "{:?}", sol.x);
    }

    #[test]
    fn active_ball_constraint_projects_to_boundary() {
        // min ½‖x − (3,0)‖² s.t. ‖x‖ ≤ 1: solution (1, 0).
        let obj = QuadraticForm::new(Matrix::identity(2), vec![-3.0, 0.0], 0.0).unwrap();
        let prob = QcqpProblem::new(obj, vec![ball_constraint(&[0.0, 0.0], 1.0)], None).unwrap();
        let sol = prob.solve(&QcqpSettings::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "{:?}", sol.x);
        assert!(sol.x[1].abs() < 1e-4);
        assert!(sol.gap_bound < 1e-7);
    }

    #[test]
    fn equality_constrained_qcqp() {
        // min ½‖x‖² s.t. x₁ + x₂ = 2, ‖x‖ ≤ 10 → (1,1).
        let obj = QuadraticForm::new(Matrix::identity(2), vec![0.0, 0.0], 0.0).unwrap();
        let a = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let prob = QcqpProblem::new(
            obj,
            vec![ball_constraint(&[0.0, 0.0], 10.0)],
            Some((a, vec![2.0])),
        )
        .unwrap();
        let sol = prob.solve(&QcqpSettings::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "{:?}", sol.x);
        assert!((sol.x[1] - 1.0).abs() < 1e-4, "{:?}", sol.x);
    }

    #[test]
    fn two_ball_intersection() {
        // Balls around (±1, 0) radius 1.5; minimize distance to (0, 5):
        // solution on the lens boundary, x₁ = 0 by symmetry.
        let obj = QuadraticForm::new(Matrix::identity(2), vec![0.0, -5.0], 0.0).unwrap();
        let prob = QcqpProblem::new(
            obj,
            vec![
                ball_constraint(&[1.0, 0.0], 1.5),
                ball_constraint(&[-1.0, 0.0], 1.5),
            ],
            None,
        )
        .unwrap();
        let sol = prob.solve(&QcqpSettings::default()).unwrap();
        assert!(sol.x[0].abs() < 1e-4, "{:?}", sol.x);
        // Top of the lens: x₂ = sqrt(1.5² − 1) = sqrt(1.25).
        assert!((sol.x[1] - 1.25f64.sqrt()).abs() < 1e-4, "{:?}", sol.x);
        assert!(prob.max_violation(&sol.x) < 1e-8);
    }

    #[test]
    fn phase1_detects_infeasibility() {
        // Disjoint balls: radius 0.5 around (±2, 0).
        let obj = QuadraticForm::new(Matrix::identity(2), vec![0.0, 0.0], 0.0).unwrap();
        let prob = QcqpProblem::new(
            obj,
            vec![
                ball_constraint(&[2.0, 0.0], 0.5),
                ball_constraint(&[-2.0, 0.0], 0.5),
            ],
            None,
        )
        .unwrap();
        assert!(matches!(
            prob.solve(&QcqpSettings::default()),
            Err(ConvexError::Infeasible)
        ));
    }

    #[test]
    fn solve_with_start_requires_strict_feasibility() {
        let obj = QuadraticForm::new(Matrix::identity(2), vec![0.0, 0.0], 0.0).unwrap();
        let prob = QcqpProblem::new(obj, vec![ball_constraint(&[0.0, 0.0], 1.0)], None).unwrap();
        // On the boundary: not strict.
        assert!(matches!(
            prob.solve_with_start(&[1.0, 0.0], &QcqpSettings::default()),
            Err(ConvexError::Infeasible)
        ));
        // Strictly inside: fine.
        assert!(prob
            .solve_with_start(&[0.1, 0.1], &QcqpSettings::default())
            .is_ok());
    }

    #[test]
    fn linear_objective_over_ball_reaches_boundary() {
        // min  -x₁  s.t. ‖x‖ ≤ 2 → x = (2, 0).
        let obj = QuadraticForm::linear(vec![-1.0, 0.0], 0.0);
        let prob = QcqpProblem::new(obj, vec![ball_constraint(&[0.0, 0.0], 2.0)], None).unwrap();
        let sol = prob.solve(&QcqpSettings::default()).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-4, "{:?}", sol.x);
    }

    #[test]
    fn matches_qp_solver_on_shared_problem() {
        // Pure QP posed to both solvers: min ½xᵀx − (1,2)ᵀx, ‖x‖ ≤ 10.
        let obj = QuadraticForm::new(Matrix::identity(2), vec![-1.0, -2.0], 0.0).unwrap();
        let prob = QcqpProblem::new(obj, vec![ball_constraint(&[0.0, 0.0], 10.0)], None).unwrap();
        let sol = prob.solve(&QcqpSettings::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-5 && (sol.x[1] - 2.0).abs() < 1e-5);
        assert!((sol.objective - (-2.5)).abs() < 1e-6);
    }
}
