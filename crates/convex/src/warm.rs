//! Warm-start and solution-reuse layer for the convex solvers.
//!
//! At production scale most solve requests are near-duplicates: the same
//! cell resolved every scheduling interval with a slowly drifting channel.
//! This module exploits that redundancy. A [`WarmCache`] fingerprints each
//! problem instance — a *structural* hash of the dimensions and sparsity
//! patterns plus a *quantized coefficient digest* that tolerates small
//! drift — and keeps a bounded, deterministic LRU of prior solutions and
//! reusable factorizations per solver family:
//!
//! * **ADMM-QP** ([`crate::qp`]): seeds `x`/`y`/`z` from the nearest
//!   cached solution and reuses the condensed KKT Cholesky whenever
//!   `(P, A, ρ, σ)` are bit-identical; a rank-one channel perturbation
//!   takes the O(n²) [`rcr_linalg::Cholesky::rank_one_update`] path
//!   instead of the O(n³) refactorize.
//! * **Interior-point QCQP** ([`crate::qcqp`]): seeds the primal from the
//!   cached solution (in the barrier method a strictly feasible primal is
//!   a centered-slack seed) and restarts the barrier parameter near the
//!   previous solve's final `t`, skipping phase-I and most of the outer
//!   homotopy.
//! * **Conic-ADMM SDP** ([`crate::sdp`]): seeds the cone-side iterate `Z`
//!   and the scaled dual `U`, and reuses the affine-projection Gram
//!   Cholesky when the constraint matrices are bit-identical.
//!
//! Warm solves run to the *same* stopping tolerance as cold solves — the
//! layer trades iterations, never accuracy. Every lookup, update and
//! eviction is deterministic (ordered maps, an explicit recency clock, no
//! hash-iteration order), so a fixed request trace produces bit-identical
//! results at any cache size and regardless of when entries were evicted.

use crate::qcqp::{QcqpProblem, QcqpSettings, QcqpSolution};
use crate::qp::{QpProblem, QpSettings, QpSolution, QpWarmStart};
use crate::sdp::{SdpProblem, SdpSettings, SdpSolution};
use crate::ConvexError;
use rcr_linalg::{Cholesky, Matrix};
use std::collections::BTreeMap;

/// Default number of cached entries per solver family.
pub const DEFAULT_CAPACITY: usize = 64;

/// Counters describing how the cache has been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStats {
    /// Lookups that found a structurally matching entry to warm-start from.
    pub hits: u64,
    /// Lookups that found nothing and solved cold.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Hits that additionally reused a cached factorization verbatim.
    pub factorization_reuses: u64,
    /// Factorizations refreshed by a rank-one update instead of a
    /// refactorize.
    pub rank_one_updates: u64,
}

/// What the cache did for one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReport {
    /// A cached entry seeded the iteration.
    pub hit: bool,
    /// The entry's digest matched the instance exactly (no drift since it
    /// was stored).
    pub exact: bool,
    /// A cached factorization was reused verbatim.
    pub factorization_reused: bool,
    /// The factorization was refreshed by a rank-one update.
    pub rank_one_updated: bool,
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Running hash accumulator (splitmix64 compression per word).
#[derive(Debug, Clone, Copy)]
struct Hasher(u64);

impl Hasher {
    fn new(seed: u64) -> Self {
        Hasher(splitmix64(seed))
    }
    fn word(&mut self, v: u64) {
        self.0 = splitmix64(self.0 ^ v);
    }
    fn usize(&mut self, v: usize) {
        self.word(v as u64);
    }
    /// Exact bit pattern of a float (normalizing -0.0 to 0.0 so equal
    /// values always hash equally).
    fn f64_exact(&mut self, v: f64) {
        self.word((v + 0.0).to_bits());
    }
    /// Coarse quantization: sign, exponent and the top 5 mantissa bits
    /// (~3% relative precision), so a slowly drifting coefficient keeps
    /// its digest until the drift accumulates.
    fn f64_quantized(&mut self, v: f64) {
        self.word((v + 0.0).to_bits() >> 47);
    }
    fn finish(self) -> u64 {
        self.0
    }
}

fn hash_matrix_structure(h: &mut Hasher, m: &Matrix) {
    h.usize(m.rows());
    h.usize(m.cols());
    // Sparsity pattern packed 64 entries per word.
    let mut word = 0u64;
    let mut bit = 0u32;
    for v in m.as_slice() {
        if *v != 0.0 {
            word |= 1 << bit;
        }
        bit += 1;
        if bit == 64 {
            h.word(word);
            word = 0;
            bit = 0;
        }
    }
    if bit > 0 {
        h.word(word);
    }
}

fn hash_matrix_quantized(h: &mut Hasher, m: &Matrix) {
    for v in m.as_slice() {
        h.f64_quantized(*v);
    }
}

fn hash_matrix_exact(h: &mut Hasher, m: &Matrix) {
    h.usize(m.rows());
    h.usize(m.cols());
    for v in m.as_slice() {
        h.f64_exact(*v);
    }
}

fn hash_slice_quantized(h: &mut Hasher, s: &[f64]) {
    h.usize(s.len());
    for v in s {
        h.f64_quantized(*v);
    }
}

/// Combined key: structural hash in the high 64 bits (so all digests of
/// one structure are contiguous under the ordered map), digest in the low.
fn key_of(structural: u64, digest: u64) -> u128 {
    (u128::from(structural) << 64) | u128::from(digest)
}

fn structure_range(structural: u64) -> std::ops::RangeInclusive<u128> {
    key_of(structural, 0)..=key_of(structural, u64::MAX)
}

fn fingerprint_qp(p: &QpProblem) -> u128 {
    let mut s = Hasher::new(0x51_70);
    s.usize(p.num_vars());
    s.usize(p.num_constraints());
    hash_matrix_structure(&mut s, p.p());
    hash_matrix_structure(&mut s, p.a());
    let mut d = Hasher::new(0xD1_6E);
    hash_matrix_quantized(&mut d, p.p());
    hash_matrix_quantized(&mut d, p.a());
    hash_slice_quantized(&mut d, p.q());
    hash_slice_quantized(&mut d, p.l());
    hash_slice_quantized(&mut d, p.u());
    key_of(s.finish(), d.finish())
}

fn exact_hash_qp_pa(p: &QpProblem) -> u64 {
    let mut h = Hasher::new(0xEC_AC);
    hash_matrix_exact(&mut h, p.p());
    hash_matrix_exact(&mut h, p.a());
    h.finish()
}

fn fingerprint_qcqp(p: &QcqpProblem) -> u128 {
    let mut s = Hasher::new(0x9C_97);
    s.usize(p.num_vars());
    s.usize(p.num_constraints());
    hash_matrix_structure(&mut s, &p.objective().p);
    for c in p.constraints() {
        hash_matrix_structure(&mut s, &c.p);
    }
    if let Some((a, b)) = p.equality() {
        hash_matrix_structure(&mut s, a);
        s.usize(b.len());
    }
    let mut d = Hasher::new(0xD9_C9);
    let forms = std::iter::once(p.objective()).chain(p.constraints().iter());
    for f in forms {
        hash_matrix_quantized(&mut d, &f.p);
        hash_slice_quantized(&mut d, &f.q);
        d.f64_quantized(f.r);
    }
    if let Some((a, b)) = p.equality() {
        hash_matrix_quantized(&mut d, a);
        hash_slice_quantized(&mut d, b);
    }
    key_of(s.finish(), d.finish())
}

fn fingerprint_sdp(p: &SdpProblem) -> u128 {
    let mut s = Hasher::new(0x5D_90);
    s.usize(p.dim());
    s.usize(p.num_constraints());
    hash_matrix_structure(&mut s, p.c());
    for (a, _) in p.constraints() {
        hash_matrix_structure(&mut s, a);
    }
    let mut d = Hasher::new(0xDD_5D);
    hash_matrix_quantized(&mut d, p.c());
    for (a, b) in p.constraints() {
        hash_matrix_quantized(&mut d, a);
        d.f64_quantized(*b);
    }
    key_of(s.finish(), d.finish())
}

fn exact_hash_sdp_constraints(p: &SdpProblem) -> u64 {
    let mut h = Hasher::new(0xEC_5D);
    for (a, _) in p.constraints() {
        hash_matrix_exact(&mut h, a);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// The LRU store
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Slot<T> {
    last_used: u64,
    entry: T,
}

/// A bounded, fully deterministic LRU: an ordered map plus an explicit
/// recency clock. Eviction removes the entry with the smallest
/// `(last_used, key)` — no hash-iteration order anywhere, so two runs
/// that perform the same operations hold byte-identical cache states.
#[derive(Debug, Clone)]
struct Lru<T> {
    map: BTreeMap<u128, Slot<T>>,
    capacity: usize,
}

impl<T> Lru<T> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: BTreeMap::new(),
            capacity,
        }
    }

    /// The best entry for `structural`: an exact digest match when
    /// present, otherwise the most recently used entry of the same
    /// structure ("nearest" in the drifting-trace sense). Returns the
    /// full key and whether the match was exact.
    fn lookup(&self, key: u128, structural_lo: u128, structural_hi: u128) -> Option<(u128, bool)> {
        if self.map.contains_key(&key) {
            return Some((key, true));
        }
        self.map
            .range(structural_lo..=structural_hi)
            .max_by_key(|(k, slot)| (slot.last_used, **k))
            .map(|(k, _)| (*k, false))
    }

    fn touch(&mut self, key: u128, clock: u64) -> Option<&mut T> {
        self.map.get_mut(&key).map(|slot| {
            slot.last_used = clock;
            &mut slot.entry
        })
    }

    /// Inserts (or replaces) `key`, evicting the LRU entry if the
    /// capacity bound is exceeded. Returns the number of evictions.
    fn insert(&mut self, key: u128, entry: T, clock: u64) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.map.insert(
            key,
            Slot {
                last_used: clock,
                entry,
            },
        );
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(k, slot)| (slot.last_used, **k))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    /// Moves an entry to a new key (the digest changed after a re-solve),
    /// preserving its recency.
    fn rekey(&mut self, old: u128, new: u128) {
        if old != new {
            if let Some(slot) = self.map.remove(&old) {
                self.map.insert(new, slot);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-family cache entries
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct QpEntry {
    warm: QpWarmStart,
    kkt: Cholesky,
    /// Bit-exact hash of `(P, A)` the factorization was computed for.
    exact_pa: u64,
    rho: f64,
    sigma: f64,
}

#[derive(Debug, Clone)]
struct QcqpEntry {
    x: Vec<f64>,
    /// Final barrier parameter of the previous solve (`m / gap_bound`).
    t_final: f64,
}

#[derive(Debug, Clone)]
struct SdpEntry {
    z: Matrix,
    u: Matrix,
    gram: Option<Cholesky>,
    /// Bit-exact hash of the constraint matrices the Gram factor is for.
    exact_a: u64,
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

/// A warm-start and solution-reuse cache over the three solver families.
///
/// Not thread-safe by design — wrap per worker or shard externally (the
/// serve layer does the latter), which is also what keeps parallel runs
/// bit-identical to serial ones.
///
/// # Example
/// ```
/// use rcr_convex::qp::{QpProblem, QpSettings};
/// use rcr_convex::warm::WarmCache;
/// use rcr_linalg::Matrix;
///
/// # fn main() -> Result<(), rcr_convex::ConvexError> {
/// let mut cache = WarmCache::new(16);
/// let s = QpSettings::default();
/// let prob = QpProblem::new(
///     Matrix::identity(2),
///     vec![-1.0, -1.0],
///     Matrix::identity(2),
///     vec![0.0, 0.0],
///     vec![0.5, 0.5],
/// )?;
/// let (cold, r0) = cache.solve_qp(&prob, &s)?;
/// let (warm, r1) = cache.solve_qp(&prob, &s)?;
/// assert!(!r0.hit && r1.hit && r1.factorization_reused);
/// assert!((cold.objective - warm.objective).abs() < 1e-6);
/// assert!(warm.iterations <= cold.iterations);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WarmCache {
    clock: u64,
    qp: Lru<QpEntry>,
    qcqp: Lru<QcqpEntry>,
    sdp: Lru<SdpEntry>,
    stats: WarmStats,
}

impl Default for WarmCache {
    fn default() -> Self {
        WarmCache::new(DEFAULT_CAPACITY)
    }
}

impl WarmCache {
    /// Creates a cache holding at most `capacity` entries *per solver
    /// family* (a capacity of 0 disables caching but still solves).
    pub fn new(capacity: usize) -> Self {
        WarmCache {
            clock: 0,
            qp: Lru::new(capacity),
            qcqp: Lru::new(capacity),
            sdp: Lru::new(capacity),
            stats: WarmStats::default(),
        }
    }

    /// Usage counters so far.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Entries currently held, summed over the solver families.
    pub fn len(&self) -> usize {
        self.qp.map.len() + self.qcqp.map.len() + self.sdp.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    // -- QP -----------------------------------------------------------------

    /// Solves a QP, warm-starting from (and updating) the cache.
    ///
    /// The solution satisfies the same stopping tolerance as a cold
    /// [`QpProblem::solve`]. A hit seeds `x`/`y`/`z` from the nearest
    /// cached entry; when `(P, A)` and the penalty parameters are
    /// bit-identical to the cached factorization's, the KKT Cholesky is
    /// reused too and the solve performs no factorization at all.
    ///
    /// # Errors
    /// Those of [`QpProblem::solve`]; a failing warm seed falls back to a
    /// cold solve before any error is reported.
    pub fn solve_qp(
        &mut self,
        problem: &QpProblem,
        settings: &QpSettings,
    ) -> Result<(QpSolution, WarmReport), ConvexError> {
        let key = fingerprint_qp(problem);
        let structural = (key >> 64) as u64;
        let exact_pa = exact_hash_qp_pa(problem);
        let clock = self.tick();
        let mut report = WarmReport::default();

        let found = self.qp.lookup(
            key,
            *structure_range(structural).start(),
            *structure_range(structural).end(),
        );
        if let Some((hit_key, exact)) = found {
            report.hit = true;
            report.exact = exact;
            self.stats.hits += 1;
            // Borrow the entry immutably via a clone of the small parts we
            // need; the factor itself is only cloned on the rank-one path.
            let (warm, factor_ok) = {
                // Entry exists: lookup returned its key.
                let Some(entry) = self.qp.touch(hit_key, clock) else {
                    return Err(ConvexError::InvalidParameter(
                        "warm cache entry vanished (internal invariant)".into(),
                    ));
                };
                let factor_ok = entry.exact_pa == exact_pa
                    && entry.rho.to_bits() == settings.rho.to_bits()
                    && entry.sigma.to_bits() == settings.sigma.to_bits();
                (entry.warm.clone(), factor_ok)
            };
            if factor_ok {
                self.stats.factorization_reuses += 1;
                report.factorization_reused = true;
                // Split borrow: clone nothing, solve against the stored factor.
                let sol = {
                    let Some(entry) = self.qp.touch(hit_key, clock) else {
                        return Err(ConvexError::InvalidParameter(
                            "warm cache entry vanished (internal invariant)".into(),
                        ));
                    };
                    match problem.solve_with(settings, Some(&warm), Some(&entry.kkt)) {
                        Ok(sol) => sol,
                        // A stale seed (large drift) can stall; retry cold
                        // with the same factorization before giving up.
                        Err(ConvexError::NonConvergence { .. }) => {
                            problem.solve_with(settings, None, Some(&entry.kkt))?
                        }
                        Err(e) => return Err(e),
                    }
                };
                self.store_qp(hit_key, key, &sol, problem, None, exact_pa, settings)?;
                return Ok((sol, report));
            }
            // Coefficients of (P, A) drifted: refactorize, keep the seed.
            let factor = problem.kkt_factor(settings.rho, settings.sigma)?;
            let sol = match problem.solve_with(settings, Some(&warm), Some(&factor)) {
                Ok(sol) => sol,
                Err(ConvexError::NonConvergence { .. }) => {
                    problem.solve_with(settings, None, Some(&factor))?
                }
                Err(e) => return Err(e),
            };
            self.store_qp(
                hit_key,
                key,
                &sol,
                problem,
                Some(factor),
                exact_pa,
                settings,
            )?;
            return Ok((sol, report));
        }

        // Miss: cold solve, then populate.
        self.stats.misses += 1;
        let factor = problem.kkt_factor(settings.rho, settings.sigma)?;
        let sol = problem.solve_with(settings, None, Some(&factor))?;
        let warm = QpWarmStart::from_solution(problem, &sol)?;
        let evicted = self.qp.insert(
            key,
            QpEntry {
                warm,
                kkt: factor,
                exact_pa,
                rho: settings.rho,
                sigma: settings.sigma,
            },
            clock,
        );
        self.stats.evictions += evicted;
        Ok((sol, report))
    }

    /// Re-solves after a rank-one perturbation `P' = P + α·v·vᵀ` of the
    /// cached instance's quadratic term (`A` unchanged): the cached KKT
    /// Cholesky is refreshed by an O(n²)
    /// [`rcr_linalg::Cholesky::rank_one_update`] instead of the O(n³)
    /// refactorize, then the solve warm-starts as usual. `problem` must
    /// already *be* the perturbed instance; `(v, alpha)` describe how it
    /// differs from the previously solved one. Falls back to the plain
    /// [`WarmCache::solve_qp`] path (full refactorize) when no matching
    /// entry exists, when `A` or the penalty parameters changed, or when
    /// a downdate would leave the KKT matrix indefinite.
    ///
    /// # Errors
    /// Those of [`QpProblem::solve`].
    pub fn solve_qp_rank_one(
        &mut self,
        problem: &QpProblem,
        v: &[f64],
        alpha: f64,
        settings: &QpSettings,
    ) -> Result<(QpSolution, WarmReport), ConvexError> {
        let key = fingerprint_qp(problem);
        let structural = (key >> 64) as u64;
        let exact_pa = exact_hash_qp_pa(problem);
        let clock = self.tick();

        let found = self.qp.lookup(
            key,
            *structure_range(structural).start(),
            *structure_range(structural).end(),
        );
        let Some((hit_key, exact)) = found else {
            return self.solve_qp(problem, settings);
        };
        // The condensed KKT matrix is P + σI + ρAᵀA, so a rank-one change
        // of P is a rank-one change of the KKT matrix with the same (v, α).
        let updated = {
            let Some(entry) = self.qp.touch(hit_key, clock) else {
                return Err(ConvexError::InvalidParameter(
                    "warm cache entry vanished (internal invariant)".into(),
                ));
            };
            if entry.rho.to_bits() != settings.rho.to_bits()
                || entry.sigma.to_bits() != settings.sigma.to_bits()
            {
                None
            } else {
                let mut kkt = entry.kkt.clone();
                match kkt.rank_one_update(v, alpha) {
                    Ok(()) => Some((kkt, entry.warm.clone())),
                    Err(_) => None,
                }
            }
        };
        let Some((factor, warm)) = updated else {
            return self.solve_qp(problem, settings);
        };
        self.stats.hits += 1;
        self.stats.rank_one_updates += 1;
        let report = WarmReport {
            hit: true,
            exact,
            factorization_reused: false,
            rank_one_updated: true,
        };
        let sol = match problem.solve_with(settings, Some(&warm), Some(&factor)) {
            Ok(sol) => sol,
            Err(ConvexError::NonConvergence { .. }) => {
                problem.solve_with(settings, None, Some(&factor))?
            }
            Err(e) => return Err(e),
        };
        self.store_qp(
            hit_key,
            key,
            &sol,
            problem,
            Some(factor),
            exact_pa,
            settings,
        )?;
        Ok((sol, report))
    }

    /// Refreshes the hit entry with the new solution (and optionally a new
    /// factorization), then moves it under the instance's current key.
    #[allow(clippy::too_many_arguments)]
    fn store_qp(
        &mut self,
        hit_key: u128,
        new_key: u128,
        sol: &QpSolution,
        problem: &QpProblem,
        new_factor: Option<Cholesky>,
        exact_pa: u64,
        settings: &QpSettings,
    ) -> Result<(), ConvexError> {
        let warm = QpWarmStart::from_solution(problem, sol)?;
        if let Some(entry) = self.qp.map.get_mut(&hit_key) {
            entry.entry.warm = warm;
            if let Some(f) = new_factor {
                entry.entry.kkt = f;
                entry.entry.exact_pa = exact_pa;
                entry.entry.rho = settings.rho;
                entry.entry.sigma = settings.sigma;
            }
        }
        self.qp.rekey(hit_key, new_key);
        Ok(())
    }

    // -- QCQP ---------------------------------------------------------------

    /// Solves a QCQP, warm-starting from (and updating) the cache.
    ///
    /// A hit seeds the barrier method with the cached primal (skipping
    /// phase-I) and restarts the barrier parameter one `mu`-step below the
    /// previous solve's final `t`, so only the last centering steps are
    /// repeated. If drift pushed the cached point out of strict
    /// feasibility the solve silently falls back to the cold path.
    ///
    /// # Errors
    /// Those of [`QcqpProblem::solve`].
    pub fn solve_qcqp(
        &mut self,
        problem: &QcqpProblem,
        settings: &QcqpSettings,
    ) -> Result<(QcqpSolution, WarmReport), ConvexError> {
        let key = fingerprint_qcqp(problem);
        let structural = (key >> 64) as u64;
        let clock = self.tick();
        let mut report = WarmReport::default();

        let found = self.qcqp.lookup(
            key,
            *structure_range(structural).start(),
            *structure_range(structural).end(),
        );
        if let Some((hit_key, exact)) = found {
            let seed = self
                .qcqp
                .touch(hit_key, clock)
                .map(|e| (e.x.clone(), e.t_final));
            if let Some((x0, t_final)) = seed {
                // Restart one homotopy step below the previous final t: the
                // solution moved, so one round of re-centering is honest.
                let t0 = (t_final / settings.mu).max(settings.t0);
                match problem.solve_warm_start(&x0, t0, settings) {
                    Ok(sol) => {
                        report.hit = true;
                        report.exact = exact;
                        self.stats.hits += 1;
                        self.store_qcqp(hit_key, key, &sol, problem);
                        return Ok((sol, report));
                    }
                    // Stale seed (left the interior) — fall through cold.
                    Err(ConvexError::Infeasible) | Err(ConvexError::NonConvergence { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }

        self.stats.misses += 1;
        let sol = problem.solve(settings)?;
        let entry = QcqpEntry {
            x: sol.x.clone(),
            t_final: t_final_of(problem, &sol),
        };
        let evicted = self.qcqp.insert(key, entry, clock);
        self.stats.evictions += evicted;
        Ok((sol, report))
    }

    fn store_qcqp(
        &mut self,
        hit_key: u128,
        new_key: u128,
        sol: &QcqpSolution,
        problem: &QcqpProblem,
    ) {
        if let Some(entry) = self.qcqp.map.get_mut(&hit_key) {
            entry.entry.x = sol.x.clone();
            entry.entry.t_final = t_final_of(problem, sol);
        }
        self.qcqp.rekey(hit_key, new_key);
    }

    // -- SDP ----------------------------------------------------------------

    /// Solves an SDP, warm-starting from (and updating) the cache.
    ///
    /// A hit seeds the cone-side iterate `Z` and the scaled dual `U`; the
    /// affine-projection Gram Cholesky is reused whenever the constraint
    /// matrices are bit-identical to those it was computed for.
    ///
    /// # Errors
    /// Those of [`SdpProblem::solve`].
    pub fn solve_sdp(
        &mut self,
        problem: &SdpProblem,
        settings: &SdpSettings,
    ) -> Result<(SdpSolution, WarmReport), ConvexError> {
        let key = fingerprint_sdp(problem);
        let structural = (key >> 64) as u64;
        let exact_a = exact_hash_sdp_constraints(problem);
        let clock = self.tick();
        let mut report = WarmReport::default();

        let found = self.sdp.lookup(
            key,
            *structure_range(structural).start(),
            *structure_range(structural).end(),
        );
        if let Some((hit_key, exact)) = found {
            report.hit = true;
            report.exact = exact;
            self.stats.hits += 1;
            let gram_ok = self
                .sdp
                .map
                .get(&hit_key)
                .map(|s| s.entry.exact_a == exact_a && s.entry.gram.is_some())
                .unwrap_or(false);
            let (sol, u_final) = {
                let Some(entry) = self.sdp.touch(hit_key, clock) else {
                    return Err(ConvexError::InvalidParameter(
                        "warm cache entry vanished (internal invariant)".into(),
                    ));
                };
                let gram = if gram_ok { entry.gram.as_ref() } else { None };
                let warm = Some((&entry.z, &entry.u));
                match problem.solve_with(settings, warm, gram) {
                    Ok(out) => out,
                    Err(ConvexError::NonConvergence { .. }) => {
                        problem.solve_with(settings, None, gram)?
                    }
                    Err(e) => return Err(e),
                }
            };
            if gram_ok {
                self.stats.factorization_reuses += 1;
                report.factorization_reused = true;
                self.store_sdp(hit_key, key, &sol, &u_final, None, exact_a);
            } else {
                let gram = problem.gram_factor()?;
                self.store_sdp(hit_key, key, &sol, &u_final, Some(gram), exact_a);
            }
            return Ok((sol, report));
        }

        self.stats.misses += 1;
        let gram = problem.gram_factor()?;
        let (sol, u_final) = problem.solve_with(settings, None, gram.as_ref())?;
        let entry = SdpEntry {
            z: sol.x.clone(),
            // The converged scaled dual: seeding it next time is what
            // lets the warm solve skip re-converging the dual residual.
            u: u_final,
            gram,
            exact_a,
        };
        let evicted = self.sdp.insert(key, entry, clock);
        self.stats.evictions += evicted;
        Ok((sol, report))
    }

    fn store_sdp(
        &mut self,
        hit_key: u128,
        new_key: u128,
        sol: &SdpSolution,
        u_final: &Matrix,
        new_gram: Option<Option<Cholesky>>,
        exact_a: u64,
    ) {
        if let Some(entry) = self.sdp.map.get_mut(&hit_key) {
            entry.entry.z = sol.x.clone();
            entry.entry.u = u_final.clone();
            if let Some(g) = new_gram {
                entry.entry.gram = g;
                entry.entry.exact_a = exact_a;
            }
        }
        self.sdp.rekey(hit_key, new_key);
    }
}

/// Recovers the final barrier parameter from a solution's gap bound
/// (`gap_bound = m_eff / t_final`).
fn t_final_of(problem: &QcqpProblem, sol: &QcqpSolution) -> f64 {
    let m_eff = problem.num_constraints().max(1) as f64;
    if sol.gap_bound > 0.0 && sol.gap_bound.is_finite() {
        m_eff / sol.gap_bound
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qcqp::QuadraticForm;
    use rcr_linalg::vector;

    fn qp_instance(shift: f64) -> QpProblem {
        // Dense SPD P (a channel-Gram-like matrix): rank-one channel
        // perturbations keep the sparsity pattern, as in the serve trace.
        let n = 4;
        let p = Matrix::from_fn(n, n, |i, j| {
            let base = 1.0 / (1.0 + i.abs_diff(j) as f64);
            if i == j {
                base + 2.0
            } else {
                base
            }
        });
        let q: Vec<f64> = (0..n).map(|i| -1.0 + shift + 0.1 * i as f64).collect();
        QpProblem::new(p, q, Matrix::identity(n), vec![-1.0; n], vec![1.0; n]).unwrap()
    }

    #[test]
    fn qp_repeat_solve_hits_and_reuses_factorization() {
        let mut cache = WarmCache::new(8);
        let s = QpSettings::default();
        let prob = qp_instance(0.0);
        let (cold, r0) = cache.solve_qp(&prob, &s).unwrap();
        assert!(!r0.hit);
        let (warm, r1) = cache.solve_qp(&prob, &s).unwrap();
        assert!(r1.hit && r1.exact && r1.factorization_reused);
        assert!((cold.objective - warm.objective).abs() < 1e-6);
        assert!(warm.iterations <= cold.iterations);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.factorization_reuses), (1, 1, 1));
    }

    #[test]
    fn qp_drifting_q_warm_starts_without_refactorizing() {
        // q drifts (picked up by the digest or not — either way the
        // structural match warm-starts) while (P, A) stay bit-identical,
        // so the factorization is reused on every step.
        let mut cache = WarmCache::new(8);
        let s = QpSettings::default();
        let mut max_iters_warm = 0;
        let (first, _) = cache.solve_qp(&qp_instance(0.0), &s).unwrap();
        for step in 1..10 {
            let prob = qp_instance(1e-4 * step as f64);
            let (sol, rep) = cache.solve_qp(&prob, &s).unwrap();
            assert!(rep.hit, "step {step} should warm-start");
            assert!(rep.factorization_reused, "step {step} should reuse KKT");
            // Same tolerance as cold:
            let cold = prob.solve(&s).unwrap();
            assert!((sol.objective - cold.objective).abs() < 1e-6);
            max_iters_warm = max_iters_warm.max(sol.iterations);
        }
        assert!(
            max_iters_warm < first.iterations,
            "warm {max_iters_warm} vs cold {}",
            first.iterations
        );
    }

    #[test]
    fn qp_rank_one_path_matches_refactorized_solve() {
        let mut cache = WarmCache::new(8);
        let s = QpSettings::default();
        let base = qp_instance(0.0);
        cache.solve_qp(&base, &s).unwrap();

        // Perturb P by α·vvᵀ.
        let n = base.num_vars();
        let v: Vec<f64> = (0..n).map(|i| 0.3 * ((i + 1) as f64).sin()).collect();
        let alpha = 0.2;
        let mut p2 = base.p().clone();
        for i in 0..n {
            for j in 0..n {
                p2[(i, j)] += alpha * v[i] * v[j];
            }
        }
        let perturbed = QpProblem::new(
            p2,
            base.q().to_vec(),
            base.a().clone(),
            base.l().to_vec(),
            base.u().to_vec(),
        )
        .unwrap();

        let (sol, rep) = cache.solve_qp_rank_one(&perturbed, &v, alpha, &s).unwrap();
        assert!(rep.rank_one_updated, "{rep:?}");
        let cold = perturbed.solve(&s).unwrap();
        assert!((sol.objective - cold.objective).abs() < 1e-6);
        assert!(vector::norm_inf(&vector::sub(&sol.x, &cold.x)) < 1e-4);
        assert_eq!(cache.stats().rank_one_updates, 1);
    }

    #[test]
    fn qp_rank_one_without_cached_entry_falls_back_cold() {
        let mut cache = WarmCache::new(8);
        let s = QpSettings::default();
        let prob = qp_instance(0.0);
        let v = vec![0.0; prob.num_vars()];
        let (_, rep) = cache.solve_qp_rank_one(&prob, &v, 0.0, &s).unwrap();
        assert!(!rep.hit && !rep.rank_one_updated);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn eviction_is_deterministic_lru() {
        let mut cache = WarmCache::new(2);
        let s = QpSettings::default();
        // Three structurally distinct instances (different n).
        let probs: Vec<QpProblem> = (2..5)
            .map(|n| {
                QpProblem::new(
                    Matrix::identity(n),
                    vec![-1.0; n],
                    Matrix::identity(n),
                    vec![0.0; n],
                    vec![1.0; n],
                )
                .unwrap()
            })
            .collect();
        cache.solve_qp(&probs[0], &s).unwrap(); // clock 1
        cache.solve_qp(&probs[1], &s).unwrap(); // clock 2
        cache.solve_qp(&probs[0], &s).unwrap(); // hit, clock 3
        cache.solve_qp(&probs[2], &s).unwrap(); // evicts probs[1] (LRU)
        assert_eq!(cache.stats().evictions, 1);
        let (_, rep0) = cache.solve_qp(&probs[0], &s).unwrap();
        assert!(rep0.hit, "probs[0] was recently used, must survive");
        let (_, rep1) = cache.solve_qp(&probs[1], &s).unwrap();
        assert!(!rep1.hit, "probs[1] was the LRU victim");
    }

    #[test]
    fn zero_capacity_cache_still_solves() {
        let mut cache = WarmCache::new(0);
        let s = QpSettings::default();
        let prob = qp_instance(0.0);
        let (a, _) = cache.solve_qp(&prob, &s).unwrap();
        let (b, rep) = cache.solve_qp(&prob, &s).unwrap();
        assert!(!rep.hit);
        assert_eq!(a.x, b.x);
        assert!(cache.is_empty());
    }

    fn ball(center: &[f64], radius: f64) -> QuadraticForm {
        let q: Vec<f64> = center.iter().map(|v| -v).collect();
        let r = 0.5 * vector::dot(center, center) - 0.5 * radius * radius;
        QuadraticForm {
            p: Matrix::identity(center.len()),
            q,
            r,
        }
    }

    fn qcqp_instance(shift: f64) -> QcqpProblem {
        let obj =
            QuadraticForm::new(Matrix::identity(2), vec![-1.0 - shift, -2.0 + shift], 0.0).unwrap();
        QcqpProblem::new(obj, vec![ball(&[0.0, 0.0], 1.5)], None).unwrap()
    }

    #[test]
    fn qcqp_repeat_and_drift_hit() {
        let mut cache = WarmCache::new(8);
        let s = QcqpSettings::default();
        let (cold, r0) = cache.solve_qcqp(&qcqp_instance(0.0), &s).unwrap();
        assert!(!r0.hit);
        let (warm, r1) = cache.solve_qcqp(&qcqp_instance(0.0), &s).unwrap();
        assert!(r1.hit);
        assert!((cold.objective - warm.objective).abs() < 1e-6);
        assert!(warm.newton_iterations <= cold.newton_iterations);
        // Drifted instance: still hits via the structural match.
        let drifted = qcqp_instance(1e-3);
        let (sol, r2) = cache.solve_qcqp(&drifted, &s).unwrap();
        assert!(r2.hit);
        let cold_drift = drifted.solve(&s).unwrap();
        assert!((sol.objective - cold_drift.objective).abs() < 1e-6);
    }

    #[test]
    fn sdp_repeat_hits_and_reuses_gram() {
        let mut cache = WarmCache::new(8);
        let s = SdpSettings::default();
        let c = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let prob = SdpProblem::new(c, vec![(Matrix::identity(2), 1.0)]).unwrap();
        let (cold, r0) = cache.solve_sdp(&prob, &s).unwrap();
        assert!(!r0.hit);
        let (warm, r1) = cache.solve_sdp(&prob, &s).unwrap();
        assert!(r1.hit && r1.factorization_reused);
        assert!((cold.objective - warm.objective).abs() < 1e-6);
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn sdp_drifting_objective_warm_starts() {
        let mut cache = WarmCache::new(8);
        let s = SdpSettings::default();
        let make = |eps: f64| {
            let c = Matrix::from_rows(&[&[2.0 + eps, 1.0], &[1.0, 2.0 - eps]]).unwrap();
            SdpProblem::new(c, vec![(Matrix::identity(2), 1.0)]).unwrap()
        };
        let (cold, _) = cache.solve_sdp(&make(0.0), &s).unwrap();
        let drifted = make(1e-3);
        let (sol, rep) = cache.solve_sdp(&drifted, &s).unwrap();
        assert!(rep.hit);
        let cold_drift = drifted.solve(&s).unwrap();
        assert!((sol.objective - cold_drift.objective).abs() < 1e-6);
        assert!(sol.iterations < cold.iterations);
    }

    #[test]
    fn fingerprints_distinguish_structure_but_tolerate_tiny_drift() {
        let a = qp_instance(0.0);
        let b = qp_instance(0.0);
        assert_eq!(fingerprint_qp(&a), fingerprint_qp(&b));
        // Different dimension → different structural half.
        let other = QpProblem::new(
            Matrix::identity(3),
            vec![0.0; 3],
            Matrix::identity(3),
            vec![0.0; 3],
            vec![1.0; 3],
        )
        .unwrap();
        assert_ne!(fingerprint_qp(&a) >> 64, fingerprint_qp(&other) >> 64);
        // -0.0 and 0.0 hash identically.
        let neg = QpProblem::new(
            Matrix::identity(2),
            vec![-0.0, 0.0],
            Matrix::identity(2),
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let pos = QpProblem::new(
            Matrix::identity(2),
            vec![0.0, 0.0],
            Matrix::identity(2),
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert_eq!(fingerprint_qp(&neg), fingerprint_qp(&pos));
    }
}
