//! Lasserre's moment/SOS relaxation for global polynomial minimization —
//! the "Lassere's Semidefinite Programming (SDP) Relaxation (a.k.a.,
//! Linear Matrix Inequality or LMI)" the paper lists among the
//! general-purpose convexification routes (§I).
//!
//! For a univariate polynomial `p(x) = Σ c_k x^k` of even degree `2d`,
//! the first-level relaxation is exact: minimize `Σ c_k y_k` over moment
//! sequences `y` with `y_0 = 1` whose moment matrix
//! `M(y)[i][j] = y_{i+j}` (of size `(d+1) x (d+1)`) is positive
//! semidefinite. For univariate polynomials the moment relaxation attains
//! the true global minimum (every nonnegative univariate polynomial is a
//! sum of squares), so this module doubles as a *global* minimizer for
//! arbitrary nonconvex univariate polynomials — no branching, one SDP.

use crate::sdp::{SdpProblem, SdpSettings};
use crate::ConvexError;
use rcr_linalg::Matrix;

/// Result of a moment relaxation.
#[derive(Debug, Clone)]
pub struct MomentSolution {
    /// The certified global minimum value of the polynomial.
    pub minimum: f64,
    /// First-order moment `y_1` — the minimizer when the optimal moment
    /// matrix is rank-1 (generic case).
    pub minimizer_estimate: f64,
    /// The optimal moment matrix (for rank diagnostics).
    pub moment_matrix: Matrix,
    /// SDP iterations used.
    pub sdp_iterations: usize,
}

/// Evaluates `p(x)` for coefficients in ascending-degree order.
pub fn eval_poly(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Minimizes a univariate polynomial globally via the Lasserre moment
/// SDP. `coeffs[k]` is the coefficient of `x^k`; the leading (even-degree)
/// coefficient must be positive so the polynomial is bounded below.
///
/// ```
/// use rcr_convex::lasserre::minimize_polynomial;
/// use rcr_convex::sdp::SdpSettings;
///
/// # fn main() -> Result<(), rcr_convex::ConvexError> {
/// // The nonconvex double well (x² − 1)² has global minimum 0.
/// let sol = minimize_polynomial(&[1.0, 0.0, -2.0, 0.0, 1.0], &SdpSettings::default())?;
/// assert!(sol.minimum.abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// * [`ConvexError::InvalidParameter`] for an empty/odd-degree/unbounded
///   polynomial.
/// * Propagates SDP solver errors.
pub fn minimize_polynomial(
    coeffs: &[f64],
    settings: &SdpSettings,
) -> Result<MomentSolution, ConvexError> {
    // Strip trailing zeros to find the true degree.
    let degree = coeffs
        .iter()
        .rposition(|&c| c != 0.0)
        .ok_or_else(|| ConvexError::InvalidParameter("zero polynomial".into()))?;
    if degree == 0 {
        return Err(ConvexError::InvalidParameter("constant polynomial".into()));
    }
    if degree % 2 != 0 {
        return Err(ConvexError::InvalidParameter(format!(
            "odd degree {degree}: polynomial is unbounded below"
        )));
    }
    if coeffs[degree] <= 0.0 {
        return Err(ConvexError::InvalidParameter(
            "negative leading coefficient: polynomial is unbounded below".into(),
        ));
    }
    if coeffs.iter().any(|c| !c.is_finite()) {
        return Err(ConvexError::NotFinite);
    }
    let d = degree / 2;
    let n = d + 1; // moment matrix size; entries are y_0 .. y_{2d}

    // Variables: the moment matrix M with M[i][j] = y_{i+j}. Constraints:
    //   (a) y_0 = 1  →  M[0][0] = 1,
    //   (b) Hankel structure: all anti-diagonals share one value.
    // Objective: Σ_k c_k y_k expressed on a fixed representative entry of
    // each anti-diagonal, spread evenly to keep C symmetric.
    let mut c_mat = Matrix::zeros(n, n);
    for (k, &ck) in coeffs.iter().enumerate().take(degree + 1) {
        if ck == 0.0 {
            continue;
        }
        // Cells (i, j) with i + j = k.
        let cells: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i + j == k)
            .collect();
        let share = ck / cells.len() as f64;
        for (i, j) in cells {
            c_mat[(i, j)] += share;
        }
    }

    let mut constraints: Vec<(Matrix, f64)> = Vec::new();
    // y_0 = 1.
    let mut a0 = Matrix::zeros(n, n);
    a0[(0, 0)] = 1.0;
    constraints.push((a0, 1.0));
    // Hankel structure: for each anti-diagonal k, every cell equals the
    // representative cell (the first one).
    for k in 0..=2 * d {
        let cells: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i + j == k && i <= j)
            .collect();
        let rep = cells[0];
        for &(i, j) in &cells[1..] {
            let mut a = Matrix::zeros(n, n);
            // Symmetrized difference: cell (i,j)+(j,i) − rep (both sides).
            a[(i, j)] += 1.0;
            a[(j, i)] += 1.0;
            a[(rep.0, rep.1)] -= 1.0;
            a[(rep.1, rep.0)] -= 1.0;
            constraints.push((a, 0.0));
        }
    }

    let prob = SdpProblem::new(c_mat, constraints)?;
    let sol = prob.solve(settings)?;
    let minimum = coeffs
        .iter()
        .enumerate()
        .take(degree + 1)
        .map(|(k, &ck)| {
            // Read y_k off the moment matrix.
            let i = k.min(n - 1);
            let j = k - i;
            ck * sol.x[(i, j)]
        })
        .sum();
    Ok(MomentSolution {
        minimum,
        minimizer_estimate: sol.x[(0, 1)],
        moment_matrix: sol.x,
        sdp_iterations: sol.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> SdpSettings {
        SdpSettings {
            tol: 1e-8,
            ..Default::default()
        }
    }

    #[test]
    fn eval_poly_horner() {
        // 1 + 2x + 3x² at x = 2: 1 + 4 + 12 = 17.
        assert_eq!(eval_poly(&[1.0, 2.0, 3.0], 2.0), 17.0);
        assert_eq!(eval_poly(&[5.0], 123.0), 5.0);
    }

    #[test]
    fn convex_quadratic_exact() {
        // (x − 2)² = 4 − 4x + x²: min 0 at x = 2.
        let sol = minimize_polynomial(&[4.0, -4.0, 1.0], &settings()).unwrap();
        assert!(sol.minimum.abs() < 1e-5, "min {}", sol.minimum);
        assert!((sol.minimizer_estimate - 2.0).abs() < 1e-4);
    }

    #[test]
    fn nonconvex_quartic_global_minimum() {
        // Double well: (x² − 1)² = 1 − 2x² + x⁴, global min 0 at x = ±1.
        let sol = minimize_polynomial(&[1.0, 0.0, -2.0, 0.0, 1.0], &settings()).unwrap();
        assert!(sol.minimum.abs() < 1e-4, "min {}", sol.minimum);
        // Symmetric wells: the first moment averages the two minimizers.
        assert!(sol.minimizer_estimate.abs() < 1.0 + 1e-6);
    }

    #[test]
    fn asymmetric_quartic_finds_deeper_well() {
        // p(x) = x⁴ − x³ − 2x² : wells at x ≈ −0.86 (p ≈ −0.26) and
        // x ≈ 1.61 (p ≈ −2.62). Global min is the right well.
        let coeffs = [0.0, 0.0, -2.0, -1.0, 1.0];
        let sol = minimize_polynomial(&coeffs, &settings()).unwrap();
        // Grid-search reference.
        let mut best = f64::INFINITY;
        let mut best_x = 0.0;
        for i in 0..4000 {
            let x = -3.0 + 6.0 * i as f64 / 4000.0;
            let v = eval_poly(&coeffs, x);
            if v < best {
                best = v;
                best_x = x;
            }
        }
        assert!(
            (sol.minimum - best).abs() < 1e-3,
            "sdp {} vs grid {best}",
            sol.minimum
        );
        assert!((sol.minimizer_estimate - best_x).abs() < 1e-2);
    }

    #[test]
    fn degree_six_polynomial() {
        // (x² − 1)²(x² − 4) + 5 — a wiggly sextic, bounded below since the
        // leading coefficient is +1.
        // Expand: (x⁴ − 2x² + 1)(x² − 4) + 5
        //       = x⁶ − 4x⁴ − 2x⁴ + 8x² + x² − 4 + 5
        //       = x⁶ − 6x⁴ + 9x² + 1.
        let coeffs = [1.0, 0.0, 9.0, 0.0, -6.0, 0.0, 1.0];
        let sol = minimize_polynomial(&coeffs, &settings()).unwrap();
        let mut best = f64::INFINITY;
        for i in 0..6000 {
            let x = -3.0 + 6.0 * i as f64 / 6000.0;
            best = best.min(eval_poly(&coeffs, x));
        }
        assert!(
            (sol.minimum - best).abs() < 1e-2,
            "sdp {} vs grid {best}",
            sol.minimum
        );
    }

    #[test]
    fn validation() {
        assert!(minimize_polynomial(&[], &settings()).is_err());
        assert!(minimize_polynomial(&[0.0, 0.0], &settings()).is_err());
        assert!(minimize_polynomial(&[1.0], &settings()).is_err());
        // Odd degree unbounded.
        assert!(minimize_polynomial(&[0.0, 0.0, 0.0, 1.0], &settings()).is_err());
        // Negative leading coefficient unbounded.
        assert!(minimize_polynomial(&[0.0, 0.0, -1.0], &settings()).is_err());
        assert!(minimize_polynomial(&[f64::NAN, 0.0, 1.0], &settings()).is_err());
    }
}
