//! The paper's Eq. 8 → Eq. 9 → Eq. 10 relaxation pipeline:
//! Rank Minimization → Trace Minimization → SDP.
//!
//! Given a symmetric measurement matrix `R_s`, decompose
//!
//! ```text
//! R_s = R_c + R_n,   R_c ⪰ 0 (low rank),   R_n diagonal
//! ```
//!
//! Minimizing `rank(R_c)` (Eq. 8) is nonconvex and discontinuous; the
//! trace surrogate (Eq. 9) is the tightest convex relaxation over the PSD
//! cone ("the rank function tallies the number of nonzero eigenvalues and
//! the trace function computes the sum of the involved eigenvalues"), and
//! is solvable as the SDP (Eq. 10):
//!
//! ```text
//! minimize   tr(X)
//! subject to X_ij = (R_s)_ij  for all i ≠ j
//!            X ⪰ 0
//! ```
//!
//! with `R_n = diag(R_s − X)` recovered afterwards. This is exactly the
//! classic low-rank + diagonal ("factor analysis") decomposition.

use crate::sdp::{SdpProblem, SdpSettings, SdpSolution};
use crate::ConvexError;
use rcr_linalg::Matrix;

/// Result of the trace-minimization decomposition.
#[derive(Debug, Clone)]
pub struct RankMinResult {
    /// The PSD low-rank part `R_c`.
    pub r_c: Matrix,
    /// The diagonal part `R_n` (as a full matrix).
    pub r_n: Matrix,
    /// `tr(R_c)` — the relaxed objective (Eq. 9).
    pub trace: f64,
    /// Numerical rank of `R_c` at tolerance `rank_tol`.
    pub rank: usize,
    /// Tolerance used for the rank count.
    pub rank_tol: f64,
    /// Iterations used by the underlying SDP solver.
    pub sdp_iterations: usize,
}

/// Solves the Eq. 9/10 trace-minimization problem for a symmetric `r_s`.
///
/// # Errors
/// * [`ConvexError::DimensionMismatch`] for non-square input.
/// * [`ConvexError::NotFinite`] for NaN/inf entries.
/// * Propagates SDP solver errors ([`ConvexError::NonConvergence`] when no
///   PSD completion exists, e.g. heavily corrupted off-diagonals).
pub fn trace_min_decompose(
    r_s: &Matrix,
    settings: &SdpSettings,
) -> Result<RankMinResult, ConvexError> {
    if !r_s.is_square() {
        return Err(ConvexError::DimensionMismatch(format!(
            "R_s is {:?}",
            r_s.shape()
        )));
    }
    if !r_s.is_finite() {
        return Err(ConvexError::NotFinite);
    }
    let n = r_s.rows();
    let sym = r_s.symmetrize()?;

    // One constraint per off-diagonal pair (i < j): ⟨E_ij + E_ji, X⟩ = 2·R_ij.
    let mut constraints = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let mut a = Matrix::zeros(n, n);
            a[(i, j)] = 1.0;
            a[(j, i)] = 1.0;
            constraints.push((a, 2.0 * sym[(i, j)]));
        }
    }
    let prob = SdpProblem::new(Matrix::identity(n), constraints)?;
    let SdpSolution { x, iterations, .. } = prob.solve(settings)?;

    let r_c = x;
    let diag: Vec<f64> = (0..n).map(|i| sym[(i, i)] - r_c[(i, i)]).collect();
    let r_n = Matrix::from_diag(&diag);
    let trace = r_c.trace();
    let rank_tol = 1e-4 * r_c.max_abs().max(1.0);
    let rank = r_c.symmetric_eigen()?.rank(rank_tol);
    Ok(RankMinResult {
        r_c,
        r_n,
        trace,
        rank,
        rank_tol,
        sdp_iterations: iterations,
    })
}

/// Generates a synthetic `R_s = V Vᵀ + diag(d)` with known rank, for
/// experiments: `v` is `n x r` (so the low-rank part has rank ≤ r).
///
/// # Errors
/// Returns [`ConvexError::DimensionMismatch`] if `d.len() != v.rows()`.
pub fn synth_low_rank_plus_diag(v: &Matrix, d: &[f64]) -> Result<Matrix, ConvexError> {
    if d.len() != v.rows() {
        return Err(ConvexError::DimensionMismatch(format!(
            "d has {} entries, v has {} rows",
            d.len(),
            v.rows()
        )));
    }
    let vvt = v.matmul(&v.transpose())?;
    Ok(&vvt + &Matrix::from_diag(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> SdpSettings {
        SdpSettings {
            tol: 1e-8,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_rank_one_plus_diagonal() {
        // R_s = v vᵀ + diag(d) with v = (1, 2, -1), d = (0.5, 0.3, 0.4).
        let v = Matrix::from_rows(&[&[1.0], &[2.0], &[-1.0]]).unwrap();
        let d = [0.5, 0.3, 0.4];
        let r_s = synth_low_rank_plus_diag(&v, &d).unwrap();
        let res = trace_min_decompose(&r_s, &settings()).unwrap();
        assert_eq!(res.rank, 1, "rank: {} (eigs of R_c)", res.rank);
        // Off-diagonals of R_c must match R_s exactly.
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!((res.r_c[(i, j)] - r_s[(i, j)]).abs() < 1e-5);
                }
            }
        }
        // Recovered diagonal noise close to the truth.
        for (i, &di) in d.iter().enumerate() {
            assert!(
                (res.r_n[(i, i)] - di).abs() < 1e-3,
                "d[{i}]: {} vs {di}",
                res.r_n[(i, i)]
            );
        }
    }

    #[test]
    fn decomposition_is_exact_split() {
        let v = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0], &[2.0, -1.0], &[1.0, 1.0]]).unwrap();
        let d = [1.0, 2.0, 0.5, 1.5];
        let r_s = synth_low_rank_plus_diag(&v, &d).unwrap();
        let res = trace_min_decompose(&r_s, &settings()).unwrap();
        let recon = &res.r_c + &res.r_n;
        assert!((&recon - &r_s).max_abs() < 1e-5);
        assert!(res.r_c.min_eigenvalue().unwrap() > -1e-6);
        // R_n is diagonal by construction.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(res.r_n[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn rank_two_structure_dominates_spectrum() {
        // The trace relaxation is not guaranteed to recover the planted
        // rank exactly (here it finds a trace-6.47 completion, slightly
        // below the planted trace 6.5, with a tiny third eigenvalue), but
        // the planted rank-2 structure must dominate the spectrum.
        let v = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[1.0, -1.0],
            &[0.5, 0.5],
        ])
        .unwrap();
        let d = [0.8, 0.9, 0.7, 1.1, 0.6];
        let r_s = synth_low_rank_plus_diag(&v, &d).unwrap();
        let res = trace_min_decompose(&r_s, &settings()).unwrap();
        let eig = res.r_c.symmetric_eigen().unwrap();
        let evals = eig.eigenvalues(); // ascending
        let n = evals.len();
        let top2 = evals[n - 1] + evals[n - 2];
        assert!(top2 / res.trace > 0.95, "top-2 share {}", top2 / res.trace);
        // Relaxed objective never exceeds the planted trace.
        assert!(res.trace <= 6.5 + 1e-4);
    }

    #[test]
    fn trace_relaxation_never_exceeds_truth() {
        // tr is minimized subject to matching off-diagonals; the true R_c
        // is feasible, so the optimum is ≤ tr(V Vᵀ).
        let v = Matrix::from_rows(&[&[2.0], &[1.0], &[1.5]]).unwrap();
        let d = [0.2, 0.2, 0.2];
        let r_s = synth_low_rank_plus_diag(&v, &d).unwrap();
        let res = trace_min_decompose(&r_s, &settings()).unwrap();
        let true_trace = 2.0 * 2.0 + 1.0 + 1.5 * 1.5;
        assert!(res.trace <= true_trace + 1e-4);
    }

    #[test]
    fn validation() {
        assert!(trace_min_decompose(&Matrix::zeros(2, 3), &settings()).is_err());
        let mut m = Matrix::identity(2);
        m[(0, 1)] = f64::NAN;
        assert!(trace_min_decompose(&m, &settings()).is_err());
        let v = Matrix::zeros(3, 1);
        assert!(synth_low_rank_plus_diag(&v, &[1.0, 2.0]).is_err());
    }
}
