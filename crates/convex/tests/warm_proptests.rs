//! Property-based invariants of the warm-start cache (`rcr_convex::warm`).
//!
//! The contract under test: a warm solve runs to the *same stopping
//! tolerance* as a cold solve — the cache trades iterations, never
//! accuracy — and cache behavior (hits, evictions) is a deterministic
//! function of the request sequence.

use proptest::prelude::*;
use rcr_convex::qcqp::{QcqpProblem, QcqpSettings, QuadraticForm};
use rcr_convex::qp::{QpProblem, QpSettings};
use rcr_convex::sdp::{SdpProblem, SdpSettings};
use rcr_convex::warm::WarmCache;
use rcr_linalg::{vector, Matrix};

fn spd(entries: &[f64], n: usize) -> Matrix {
    let g = Matrix::from_vec(n, n, entries.to_vec()).unwrap();
    let mut p = g.transpose().matmul(&g).unwrap().scale(1.0 / n as f64);
    for i in 0..n {
        p[(i, i)] += 0.5;
    }
    p
}

fn qp(p: &Matrix, q: &[f64]) -> QpProblem {
    let n = q.len();
    QpProblem::new(
        p.clone(),
        q.to_vec(),
        Matrix::identity(n),
        vec![-1.0; n],
        vec![1.0; n],
    )
    .unwrap()
}

/// A unit-ball-ish constraint `½‖x‖² − ½r² ≤ 0` centered at the origin.
fn ball(n: usize, radius: f64) -> QuadraticForm {
    QuadraticForm {
        p: Matrix::identity(n),
        q: vec![0.0; n],
        r: -0.5 * radius * radius,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold and warm QP solves of a drifting instance agree on the
    /// objective to 1e-6, for every drift in the sequence.
    #[test]
    fn qp_warm_objective_matches_cold(
        entries in prop::collection::vec(-1.5f64..1.5, 9),
        q in prop::collection::vec(-2.0f64..2.0, 3),
        drifts in prop::collection::vec(-1e-3f64..1e-3, 1..4),
    ) {
        let p = spd(&entries, 3);
        let s = QpSettings::default();
        let mut cache = WarmCache::new(8);
        cache.solve_qp(&qp(&p, &q), &s).unwrap();
        let mut qd = q.clone();
        for d in drifts {
            for v in &mut qd {
                *v += d;
            }
            let prob = qp(&p, &qd);
            let (warm, _) = cache.solve_qp(&prob, &s).unwrap();
            let cold = prob.solve(&s).unwrap();
            prop_assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            prop_assert!(vector::norm_inf(&vector::sub(&warm.x, &cold.x)) < 1e-3);
        }
    }

    /// Same agreement for the barrier QCQP under drift of the linear
    /// objective term.
    #[test]
    fn qcqp_warm_objective_matches_cold(
        q0 in prop::collection::vec(-1.0f64..1.0, 2),
        drift in -1e-3f64..1e-3,
    ) {
        let s = QcqpSettings::default();
        let make = |shift: f64| {
            let q: Vec<f64> = q0.iter().map(|v| v + shift).collect();
            let obj = QuadraticForm::new(Matrix::identity(2), q, 0.0).unwrap();
            QcqpProblem::new(obj, vec![ball(2, 1.5)], None).unwrap()
        };
        let mut cache = WarmCache::new(8);
        cache.solve_qcqp(&make(0.0), &s).unwrap();
        let drifted = make(drift);
        let (warm, _) = cache.solve_qcqp(&drifted, &s).unwrap();
        let cold = drifted.solve(&s).unwrap();
        prop_assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    /// Same agreement for the conic-ADMM SDP under drift of C.
    #[test]
    fn sdp_warm_objective_matches_cold(
        diag in 1.5f64..3.0,
        off in -0.9f64..0.9,
        eps in -1e-3f64..1e-3,
    ) {
        let s = SdpSettings::default();
        let make = |e: f64| {
            let c = Matrix::from_rows(&[&[diag + e, off], &[off, diag - e]]).unwrap();
            SdpProblem::new(c, vec![(Matrix::identity(2), 1.0)]).unwrap()
        };
        let mut cache = WarmCache::new(8);
        cache.solve_sdp(&make(0.0), &s).unwrap();
        let drifted = make(eps);
        let (warm, _) = cache.solve_sdp(&drifted, &s).unwrap();
        let cold = drifted.solve(&s).unwrap();
        prop_assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    /// Cache bookkeeping is a pure function of the request sequence:
    /// replaying any sequence into a fresh cache reproduces identical
    /// hit/miss/eviction counts and identical solutions.
    #[test]
    fn eviction_and_hits_are_deterministic(
        seq in prop::collection::vec(0usize..4, 1..12),
    ) {
        let s = QpSettings::default();
        // Four structurally distinct instances (different n) against a
        // capacity-2 cache forces evictions on most sequences.
        let probs: Vec<QpProblem> = (2..6)
            .map(|n| {
                QpProblem::new(
                    Matrix::identity(n),
                    vec![-0.5; n],
                    Matrix::identity(n),
                    vec![-1.0; n],
                    vec![1.0; n],
                )
                .unwrap()
            })
            .collect();
        let run = || {
            let mut cache = WarmCache::new(2);
            let mut log = Vec::new();
            for &i in &seq {
                let (sol, rep) = cache.solve_qp(&probs[i], &s).unwrap();
                log.push((rep.hit, rep.exact, sol.objective.to_bits()));
            }
            (log, cache.stats())
        };
        let (log_a, stats_a) = run();
        let (log_b, stats_b) = run();
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(stats_a.hits, stats_b.hits);
        prop_assert_eq!(stats_a.misses, stats_b.misses);
        prop_assert_eq!(stats_a.evictions, stats_b.evictions);
        prop_assert_eq!(stats_a.hits + stats_a.misses, seq.len() as u64);
    }
}
