//! Property-based invariants of the convex solvers.

use proptest::prelude::*;
use rcr_convex::envelope::{exp_envelopes, log_envelopes, square_envelopes, Interval};
use rcr_convex::qp::{solve_box_qp, QpSettings};
use rcr_convex::quasi_newton::{lbfgs, QuasiNewtonSettings};
use rcr_convex::trust_region::solve_trust_region;
use rcr_linalg::{vector, Matrix};

fn spd(entries: &[f64], n: usize) -> Matrix {
    let g = Matrix::from_vec(n, n, entries.to_vec()).unwrap();
    let mut p = g.transpose().matmul(&g).unwrap().scale(1.0 / n as f64);
    for i in 0..n {
        p[(i, i)] += 0.5;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn box_qp_solution_feasible_and_locally_optimal(
        entries in prop::collection::vec(-1.5f64..1.5, 9),
        q in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        let p = spd(&entries, 3);
        let sol = solve_box_qp(
            p.clone(),
            q.clone(),
            vec![-1.0; 3],
            vec![1.0; 3],
            &QpSettings::default(),
        )
        .unwrap();
        // Feasible.
        for &xi in &sol.x {
            prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&xi));
        }
        // No interior coordinate descent direction: projected gradient ~ 0.
        let grad = {
            let mut g = p.matvec(&sol.x).unwrap();
            vector::axpy(1.0, &q, &mut g);
            g
        };
        for (xi, gi) in sol.x.iter().zip(&grad) {
            let proj = if *xi <= -1.0 + 1e-5 {
                gi.min(0.0) // pushing further out is blocked
            } else if *xi >= 1.0 - 1e-5 {
                gi.max(0.0)
            } else {
                *gi
            };
            prop_assert!(proj.abs() < 1e-3, "projected gradient {proj} at x={xi}");
        }
    }

    #[test]
    fn trust_region_beats_scaled_gradient_points(
        entries in prop::collection::vec(-1.5f64..1.5, 9),
        g in prop::collection::vec(-2.0f64..2.0, 3),
        delta in 0.2f64..2.0,
    ) {
        // Indefinite B: subtract a diagonal shift.
        let mut b = spd(&entries, 3);
        b[(1, 1)] -= 1.5;
        let sol = solve_trust_region(&b, &g, delta).unwrap();
        prop_assert!(vector::norm2(&sol.x) <= delta * (1.0 + 1e-6));
        let model = |x: &[f64]| 0.5 * b.quadratic_form(x).unwrap() + vector::dot(&g, x);
        // Compare against the clipped steepest-descent point and origin.
        let gn = vector::norm2(&g).max(1e-9);
        let sd: Vec<f64> = g.iter().map(|v| -v * delta / gn).collect();
        prop_assert!(model(&sol.x) <= model(&sd) + 1e-7);
        prop_assert!(model(&sol.x) <= 0.0 + 1e-9); // origin is feasible
    }

    #[test]
    fn lbfgs_minimizes_random_convex_quadratics(
        entries in prop::collection::vec(-1.5f64..1.5, 16),
        c in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        let p = spd(&entries, 4);
        let pc = p.clone();
        let cc = c.clone();
        let f = (
            move |x: &[f64]| 0.5 * pc.quadratic_form(x).unwrap() + vector::dot(&cc, x),
            {
                let p2 = p.clone();
                let c2 = c.clone();
                move |x: &[f64]| {
                    let mut g = p2.matvec(x).unwrap();
                    vector::axpy(1.0, &c2, &mut g);
                    g
                }
            },
        );
        let r = lbfgs(&f, &[0.5; 4], &QuasiNewtonSettings::default()).unwrap();
        prop_assert!(r.grad_norm < 1e-5, "grad norm {}", r.grad_norm);
        // Optimality: P x* = -c.
        let px = p.matvec(&r.x).unwrap();
        for (a, b) in px.iter().zip(&c) {
            prop_assert!((a + b).abs() < 1e-5);
        }
    }

    #[test]
    fn envelopes_always_bracket(
        t in 0.0f64..1.0,
        lo in -1.0f64..0.0,
        hi in 1.0f64..2.0,
    ) {
        let iv = Interval::new(lo, hi).unwrap();
        // Envelopes are only estimators *within* the interval.
        let x = lo + t * (hi - lo);
        let sq = square_envelopes();
        prop_assert!((sq.under)(x, iv) <= x * x + 1e-12);
        prop_assert!((sq.over)(x, iv) >= x * x - 1e-12);
        let ex = exp_envelopes();
        prop_assert!((ex.under)(x, iv) <= x.exp() + 1e-12);
        prop_assert!((ex.over)(x, iv) >= x.exp() - 1e-12);
        // log over a shifted positive interval.
        let ivp = Interval::new(lo + 1.5, hi + 1.5).unwrap();
        let xp = x + 1.5;
        let lg = log_envelopes();
        prop_assert!((lg.under)(xp, ivp) <= xp.ln() + 1e-12);
        prop_assert!((lg.over)(xp, ivp) >= xp.ln() - 1e-12);
    }

    #[test]
    fn envelopes_clamp_outside_the_interval(
        x in -4.0f64..4.0,
        lo in -1.0f64..0.0,
        hi in 1.0f64..2.0,
    ) {
        // Outside [lo, hi] the evaluators clamp to the nearest endpoint:
        // they must agree with evaluation at the clamped point and still
        // bracket the function there. (The committed regression shrank to
        // x = 1.6514… outside [0, 1], where the unclamped secant violated
        // the over-estimator property.)
        let iv = Interval::new(lo, hi).unwrap();
        let xc = x.clamp(lo, hi);
        let sq = square_envelopes();
        prop_assert_eq!((sq.under)(x, iv), (sq.under)(xc, iv));
        prop_assert_eq!((sq.over)(x, iv), (sq.over)(xc, iv));
        prop_assert!((sq.under)(x, iv) <= xc * xc + 1e-12);
        prop_assert!((sq.over)(x, iv) >= xc * xc - 1e-12);
        let ex = exp_envelopes();
        prop_assert_eq!((ex.under)(x, iv), (ex.under)(xc, iv));
        prop_assert_eq!((ex.over)(x, iv), (ex.over)(xc, iv));
        prop_assert!((ex.under)(x, iv) <= xc.exp() + 1e-12);
        prop_assert!((ex.over)(x, iv) >= xc.exp() - 1e-12);
        let ivp = Interval::new(lo + 1.5, hi + 1.5).unwrap();
        let xp = x + 1.5;
        let xpc = xp.clamp(ivp.lo, ivp.hi);
        let lg = log_envelopes();
        prop_assert_eq!((lg.under)(xp, ivp), (lg.under)(xpc, ivp));
        prop_assert_eq!((lg.over)(xp, ivp), (lg.over)(xpc, ivp));
        prop_assert!((lg.under)(xp, ivp) <= xpc.ln() + 1e-12);
        prop_assert!((lg.over)(xp, ivp) >= xpc.ln() - 1e-12);
    }
}

// The two committed `.proptest-regressions` entries, pinned verbatim.
// The hashes in that file seed deterministic re-runs, but only these
// explicit tests guarantee the exact shrunk inputs are exercised forever.

/// Regression: envelope evaluation at `x = 1.6514…` outside `[0, 1]`.
/// The secant over-estimator of `x²` drops below the function past the
/// interval's endpoints; evaluators now clamp into the domain.
#[test]
fn regression_envelope_eval_outside_unit_interval() {
    let x = 1.6514108859079446;
    let iv = Interval::new(0.0, 1.0).unwrap();
    let sq = square_envelopes();
    let (under, over) = ((sq.under)(x, iv), (sq.over)(x, iv));
    // Clamped to x = 1: both envelopes are tight there.
    assert!((under - 1.0).abs() < 1e-12, "under {under}");
    assert!((over - 1.0).abs() < 1e-12, "over {over}");
    assert!(under <= over + 1e-12);
    let ex = exp_envelopes();
    assert!((ex.under)(x, iv) <= (ex.over)(x, iv) + 1e-12);
}

/// Regression: the 16-entry / 4-variable convex QP seed on which L-BFGS
/// previously failed to reach `‖∇f‖ < 1e-5`.
#[test]
fn regression_lbfgs_16_entry_qp_seed() {
    let entries = [
        -1.4663293634095564,
        -0.4506176827006783,
        -1.2450442866608744,
        -1.2966601939069196,
        -0.3653276387387392,
        1.4315619095936067,
        1.3218844117518123,
        1.2138550035106765,
        -1.0461436958712726,
        -0.955029071148894,
        1.332398423496511,
        -0.3828945983497529,
        -1.10937747446934,
        -0.6203492179313033,
        0.8211217364320947,
        -0.4931901391132402,
    ];
    let c = [
        1.1275874948676459,
        -1.694791689833862,
        -1.713799776059315,
        0.5225958624960229,
    ];
    let p = spd(&entries, 4);
    let pc = p.clone();
    let cc = c.to_vec();
    let f = (
        move |x: &[f64]| 0.5 * pc.quadratic_form(x).unwrap() + vector::dot(&cc, x),
        {
            let p2 = p.clone();
            let c2 = c.to_vec();
            move |x: &[f64]| {
                let mut g = p2.matvec(x).unwrap();
                vector::axpy(1.0, &c2, &mut g);
                g
            }
        },
    );
    let r = lbfgs(&f, &[0.5; 4], &QuasiNewtonSettings::default()).unwrap();
    assert!(r.grad_norm < 1e-5, "grad norm {}", r.grad_norm);
    let px = p.matvec(&r.x).unwrap();
    for (a, b) in px.iter().zip(&c) {
        assert!((a + b).abs() < 1e-5, "P x* + c residual {}", (a + b).abs());
    }
}
