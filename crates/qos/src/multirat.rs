//! Multi-RAT assignment — the paper's second QoS example: "Multi-Radio
//! Access Technology (RAT) handling for multi-connectivity (each with its
//! own QoS requirements)".
//!
//! Each user is attached to exactly one RAT (e.g. sub-6 GHz NR, mmWave,
//! WiFi offload); RAT `r` supports at most `capacity[r]` users; attaching
//! user `u` to RAT `r` yields utility `utility[u][r]` (rate scaled by the
//! user's QoS weight). Maximize total utility — an integer program solved
//! exactly via [`rcr_minlp`], with a greedy baseline.

use crate::QosError;
use rcr_minlp::{BnbSettings, MinlpError, RelaxableProblem, Relaxation};

/// A multi-RAT assignment problem.
#[derive(Debug, Clone)]
pub struct MultiRatProblem {
    utility: Vec<Vec<f64>>,
    capacity: Vec<usize>,
}

/// A solved assignment.
#[derive(Debug, Clone)]
pub struct MultiRatSolution {
    /// User → RAT assignment.
    pub assignment: Vec<usize>,
    /// Total utility.
    pub utility: f64,
    /// Users per RAT.
    pub load: Vec<usize>,
}

impl MultiRatProblem {
    /// Builds a problem from a `users x rats` utility matrix and per-RAT
    /// capacities.
    ///
    /// # Errors
    /// Returns [`QosError::InvalidParameter`] for empty/ragged utilities,
    /// mismatched capacities, or total capacity below the user count.
    // rcr-lint: unit(utility = Dimensionless, reason = "abstract association utility; any rate-derived score must be normalized before it enters")
    pub fn new(utility: Vec<Vec<f64>>, capacity: Vec<usize>) -> Result<Self, QosError> {
        if utility.is_empty() || utility[0].is_empty() {
            return Err(QosError::InvalidParameter("empty utility matrix".into()));
        }
        let rats = utility[0].len();
        if utility.iter().any(|row| row.len() != rats) {
            return Err(QosError::InvalidParameter("ragged utility matrix".into()));
        }
        if capacity.len() != rats {
            return Err(QosError::InvalidParameter(format!(
                "{} capacities for {rats} RATs",
                capacity.len()
            )));
        }
        if capacity.iter().sum::<usize>() < utility.len() {
            return Err(QosError::InvalidParameter(
                "total capacity below user count".into(),
            ));
        }
        if utility.iter().flatten().any(|v| !v.is_finite()) {
            return Err(QosError::InvalidParameter("non-finite utility".into()));
        }
        Ok(MultiRatProblem { utility, capacity })
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.utility.len()
    }

    /// Number of RATs.
    pub fn rats(&self) -> usize {
        self.capacity.len()
    }

    /// Total utility and per-RAT load of an assignment; `None` when a
    /// capacity is violated.
    pub fn evaluate(&self, assignment: &[usize]) -> Option<MultiRatSolution> {
        if assignment.len() != self.users() || assignment.iter().any(|&r| r >= self.rats()) {
            return None;
        }
        let mut load = vec![0usize; self.rats()];
        let mut total = 0.0;
        for (u, &r) in assignment.iter().enumerate() {
            load[r] += 1;
            total += self.utility[u][r];
        }
        if load.iter().zip(&self.capacity).any(|(l, c)| l > c) {
            return None;
        }
        Some(MultiRatSolution {
            assignment: assignment.to_vec(),
            utility: total,
            load,
        })
    }
}

struct MultiRatMinlp<'a> {
    problem: &'a MultiRatProblem,
}

impl RelaxableProblem for MultiRatMinlp<'_> {
    fn num_integers(&self) -> usize {
        self.problem.users()
    }

    fn integer_bounds(&self) -> Vec<(i64, i64)> {
        vec![(0, self.problem.rats() as i64 - 1); self.problem.users()]
    }

    fn solve_relaxation(&self, bounds: &[(i64, i64)]) -> Result<Relaxation, MinlpError> {
        // Drop capacities: each user independently takes the best RAT in
        // its range — a valid upper bound on utility (lower bound on the
        // negated objective).
        let mut total = 0.0;
        let mut values = Vec::with_capacity(bounds.len());
        for (u, &(lo, hi)) in bounds.iter().enumerate() {
            let mut best = (lo as usize, f64::NEG_INFINITY);
            for r in lo..=hi {
                let v = self.problem.utility[u][r as usize];
                if v > best.1 {
                    best = (r as usize, v);
                }
            }
            total += best.1;
            values.push(best.0 as f64);
        }
        Ok(Relaxation {
            lower_bound: -total,
            values,
        })
    }

    fn evaluate_assignment(&self, assignment: &[i64]) -> Result<Option<f64>, MinlpError> {
        let a: Vec<usize> = assignment.iter().map(|&v| v as usize).collect();
        Ok(self.problem.evaluate(&a).map(|s| -s.utility))
    }
}

/// Solves multi-RAT assignment to proven optimality.
///
/// # Errors
/// Propagates [`rcr_minlp`] errors.
pub fn solve_exact(
    problem: &MultiRatProblem,
    settings: &BnbSettings,
) -> Result<MultiRatSolution, QosError> {
    let adapter = MultiRatMinlp { problem };
    let report = rcr_minlp::solve(&adapter, settings)?;
    let a: Vec<usize> = report.assignment.iter().map(|&v| v as usize).collect();
    problem
        .evaluate(&a)
        .ok_or_else(|| QosError::Solver("optimal assignment failed re-evaluation".into()))
}

/// Greedy baseline: users in order of their best-vs-second-best utility
/// gap pick their best RAT with remaining capacity.
///
/// # Errors
/// Returns [`QosError::Solver`] when the constructed assignment fails
/// re-evaluation — possible only for a degenerate RAT table, and reported
/// as an error rather than a panic so a long-running service thread
/// survives it.
pub fn solve_greedy(problem: &MultiRatProblem) -> Result<MultiRatSolution, QosError> {
    let users = problem.users();
    let rats = problem.rats();
    let mut order: Vec<usize> = (0..users).collect();
    let regret = |u: usize| -> f64 {
        let mut vals: Vec<f64> = problem.utility[u].clone();
        vals.sort_by(|a, b| b.total_cmp(a));
        if vals.len() > 1 {
            vals[0] - vals[1]
        } else {
            vals[0]
        }
    };
    order.sort_by(|&a, &b| regret(b).total_cmp(&regret(a)));
    let mut remaining = problem.capacity.clone();
    let mut assignment = vec![0usize; users];
    for &u in &order {
        let mut rats_by_pref: Vec<usize> = (0..rats).collect();
        rats_by_pref.sort_by(|&a, &b| problem.utility[u][b].total_cmp(&problem.utility[u][a]));
        for r in rats_by_pref {
            if remaining[r] > 0 {
                remaining[r] -= 1;
                assignment[u] = r;
                break;
            }
        }
    }
    problem
        .evaluate(&assignment)
        .ok_or_else(|| QosError::Solver("greedy multi-RAT assignment failed re-evaluation".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> MultiRatProblem {
        // 4 users, 2 RATs; RAT 0 capacity 2.
        MultiRatProblem::new(
            vec![
                vec![10.0, 1.0],
                vec![9.0, 8.0],
                vec![8.0, 2.0],
                vec![7.0, 6.5],
            ],
            vec![2, 4],
        )
        .unwrap()
    }

    #[test]
    fn exact_matches_brute_force() {
        let p = toy();
        let exact = solve_exact(&p, &BnbSettings::default()).unwrap();
        let mut best = 0.0f64;
        for mask in 0..16usize {
            let a: Vec<usize> = (0..4).map(|u| (mask >> u) & 1).collect();
            if let Some(s) = p.evaluate(&a) {
                best = best.max(s.utility);
            }
        }
        assert!(
            (exact.utility - best).abs() < 1e-9,
            "exact {} vs brute {best}",
            exact.utility
        );
        // Users 0 and 2 have the largest regret → RAT 0; 1 and 3 spill.
        assert_eq!(exact.assignment, vec![0, 1, 0, 1]);
    }

    #[test]
    fn capacity_respected() {
        let p = toy();
        let exact = solve_exact(&p, &BnbSettings::default()).unwrap();
        assert!(exact.load[0] <= 2);
        assert!(p.evaluate(&[0, 0, 0, 1]).is_none()); // over capacity
    }

    #[test]
    fn greedy_feasible_and_close() {
        let p = toy();
        let exact = solve_exact(&p, &BnbSettings::default()).unwrap();
        let greedy = solve_greedy(&p).unwrap();
        assert!(greedy.utility <= exact.utility + 1e-9);
        assert!(
            greedy.utility >= 0.9 * exact.utility,
            "greedy {}",
            greedy.utility
        );
    }

    #[test]
    fn validation() {
        assert!(MultiRatProblem::new(vec![], vec![1]).is_err());
        assert!(MultiRatProblem::new(vec![vec![1.0], vec![1.0, 2.0]], vec![2]).is_err());
        assert!(MultiRatProblem::new(vec![vec![1.0, 2.0]], vec![1]).is_err());
        assert!(MultiRatProblem::new(vec![vec![1.0]], vec![0]).is_err());
        assert!(MultiRatProblem::new(vec![vec![f64::NAN]], vec![1]).is_err());
    }

    #[test]
    fn evaluate_rejects_bad_assignments() {
        let p = toy();
        assert!(p.evaluate(&[0, 1]).is_none());
        assert!(p.evaluate(&[0, 1, 0, 9]).is_none());
    }
}
