//! The Radio Resource Allocation MINLP and its three solvers.
//!
//! Per the paper's §I formulation: frequency–time resource blocks are the
//! integer variables (which connection owns each block), transmit powers
//! the continuous variables, the objective is spectral efficiency, and
//! per-connection minimum rates are the QoS guarantees. Solvers:
//!
//! * [`solve_exact`] — branch-and-bound over the per-RB best-user convex
//!   relaxation ([`rcr_minlp`]), with water-filling inner solves: the
//!   global optimum with a certificate.
//! * [`solve_pso`] — the metaheuristic the paper leans on (§II-A), using
//!   distribution-attribute discrete PSO with a penalty for unmet rates.
//! * [`solve_greedy`] — the max-gain baseline with a repair pass.

use crate::channel::Channel;
use crate::power::{solve_power, PowerProblem, PowerSolution};
use crate::QosError;
use rcr_minlp::{BnbSettings, MinlpError, RelaxableProblem, Relaxation};
use rcr_pso::discrete::{minimize_mixed, DiscreteStrategy, VarSpec};
use rcr_pso::swarm::PsoSettings;
use rcr_runtime::BatchSolve;

/// An RRA problem instance.
#[derive(Debug, Clone)]
pub struct RraProblem {
    channel: Channel,
    /// Noise power per RB (W).
    pub noise_power_w: f64,
    /// Total transmit power budget (W).
    pub power_budget_w: f64,
    /// Bandwidth per RB (Hz).
    pub rb_bandwidth_hz: f64,
    /// Minimum rate per user (bit/s).
    pub min_rates_bps: Vec<f64>,
}

/// A solved allocation.
#[derive(Debug, Clone)]
pub struct RraSolution {
    /// RB → user assignment.
    pub owners: Vec<usize>,
    /// The inner power allocation.
    pub power: PowerSolution,
    /// Total downlink rate (bit/s).
    pub total_rate_bps: f64,
    /// Spectral efficiency (bit/s/Hz over the whole band).
    pub spectral_efficiency: f64,
    /// Whether all minimum rates are satisfied.
    pub qos_satisfied: bool,
}

impl RraProblem {
    /// Builds a problem over a channel realization.
    ///
    /// # Errors
    /// Returns [`QosError::InvalidParameter`] on malformed data.
    // rcr-lint: unit(noise_power_w = PowerLinear, power_budget_w = PowerLinear, rb_bandwidth_hz = Hz, reason = "problem data is linear-domain watts and Hz; dB inputs must be converted upstream")
    pub fn new(
        channel: Channel,
        noise_power_w: f64,
        power_budget_w: f64,
        rb_bandwidth_hz: f64,
        min_rates_bps: Vec<f64>,
    ) -> Result<Self, QosError> {
        if min_rates_bps.len() != channel.users() {
            return Err(QosError::InvalidParameter(format!(
                "{} min rates for {} users",
                min_rates_bps.len(),
                channel.users()
            )));
        }
        if !(noise_power_w > 0.0) || !(power_budget_w > 0.0) || !(rb_bandwidth_hz > 0.0) {
            return Err(QosError::InvalidParameter(
                "noise, budget and bandwidth must be positive".into(),
            ));
        }
        if min_rates_bps.iter().any(|r| *r < 0.0 || !r.is_finite()) {
            return Err(QosError::InvalidParameter(
                "negative or non-finite min rate".into(),
            ));
        }
        Ok(RraProblem {
            channel,
            noise_power_w,
            power_budget_w,
            rb_bandwidth_hz,
            min_rates_bps,
        })
    }

    /// The underlying channel.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.channel.users()
    }

    /// Number of resource blocks.
    pub fn resource_blocks(&self) -> usize {
        self.channel.resource_blocks()
    }

    /// Normalized gain `a = g / N` of `user` on `rb`.
    // rcr-lint: unit(return = GainLinear, reason = "linear power ratio gain/noise, the `a_k` of the water-filling inner problem")
    pub fn normalized_gain(&self, user: usize, rb: usize) -> f64 {
        self.channel.gain(user, rb) / self.noise_power_w
    }

    /// Evaluates a full assignment: inner water-filling power solve with
    /// the minimum-rate constraints.
    ///
    /// # Errors
    /// Propagates power-allocation failures and index errors.
    pub fn evaluate(&self, owners: &[usize]) -> Result<RraSolution, QosError> {
        if owners.len() != self.resource_blocks() {
            return Err(QosError::InvalidParameter(format!(
                "{} owners for {} RBs",
                owners.len(),
                self.resource_blocks()
            )));
        }
        if owners.iter().any(|&u| u >= self.users()) {
            return Err(QosError::InvalidParameter(
                "owner index out of range".into(),
            ));
        }
        let gains: Vec<f64> = owners
            .iter()
            .enumerate()
            .map(|(k, &u)| self.normalized_gain(u, k))
            .collect();
        let power = solve_power(&PowerProblem {
            gains,
            owners: owners.to_vec(),
            power_budget: self.power_budget_w,
            rb_bandwidth_hz: self.rb_bandwidth_hz,
            min_rates_bps: self.min_rates_bps.clone(),
        })?;
        let band = self.rb_bandwidth_hz * self.resource_blocks() as f64;
        Ok(RraSolution {
            owners: owners.to_vec(),
            total_rate_bps: power.total_rate_bps,
            spectral_efficiency: power.total_rate_bps / band,
            qos_satisfied: power.feasible,
            power,
        })
    }

    /// Evaluates many candidate assignments, fanning the independent
    /// water-filling solves across `workers` threads (`0` = auto: the
    /// `RCR_WORKERS` environment variable, else serial).
    ///
    /// Results are returned in input order and are identical to calling
    /// [`RraProblem::evaluate`] per assignment — per-candidate errors are
    /// reported in place rather than aborting the batch. This is the
    /// batched evaluation seam for admission sweeps and scheduling
    /// candidate scoring.
    pub fn evaluate_batch(
        &self,
        assignments: &[Vec<usize>],
        workers: usize,
    ) -> Vec<Result<RraSolution, QosError>> {
        let workers = rcr_runtime::resolve_workers(workers);
        self.solve_batch(assignments, workers)
    }

    /// The relaxation bound for an assignment sub-box: each RB may go to
    /// any user in its index range; taking the per-RB maximum gain and
    /// water-filling without rate constraints over-estimates every
    /// feasible completion.
    fn relaxation_rate(&self, bounds: &[(i64, i64)]) -> Result<(f64, Vec<f64>), QosError> {
        let best: Vec<(usize, f64)> = bounds
            .iter()
            .enumerate()
            .map(|(k, &(lo, hi))| {
                let mut best_u = lo as usize;
                let mut best_g = f64::NEG_INFINITY;
                for u in lo..=hi {
                    let g = self.normalized_gain(u as usize, k);
                    if g > best_g {
                        best_g = g;
                        best_u = u as usize;
                    }
                }
                (best_u, best_g)
            })
            .collect();
        let gains: Vec<f64> = best.iter().map(|&(_, g)| g).collect();
        let owners: Vec<usize> = best.iter().map(|&(u, _)| u).collect();
        let sol = solve_power(&PowerProblem {
            gains,
            owners: owners.clone(),
            power_budget: self.power_budget_w,
            rb_bandwidth_hz: self.rb_bandwidth_hz,
            min_rates_bps: vec![0.0; self.users()],
        })?;
        Ok((
            sol.total_rate_bps,
            owners.iter().map(|&u| u as f64).collect(),
        ))
    }
}

/// Candidate-assignment evaluation is the batch-solve workload of the
/// QoS layer: each item is an independent inner water-filling solve, so
/// the runtime's generic fan-out applies directly. [`RraProblem::evaluate_batch`]
/// routes through this impl.
impl BatchSolve for RraProblem {
    type Item = Vec<usize>;
    type Output = Result<RraSolution, QosError>;

    fn solve_item(&self, _index: usize, owners: &Vec<usize>) -> Self::Output {
        self.evaluate(owners)
    }
}

/// MINLP view of an RRA problem (minimizing `−total_rate`).
#[derive(Debug)]
struct RraMinlp<'a> {
    problem: &'a RraProblem,
}

impl RelaxableProblem for RraMinlp<'_> {
    fn num_integers(&self) -> usize {
        self.problem.resource_blocks()
    }

    fn integer_bounds(&self) -> Vec<(i64, i64)> {
        vec![(0, self.problem.users() as i64 - 1); self.problem.resource_blocks()]
    }

    fn solve_relaxation(&self, bounds: &[(i64, i64)]) -> Result<Relaxation, MinlpError> {
        let (rate, values) = self
            .problem
            .relaxation_rate(bounds)
            .map_err(|e| MinlpError::SubproblemFailure(e.to_string()))?;
        Ok(Relaxation {
            lower_bound: -rate,
            values,
        })
    }

    fn evaluate_assignment(&self, assignment: &[i64]) -> Result<Option<f64>, MinlpError> {
        let owners: Vec<usize> = assignment.iter().map(|&v| v as usize).collect();
        let sol = self
            .problem
            .evaluate(&owners)
            .map_err(|e| MinlpError::SubproblemFailure(e.to_string()))?;
        Ok(if sol.qos_satisfied {
            Some(-sol.total_rate_bps)
        } else {
            None
        })
    }
}

/// Solves the RRA MINLP to proven optimality by branch-and-bound.
///
/// # Errors
/// Propagates [`rcr_minlp`] errors (infeasibility, budget exhaustion).
pub fn solve_exact(problem: &RraProblem, settings: &BnbSettings) -> Result<RraSolution, QosError> {
    let adapter = RraMinlp { problem };
    let report = rcr_minlp::solve(&adapter, settings)?;
    let owners: Vec<usize> = report.assignment.iter().map(|&v| v as usize).collect();
    problem.evaluate(&owners)
}

/// The relaxation upper bound on the total rate (drop integrality *and*
/// minimum rates) — the certificate companion to heuristic solvers.
// rcr-lint: unit(return = BitsPerSec, reason = "upper bound on the same bit/s objective the solvers report")
pub fn relaxation_bound_bps(problem: &RraProblem) -> f64 {
    let bounds = vec![(0i64, problem.users() as i64 - 1); problem.resource_blocks()];
    // Validated problem data cannot fail the unconstrained water-filling;
    // degrade to 0 (a useless but sound bound) rather than panicking.
    problem
        .relaxation_rate(&bounds)
        .map(|(r, _)| r)
        .unwrap_or(0.0)
}

/// Solves the RRA problem with discrete PSO (distribution attributes) and
/// a rate-violation penalty.
///
/// # Errors
/// Propagates PSO and evaluation errors.
pub fn solve_pso(problem: &RraProblem, settings: &PsoSettings) -> Result<RraSolution, QosError> {
    let specs = vec![
        VarSpec::Integer {
            lo: 0,
            hi: problem.users() as i64 - 1
        };
        problem.resource_blocks()
    ];
    let band = problem.rb_bandwidth_hz * problem.resource_blocks() as f64;
    let fitness = |x: &[f64]| -> f64 {
        let owners: Vec<usize> = x.iter().map(|&v| v as usize).collect();
        match problem.evaluate(&owners) {
            Ok(sol) => {
                let violation: f64 = sol
                    .power
                    .user_rates_bps
                    .iter()
                    .zip(&problem.min_rates_bps)
                    .map(|(r, m)| (m - r).max(0.0))
                    .sum();
                (-sol.total_rate_bps + 10.0 * violation) / band
            }
            Err(_) => f64::MAX / 1e6,
        }
    };
    let result = minimize_mixed(fitness, &specs, DiscreteStrategy::Distribution, settings)?;
    let owners: Vec<usize> = result.best_position.iter().map(|&v| v as usize).collect();
    problem.evaluate(&owners)
}

/// Greedy baseline: give each RB to its best-gain user, then repair unmet
/// minimum rates by reassigning the weakest blocks of over-served users.
///
/// # Errors
/// Propagates evaluation errors.
pub fn solve_greedy(problem: &RraProblem) -> Result<RraSolution, QosError> {
    // IEEE total order throughout this solver: a NaN gain ranks above
    // every finite gain (total_cmp), so a corrupt channel entry claims
    // the block deterministically and surfaces in evaluate() instead of
    // panicking mid-assignment.
    let mut owners = Vec::with_capacity(problem.resource_blocks());
    for k in 0..problem.resource_blocks() {
        let owner = (0..problem.users())
            .max_by(|&a, &b| {
                problem
                    .normalized_gain(a, k)
                    .total_cmp(&problem.normalized_gain(b, k))
            })
            .ok_or_else(|| QosError::InvalidParameter("problem has no users".into()))?;
        owners.push(owner);
    }
    let best = problem.evaluate(&owners)?;
    repair_min_rates(problem, &mut owners, best)
}

/// Repair pass shared by the greedy and robust solvers: while some user
/// misses its minimum rate, hand the most-deficient user its best-gain
/// block among those it does not own, re-evaluating after each steal
/// (bounded by one round per resource block).
///
/// # Errors
/// Propagates evaluation errors.
pub(crate) fn repair_min_rates(
    problem: &RraProblem,
    owners: &mut [usize],
    mut best: RraSolution,
) -> Result<RraSolution, QosError> {
    for _round in 0..problem.resource_blocks() {
        if best.qos_satisfied {
            break;
        }
        let rates = &best.power.user_rates_bps;
        let Some(needy) = (0..problem.users())
            .filter(|&u| rates[u] < problem.min_rates_bps[u] - 1e-9)
            .max_by(|&a, &b| {
                let da = problem.min_rates_bps[a] - rates[a];
                let db = problem.min_rates_bps[b] - rates[b];
                // NaN deficit ranks greatest: the corrupt user is
                // repaired first and the NaN reaches evaluate().
                da.total_cmp(&db)
            })
        else {
            break;
        };
        let candidate = (0..problem.resource_blocks())
            .filter(|&k| owners[k] != needy)
            .max_by(|&a, &b| {
                problem
                    .normalized_gain(needy, a)
                    .total_cmp(&problem.normalized_gain(needy, b))
            });
        let Some(k) = candidate else { break };
        owners[k] = needy;
        let sol = problem.evaluate(owners)?;
        best = sol;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelConfig};

    fn problem(users: usize, rbs: usize, seed: u64, min_rate: f64) -> RraProblem {
        let ch = Channel::generate(&ChannelConfig::default(), users, rbs, seed).unwrap();
        RraProblem::new(ch, 1e-12, 1.0, 180e3, vec![min_rate; users]).unwrap()
    }

    #[test]
    fn evaluate_checks_inputs() {
        let p = problem(2, 4, 1, 0.0);
        assert!(p.evaluate(&[0, 1]).is_err());
        assert!(p.evaluate(&[0, 1, 2, 0]).is_err());
        assert!(p.evaluate(&[0, 1, 0, 1]).is_ok());
    }

    #[test]
    fn exact_beats_or_matches_greedy() {
        for seed in [1u64, 2, 3] {
            let p = problem(3, 5, seed, 1e5);
            let exact = solve_exact(&p, &BnbSettings::default()).unwrap();
            let greedy = solve_greedy(&p).unwrap();
            assert!(exact.qos_satisfied);
            if greedy.qos_satisfied {
                assert!(
                    exact.total_rate_bps >= greedy.total_rate_bps - 1e-6,
                    "seed {seed}: exact {} < greedy {}",
                    exact.total_rate_bps,
                    greedy.total_rate_bps
                );
            }
        }
    }

    #[test]
    fn exact_within_relaxation_bound() {
        let p = problem(3, 6, 5, 1e5);
        let exact = solve_exact(&p, &BnbSettings::default()).unwrap();
        let bound = relaxation_bound_bps(&p);
        assert!(exact.total_rate_bps <= bound + 1e-6);
        // The bound should not be absurdly loose on small instances.
        assert!(
            exact.total_rate_bps > 0.5 * bound,
            "rate {} bound {bound}",
            exact.total_rate_bps
        );
    }

    #[test]
    fn exact_matches_brute_force_tiny() {
        let p = problem(2, 4, 7, 5e4);
        let exact = solve_exact(&p, &BnbSettings::default()).unwrap();
        // Brute force all 2^4 assignments.
        let mut best = 0.0f64;
        for mask in 0..16usize {
            let owners: Vec<usize> = (0..4).map(|k| (mask >> k) & 1).collect();
            let sol = p.evaluate(&owners).unwrap();
            if sol.qos_satisfied && sol.total_rate_bps > best {
                best = sol.total_rate_bps;
            }
        }
        assert!(
            (exact.total_rate_bps - best).abs() <= 1e-6 * best,
            "bnb {} vs brute {best}",
            exact.total_rate_bps
        );
    }

    #[test]
    fn pso_finds_feasible_near_optimal() {
        let p = problem(3, 6, 9, 1e5);
        let exact = solve_exact(&p, &BnbSettings::default()).unwrap();
        let pso = solve_pso(
            &p,
            &PsoSettings {
                swarm_size: 20,
                max_iter: 60,
                seed: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            pso.qos_satisfied,
            "PSO rates {:?}",
            pso.power.user_rates_bps
        );
        assert!(
            pso.total_rate_bps >= 0.85 * exact.total_rate_bps,
            "pso {} vs exact {}",
            pso.total_rate_bps,
            exact.total_rate_bps
        );
    }

    #[test]
    fn infeasible_min_rates_detected() {
        let p = problem(2, 2, 3, 1e12);
        assert!(matches!(
            solve_exact(&p, &BnbSettings::default()),
            Err(QosError::Solver(_))
        ));
    }

    #[test]
    fn spectral_efficiency_consistent() {
        let p = problem(2, 4, 11, 0.0);
        let sol = solve_greedy(&p).unwrap();
        let band = 180e3 * 4.0;
        assert!((sol.spectral_efficiency - sol.total_rate_bps / band).abs() < 1e-12);
        assert!(sol.spectral_efficiency > 0.0);
    }

    #[test]
    fn problem_validation() {
        let ch = Channel::generate(&ChannelConfig::default(), 2, 2, 0).unwrap();
        assert!(RraProblem::new(ch.clone(), 1e-12, 1.0, 180e3, vec![0.0]).is_err());
        assert!(RraProblem::new(ch.clone(), 0.0, 1.0, 180e3, vec![0.0, 0.0]).is_err());
        assert!(RraProblem::new(ch, 1e-12, 1.0, 180e3, vec![-1.0, 0.0]).is_err());
    }
}
