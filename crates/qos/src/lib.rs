//! 5G QoS resource-management problems — the paper's motivating
//! application domain (§I).
//!
//! "Examples include: Radio Resource Allocation (RRA) (whose aim is to
//! maximize the spectral efficiency, subject to certain performance
//! guarantees), Multi-Radio Access Technology (RAT) handling for
//! multi-connectivity … The involved optimization formulations are, in
//! essence, mixed integer nonlinear programming (MINLP) problems … an RRA
//! problem may be formulated as a problem of optimally assigning
//! frequency-time blocks (integer variables) to a number of served
//! connections while simultaneously determining the appropriate transmit
//! powers (continuous variables)."
//!
//! * [`channel`] — a Rayleigh-faded downlink channel generator with
//!   distance-based path loss.
//! * [`power`] — the continuous inner problem: weighted water-filling
//!   power allocation with per-user minimum-rate constraints (dual
//!   subgradient on the rate multipliers, bisection on the power
//!   multiplier).
//! * [`rra`] — the RRA MINLP: binary resource-block assignment × power
//!   allocation, implementing [`rcr_minlp::RelaxableProblem`] for exact
//!   branch-and-bound, plus a PSO metaheuristic adapter and a greedy
//!   baseline.
//! * [`robust`] — the robust convex relaxation of the RRA assignment
//!   (uncertainty margin from the gain-profile Gram spectrum, box QP,
//!   round + repair), with a batched pre-factorization path for serving.
//! * [`multirat`] — the multi-RAT assignment problem with per-RAT
//!   capacities.
//! * [`workload`] — scenario generators with eMBB/URLLC/mMTC QoS classes.
//!
//! # Example
//!
//! ```
//! use rcr_qos::workload::{Scenario, ScenarioConfig};
//! use rcr_qos::rra::solve_exact;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::generate(&ScenarioConfig { users: 3, resource_blocks: 6, ..Default::default() }, 7)?;
//! let solution = solve_exact(&scenario.rra, &Default::default())?;
//! assert!(solution.total_rate_bps > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod channel;
pub mod multirat;
pub mod power;
pub mod robust;
pub mod rra;
pub mod scheduler;
pub mod workload;

mod error;

pub use error::QosError;
pub use workload::QosClass;
