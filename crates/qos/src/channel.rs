//! Downlink channel model: log-distance path loss with Rayleigh fading.
//!
//! A substitution for the paper's (unavailable) testbed measurements: the
//! generated gain matrix `g[user][rb]` exercises the same optimization
//! structure — users at different distances see very different channel
//! qualities, and per-RB fading makes assignment genuinely combinatorial.

use crate::QosError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel generation parameters.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Cell radius in meters.
    pub cell_radius_m: f64,
    /// Minimum user distance from the base station in meters.
    pub min_distance_m: f64,
    /// Path-loss exponent (3–4 urban).
    pub path_loss_exponent: f64,
    /// Reference gain at 1 m (linear).
    pub reference_gain: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            cell_radius_m: 250.0,
            min_distance_m: 10.0,
            path_loss_exponent: 3.5,
            reference_gain: 1e-3,
        }
    }
}

/// A realized downlink channel: per-user distances and the per-(user, RB)
/// power gain matrix.
#[derive(Debug, Clone)]
pub struct Channel {
    distances_m: Vec<f64>,
    gains: Vec<Vec<f64>>,
}

impl Channel {
    /// Draws a channel for `users` users over `resource_blocks` RBs.
    ///
    /// # Errors
    /// Returns [`QosError::InvalidParameter`] for zero sizes or a
    /// degenerate geometry.
    pub fn generate(
        config: &ChannelConfig,
        users: usize,
        resource_blocks: usize,
        seed: u64,
    ) -> Result<Self, QosError> {
        if users == 0 || resource_blocks == 0 {
            return Err(QosError::InvalidParameter(
                "users and RBs must be >= 1".into(),
            ));
        }
        if !(config.min_distance_m > 0.0)
            || !(config.cell_radius_m > config.min_distance_m)
            || !(config.path_loss_exponent > 0.0)
            || !(config.reference_gain > 0.0)
        {
            return Err(QosError::InvalidParameter(format!(
                "bad channel geometry {config:?}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Uniform over the disc area → sqrt sampling of radius.
        let distances_m: Vec<f64> = (0..users)
            .map(|_| {
                let u: f64 = rng.gen();
                (config.min_distance_m.powi(2)
                    + u * (config.cell_radius_m.powi(2) - config.min_distance_m.powi(2)))
                .sqrt()
            })
            .collect();
        let gains = distances_m
            .iter()
            .map(|&d| {
                let path = config.reference_gain * d.powf(-config.path_loss_exponent);
                (0..resource_blocks)
                    .map(|_| {
                        // Rayleigh fading: |h|² is Exp(1).
                        let u: f64 = rng.gen_range(1e-12..1.0f64);
                        let fading = -u.ln();
                        path * fading
                    })
                    .collect()
            })
            .collect();
        Ok(Channel { distances_m, gains })
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.gains.len()
    }

    /// Number of resource blocks.
    pub fn resource_blocks(&self) -> usize {
        self.gains[0].len()
    }

    /// User distances from the base station (meters).
    pub fn distances_m(&self) -> &[f64] {
        &self.distances_m
    }

    /// Power gain of `user` on `rb` (linear).
    ///
    /// # Panics
    /// Panics when either index is out of range.
    // rcr-lint: unit(return = GainLinear, reason = "linear |h|^2 path-times-fading power gain, not dB")
    pub fn gain(&self, user: usize, rb: usize) -> f64 {
        self.gains[user][rb]
    }

    /// The full gain matrix.
    pub fn gains(&self) -> &[Vec<f64>] {
        &self.gains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes_and_determinism() {
        let cfg = ChannelConfig::default();
        let a = Channel::generate(&cfg, 4, 8, 3).unwrap();
        let b = Channel::generate(&cfg, 4, 8, 3).unwrap();
        assert_eq!(a.users(), 4);
        assert_eq!(a.resource_blocks(), 8);
        assert_eq!(a.gains(), b.gains());
        let c = Channel::generate(&cfg, 4, 8, 4).unwrap();
        assert_ne!(a.gains(), c.gains());
    }

    #[test]
    fn gains_positive_and_distance_ordered_on_average() {
        let cfg = ChannelConfig::default();
        let ch = Channel::generate(&cfg, 12, 64, 1).unwrap();
        for u in 0..ch.users() {
            for k in 0..ch.resource_blocks() {
                assert!(ch.gain(u, k) > 0.0);
            }
        }
        // Mean gain decreases with distance (fading averages out over RBs).
        let mean = |u: usize| -> f64 {
            (0..ch.resource_blocks())
                .map(|k| ch.gain(u, k))
                .sum::<f64>()
                / ch.resource_blocks() as f64
        };
        let mut idx: Vec<usize> = (0..ch.users()).collect();
        // total_cmp: generated distances are finite, but the ordering
        // must not be able to panic regardless (NaN would sort last).
        idx.sort_by(|&a, &b| ch.distances_m()[a].total_cmp(&ch.distances_m()[b]));
        let near = mean(idx[0]);
        let far = mean(*idx.last().unwrap());
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn distances_within_cell() {
        let cfg = ChannelConfig::default();
        let ch = Channel::generate(&cfg, 50, 2, 9).unwrap();
        for &d in ch.distances_m() {
            assert!(d >= cfg.min_distance_m && d <= cfg.cell_radius_m);
        }
    }

    #[test]
    fn validation() {
        let cfg = ChannelConfig::default();
        assert!(Channel::generate(&cfg, 0, 4, 0).is_err());
        assert!(Channel::generate(&cfg, 4, 0, 0).is_err());
        let bad = ChannelConfig {
            cell_radius_m: 5.0,
            ..Default::default()
        };
        assert!(Channel::generate(&bad, 2, 2, 0).is_err());
    }
}
