//! Robust convex relaxation of the RRA assignment with a batched
//! pre-factorization path.
//!
//! The paper's robustness recipe: instead of assigning each resource block
//! greedily on the nominal channel, hedge against channel uncertainty by
//! (1) measuring the spread of the per-user gain profiles through the
//! spectrum of their Gram matrix — a wide spectral range means user
//! profiles that disagree strongly across the band, i.e. an assignment
//! sensitive to estimation error — and (2) solving a box-constrained QP
//! whose linear term is the nominal gain *discounted by that uncertainty
//! margin* and whose quadratic term couples users sharing a block through
//! the same Gram matrix. The relaxed solution is rounded per-block and then
//! repaired by the same minimum-rate repair pass the greedy solver uses.
//!
//! The expensive pieces — one `users x users` eigendecomposition and one
//! `n x n` KKT Cholesky per request — are exactly the shape
//! [`rcr_linalg::BatchFactor`] batches: [`plan_batch`] pre-factors a whole
//! serve batch through the worker pool, and [`solve_robust`] consumes one
//! pre-built [`RobustPlan`] without refactorizing.

use rcr_convex::qp::{QpProblem, QpSettings, QpSolution};
use rcr_linalg::{BatchFactor, Cholesky, Matrix};

use crate::rra::{repair_min_rates, RraProblem, RraSolution};
use crate::QosError;

/// Weight of the Gram coupling term in the QP objective. Keeps
/// `alpha·C + I` well-conditioned (C has unit-bounded entries) while still
/// penalizing x-mass on spectrally-correlated users.
const ROBUST_ALPHA: f64 = 0.5;

/// Scale of the uncertainty discount derived from the Gram spectral range.
const ROBUST_BETA: f64 = 0.25;

/// ADMM settings for the relaxation QP. Fixed (not caller-supplied) so a
/// plan's KKT factor always matches the settings the solve will use.
fn robust_qp_settings() -> QpSettings {
    QpSettings {
        max_iter: 4000,
        eps_abs: 1e-6,
        eps_rel: 1e-6,
        ..QpSettings::default()
    }
}

/// A pre-factored robust relaxation for one request: the assembled QP and
/// the Cholesky factor of its condensed KKT matrix.
#[derive(Debug, Clone)]
pub struct RobustPlan {
    qp: QpProblem,
    factor: Cholesky,
    users: usize,
    rbs: usize,
}

/// Normalized gain weights `w[u][rb] ∈ [0, 1]` (nominal gains scaled by
/// the problem-wide maximum; an all-zero or non-finite channel yields all
/// zeros, which downstream degrades to margin 0 and a uniform objective).
fn weights(problem: &RraProblem) -> Vec<Vec<f64>> {
    let users = problem.users();
    let rbs = problem.resource_blocks();
    let mut gmax = 0.0f64;
    for u in 0..users {
        for r in 0..rbs {
            let g = problem.normalized_gain(u, r);
            if g.is_finite() && g > gmax {
                gmax = g;
            }
        }
    }
    let scale = if gmax > 0.0 { 1.0 / gmax } else { 0.0 };
    (0..users)
        .map(|u| {
            (0..rbs)
                .map(|r| {
                    let g = problem.normalized_gain(u, r) * scale;
                    if g.is_finite() {
                        g.clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Gram matrix of the weight profiles: `C[i][j] = ⟨w_i, w_j⟩ / rbs`.
/// Symmetric PSD with entries in `[0, 1]`.
fn gram(problem: &RraProblem) -> Matrix {
    let users = problem.users();
    let rbs = problem.resource_blocks();
    let w = weights(problem);
    Matrix::from_fn(users, users, |i, j| {
        let mut s = 0.0;
        for r in 0..rbs {
            s += w[i][r] * w[j][r];
        }
        s / rbs.max(1) as f64
    })
}

/// Assembles the relaxation QP for one request given its uncertainty
/// margin. Variables `x[u·rbs + r] ∈ [0, 1]` relax the block-ownership
/// indicators; per block the coupling is `alpha·C + I` (block-diagonal in
/// `r`, so `P` is PSD), the linear term rewards margin-discounted gain,
/// and one constraint row per block caps the block's total mass at 1.
fn assemble_qp(problem: &RraProblem, margin: f64, gram_c: &Matrix) -> Result<QpProblem, QosError> {
    let users = problem.users();
    let rbs = problem.resource_blocks();
    let n = users * rbs;
    let w = weights(problem);
    let p = Matrix::from_fn(n, n, |row, col| {
        let (u, r) = (row / rbs, row % rbs);
        let (v, r2) = (col / rbs, col % rbs);
        if r != r2 {
            return 0.0;
        }
        ROBUST_ALPHA * gram_c[(u, v)] + if u == v { 1.0 } else { 0.0 }
    });
    let q: Vec<f64> = (0..n).map(|i| -(w[i / rbs][i % rbs] - margin)).collect();
    // Rows 0..n: box 0 <= x <= 1. Rows n..n+rbs: per-block mass <= 1.
    let m = n + rbs;
    let a = Matrix::from_fn(m, n, |row, col| {
        if row < n {
            return if row == col { 1.0 } else { 0.0 };
        }
        if col % rbs == row - n {
            1.0
        } else {
            0.0
        }
    });
    let mut l = vec![0.0; m];
    let mut u_bound = vec![1.0; m];
    for i in n..m {
        l[i] = 0.0;
        u_bound[i] = 1.0;
    }
    QpProblem::new(p, q, a, l, u_bound)
        .map_err(|e| QosError::Solver(format!("robust QP assembly: {e}")))
}

/// Uncertainty margin from the Gram spectrum: `beta·sqrt(range/users)`
/// where `range` is the spectral spread `λ_max − λ_min`.
fn margin_from_spectrum(vals: &[f64], users: usize) -> f64 {
    match (vals.first(), vals.last()) {
        (Some(lo), Some(hi)) => ROBUST_BETA * (((hi - lo).max(0.0)) / users.max(1) as f64).sqrt(),
        _ => 0.0,
    }
}

/// Pre-factors the robust relaxations of a whole batch of independent
/// requests: Gram assembly in parallel, one batched eigendecomposition for
/// the margins, QP/KKT assembly in parallel, one batched Cholesky for the
/// factors. Per-item results are bit-identical for every worker count —
/// parallelism is only across requests.
pub fn plan_batch(problems: &[&RraProblem], workers: usize) -> Vec<Result<RobustPlan, QosError>> {
    let batch = BatchFactor::new(workers);
    let settings = robust_qp_settings();

    let grams: Vec<Matrix> = rcr_runtime::parallel_map(problems, workers, |_, p| gram(p));
    let eigs = batch.eigh_batch(&grams);
    let margins: Vec<Result<f64, QosError>> = eigs
        .iter()
        .zip(problems)
        .map(|(e, p)| match e {
            Ok(e) => Ok(margin_from_spectrum(e.eigenvalues(), p.users())),
            Err(err) => Err(QosError::Solver(format!("gram eigendecomposition: {err}"))),
        })
        .collect();

    let qps: Vec<Result<(QpProblem, Matrix), QosError>> =
        rcr_runtime::parallel_map(problems, workers, |i, p| {
            let margin = margins[i].clone()?;
            let qp = assemble_qp(p, margin, &grams[i])?;
            let kkt = qp
                .kkt_matrix(settings.rho, settings.sigma)
                .map_err(|e| QosError::Solver(format!("robust KKT assembly: {e}")))?;
            Ok((qp, kkt))
        });

    // Batched Cholesky over the successfully assembled KKT matrices;
    // failed items get a 1x1 placeholder whose factor is discarded.
    let kkts: Vec<Matrix> = qps
        .iter()
        .map(|r| match r {
            Ok((_, kkt)) => kkt.clone(),
            Err(_) => Matrix::identity(1),
        })
        .collect();
    let factors = batch.cholesky_batch(&kkts);

    qps.into_iter()
        .zip(factors)
        .zip(problems)
        .map(|((qp, factor), p)| {
            let (qp, _) = qp?;
            let factor =
                factor.map_err(|e| QosError::Solver(format!("robust KKT factorization: {e}")))?;
            Ok(RobustPlan {
                qp,
                factor,
                users: p.users(),
                rbs: p.resource_blocks(),
            })
        })
        .collect()
}

/// Builds a [`RobustPlan`] for a single request (the serve path uses
/// [`plan_batch`]; this is the fallback when no pre-factor phase ran).
///
/// # Errors
/// Propagates assembly/factorization failures as [`QosError::Solver`].
pub fn plan_one(problem: &RraProblem) -> Result<RobustPlan, QosError> {
    plan_batch(&[problem], 1)
        .pop()
        .unwrap_or_else(|| Err(QosError::Solver("empty plan batch".into())))
}

/// Solves the robust relaxation using a pre-built plan, rounds the relaxed
/// assignment per block, and repairs minimum rates.
///
/// # Errors
/// * [`QosError::InvalidParameter`] when the plan was built for different
///   problem dimensions.
/// * [`QosError::Solver`] when the QP solve fails.
/// * Evaluation errors from the rounded assignment.
pub fn solve_robust(problem: &RraProblem, plan: &RobustPlan) -> Result<RraSolution, QosError> {
    let users = problem.users();
    let rbs = problem.resource_blocks();
    if plan.users != users || plan.rbs != rbs {
        return Err(QosError::InvalidParameter(format!(
            "plan built for {}x{} (users x RBs), problem is {}x{}",
            plan.users, plan.rbs, users, rbs
        )));
    }
    let sol: QpSolution = plan
        .qp
        .solve_prefactored(&robust_qp_settings(), &plan.factor)
        .map_err(|e| QosError::Solver(format!("robust QP solve: {e}")))?;
    // Round: each block goes to the user holding the most relaxed mass on
    // it. total_cmp so NaN (corrupt input) claims deterministically and
    // surfaces in evaluate() instead of panicking here.
    let mut owners = Vec::with_capacity(rbs);
    for r in 0..rbs {
        let owner = (0..users)
            .max_by(|&a, &b| sol.x[a * rbs + r].total_cmp(&sol.x[b * rbs + r]))
            .ok_or_else(|| QosError::InvalidParameter("problem has no users".into()))?;
        owners.push(owner);
    }
    let best = problem.evaluate(&owners)?;
    repair_min_rates(problem, &mut owners, best)
}

/// One-shot robust solve: builds the plan inline and solves. Equivalent to
/// `solve_robust(problem, &plan_one(problem)?)`.
///
/// # Errors
/// As for [`plan_one`] and [`solve_robust`].
pub fn solve_robust_auto(problem: &RraProblem) -> Result<RraSolution, QosError> {
    let plan = plan_one(problem)?;
    solve_robust(problem, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelConfig};
    use crate::rra::solve_greedy;

    fn problem(users: usize, rbs: usize, seed: u64, min_rate: f64) -> RraProblem {
        let ch = Channel::generate(&ChannelConfig::default(), users, rbs, seed).unwrap();
        RraProblem::new(ch, 1e-12, 1.0, 180e3, vec![min_rate; users]).unwrap()
    }

    #[test]
    fn robust_solve_produces_valid_assignment() {
        let p = problem(4, 12, 11, 1e5);
        let sol = solve_robust_auto(&p).unwrap();
        assert_eq!(sol.owners.len(), 12);
        assert!(sol.owners.iter().all(|&u| u < 4));
        assert!(sol.total_rate_bps > 0.0);
    }

    #[test]
    fn robust_is_deterministic_across_worker_counts() {
        let problems: Vec<RraProblem> = (0..5).map(|s| problem(3, 8, 100 + s, 5e4)).collect();
        let refs: Vec<&RraProblem> = problems.iter().collect();
        let plans1 = plan_batch(&refs, 1);
        let plans4 = plan_batch(&refs, 4);
        for ((p, a), b) in problems.iter().zip(&plans1).zip(&plans4) {
            let sa = solve_robust(p, a.as_ref().unwrap()).unwrap();
            let sb = solve_robust(p, b.as_ref().unwrap()).unwrap();
            assert_eq!(sa.owners, sb.owners);
            assert_eq!(sa.total_rate_bps.to_bits(), sb.total_rate_bps.to_bits());
        }
    }

    #[test]
    fn plan_dimension_mismatch_rejected() {
        let p = problem(3, 8, 7, 1e4);
        let other = problem(4, 8, 7, 1e4);
        let plan = plan_one(&p).unwrap();
        assert!(matches!(
            solve_robust(&other, &plan),
            Err(QosError::InvalidParameter(_))
        ));
    }

    #[test]
    fn robust_stays_close_to_greedy_on_benign_channels() {
        // The margin discount must not wreck nominal performance: on a
        // well-conditioned channel the robust assignment's total rate stays
        // within a constant factor of greedy's.
        let p = problem(4, 16, 42, 1e4);
        let greedy = solve_greedy(&p).unwrap();
        let robust = solve_robust_auto(&p).unwrap();
        assert!(
            robust.total_rate_bps > 0.25 * greedy.total_rate_bps,
            "robust {} vs greedy {}",
            robust.total_rate_bps,
            greedy.total_rate_bps
        );
    }
}
