use std::fmt;

/// Errors produced by the QoS problem builders and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosError {
    /// Scenario or problem parameters were malformed.
    InvalidParameter(String),
    /// The continuous power subproblem failed to converge.
    PowerAllocationFailure(String),
    /// An underlying solver failed.
    Solver(String),
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            QosError::PowerAllocationFailure(msg) => {
                write!(f, "power allocation failure: {msg}")
            }
            QosError::Solver(msg) => write!(f, "solver failure: {msg}"),
        }
    }
}

impl std::error::Error for QosError {}

impl From<rcr_minlp::MinlpError> for QosError {
    fn from(e: rcr_minlp::MinlpError) -> Self {
        QosError::Solver(e.to_string())
    }
}

impl From<rcr_pso::PsoError> for QosError {
    fn from(e: rcr_pso::PsoError) -> Self {
        QosError::Solver(e.to_string())
    }
}
