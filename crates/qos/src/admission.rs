//! Admission control — the paper's third QoS example: "Radio Resource
//! Management (RRM) for connections with varied QoS requirements" (§I).
//!
//! When a cell cannot satisfy every connection's minimum rate, the RRM
//! must decide *which* connections to admit. Admission here maximizes a
//! class-weighted count of admitted users subject to the admitted set
//! being RRA-feasible (there exists an assignment + power allocation
//! meeting every admitted minimum rate). Feasibility of a candidate set
//! is decided with the greedy-with-repair RRA solver (cheap, sound for
//! admission in the "no" direction only — so the search is
//! conservative: it never admits an infeasible set, but may reject a
//! marginally feasible one, the standard engineering trade).

use crate::rra::{solve_greedy, RraProblem, RraSolution};
use crate::workload::QosClass;
use crate::QosError;

/// Admission priority weight of a service class (URLLC highest — its
/// guarantees are the reason it exists).
pub fn class_weight(class: QosClass) -> f64 {
    match class {
        QosClass::Urllc => 3.0,
        QosClass::Embb => 2.0,
        QosClass::Mmtc => 1.0,
    }
}

/// Result of admission control.
#[derive(Debug, Clone)]
pub struct AdmissionResult {
    /// Which users were admitted.
    pub admitted: Vec<bool>,
    /// Total class-weight of the admitted set.
    pub weight: f64,
    /// The allocation serving the admitted set.
    pub solution: RraSolution,
    /// Candidate sets whose feasibility was checked.
    pub feasibility_checks: usize,
}

/// Runs greedy admission control: start from the full set; while the set
/// is infeasible, evict the lowest-weight user with the largest rate
/// deficit; finally try to re-admit evicted users one at a time
/// (lowest-demand first).
///
/// # Errors
/// Propagates solver errors; returns [`QosError::InvalidParameter`] when
/// `classes.len()` differs from the problem's user count.
pub fn admit(problem: &RraProblem, classes: &[QosClass]) -> Result<AdmissionResult, QosError> {
    let users = problem.users();
    if classes.len() != users {
        return Err(QosError::InvalidParameter(format!(
            "{} classes for {users} users",
            classes.len()
        )));
    }
    let mut admitted = vec![true; users];
    let mut checks = 0usize;

    // Masked problem: evicted users keep their RBs eligible but drop
    // their rate floor to zero.
    let masked = |admitted: &[bool]| -> Result<(RraProblem, RraSolution), QosError> {
        let rates: Vec<f64> = problem
            .min_rates_bps
            .iter()
            .zip(admitted)
            .map(|(&r, &a)| if a { r } else { 0.0 })
            .collect();
        let sub = RraProblem::new(
            problem.channel().clone(),
            problem.noise_power_w,
            problem.power_budget_w,
            problem.rb_bandwidth_hz,
            rates,
        )?;
        let sol = solve_greedy(&sub)?;
        Ok((sub, sol))
    };

    let (_, mut sol) = masked(&admitted)?;
    checks += 1;
    while !sol.qos_satisfied {
        // Evict: among unsatisfied users, the one with the lowest
        // weight-per-deficit (cheap guarantees go first).
        let candidate = (0..users)
            .filter(|&u| admitted[u])
            .filter(|&u| sol.power.user_rates_bps[u] < problem.min_rates_bps[u] - 1e-9)
            .min_by(|&a, &b| {
                let score = |u: usize| {
                    class_weight(classes[u])
                        / (problem.min_rates_bps[u] - sol.power.user_rates_bps[u]).max(1.0)
                };
                score(a).total_cmp(&score(b))
            });
        let Some(evict) = candidate else {
            break; // infeasible for other reasons; stop evicting
        };
        admitted[evict] = false;
        let (_, s) = masked(&admitted)?;
        checks += 1;
        sol = s;
        if admitted.iter().all(|a| !a) {
            // Empty admitted set: all rate floors are zero, so the fresh
            // solve above is trivially feasible — stop evicting.
            break;
        }
    }

    // Re-admission pass: lowest demand first.
    let mut evicted: Vec<usize> = (0..users).filter(|&u| !admitted[u]).collect();
    evicted.sort_by(|&a, &b| problem.min_rates_bps[a].total_cmp(&problem.min_rates_bps[b]));
    for u in evicted {
        admitted[u] = true;
        let (_, s) = masked(&admitted)?;
        checks += 1;
        if s.qos_satisfied {
            sol = s;
        } else {
            admitted[u] = false;
        }
    }

    let weight = admitted
        .iter()
        .zip(classes)
        .filter(|(&a, _)| a)
        .map(|(_, &c)| class_weight(c))
        .sum();
    Ok(AdmissionResult {
        admitted,
        weight,
        solution: sol,
        feasibility_checks: checks,
    })
}

/// One admission request: a cell's RRA problem plus the service class of
/// each connection.
pub type AdmissionRequest = (RraProblem, Vec<QosClass>);

/// Runs [`admit`] over many independent cells/epochs, fanning the
/// requests across `workers` threads (`0` = auto: the `RCR_WORKERS`
/// environment variable, else serial).
///
/// Results are returned in input order and are identical to calling
/// [`admit`] per request serially, for every worker count; per-request
/// errors are reported in place rather than aborting the batch.
pub fn admit_batch(
    requests: &[AdmissionRequest],
    workers: usize,
) -> Vec<Result<AdmissionResult, QosError>> {
    let workers = rcr_runtime::resolve_workers(workers);
    rcr_runtime::parallel_map(requests, workers, |_, (problem, classes)| {
        admit(problem, classes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelConfig};
    use crate::workload::{Scenario, ScenarioConfig};

    fn problem_with_rates(rates: Vec<f64>, seed: u64) -> RraProblem {
        let users = rates.len();
        let ch = Channel::generate(&ChannelConfig::default(), users, 2 * users, seed).unwrap();
        RraProblem::new(ch, 1e-12, 1.0, 180e3, rates).unwrap()
    }

    #[test]
    fn feasible_scenario_admits_everyone() {
        let p = problem_with_rates(vec![1e5; 3], 1);
        let classes = vec![QosClass::Embb, QosClass::Urllc, QosClass::Mmtc];
        let r = admit(&p, &classes).unwrap();
        assert!(r.admitted.iter().all(|&a| a), "{:?}", r.admitted);
        assert!(r.solution.qos_satisfied);
        assert_eq!(r.weight, 6.0);
    }

    #[test]
    fn overloaded_scenario_evicts_someone_and_stays_feasible() {
        // Demands far beyond the cell capacity: someone must go.
        let p = problem_with_rates(vec![4e6, 4e6, 4e6, 4e6], 2);
        let classes = vec![
            QosClass::Mmtc,
            QosClass::Urllc,
            QosClass::Embb,
            QosClass::Mmtc,
        ];
        let r = admit(&p, &classes).unwrap();
        let kept = r.admitted.iter().filter(|&&a| a).count();
        assert!(kept < 4, "admitted {:?}", r.admitted);
        assert!(r.solution.qos_satisfied, "served set must be feasible");
        // Every admitted user's floor is met by the reported allocation.
        for u in 0..4 {
            if r.admitted[u] {
                assert!(
                    r.solution.power.user_rates_bps[u] >= p.min_rates_bps[u] * 0.999,
                    "user {u}"
                );
            }
        }
    }

    #[test]
    fn urllc_survives_over_mmtc_at_equal_demand() {
        // Two users, identical demands that cannot both be met: the
        // higher-weight class stays.
        let p = problem_with_rates(vec![6e6, 6e6], 3);
        let classes = vec![QosClass::Mmtc, QosClass::Urllc];
        let r = admit(&p, &classes).unwrap();
        if r.admitted.iter().filter(|&&a| a).count() == 1 {
            assert!(r.admitted[1], "URLLC should outrank mMTC: {:?}", r.admitted);
        }
    }

    #[test]
    fn generated_scenarios_admit_consistently() {
        let s = Scenario::generate(
            &ScenarioConfig {
                users: 5,
                resource_blocks: 10,
                ..Default::default()
            },
            11,
        )
        .unwrap();
        let r = admit(&s.rra, &s.classes).unwrap();
        assert!(r.feasibility_checks >= 1);
        assert!(r.solution.qos_satisfied);
    }

    #[test]
    fn validation() {
        let p = problem_with_rates(vec![1e5; 2], 0);
        assert!(admit(&p, &[QosClass::Embb]).is_err());
    }
}
