//! The continuous inner problem of the RRA MINLP: power allocation over
//! assigned resource blocks.
//!
//! For a fixed RB→user assignment the remaining problem is concave:
//!
//! ```text
//! maximize   Σ_k B·log2(1 + a_k p_k)
//! subject to Σ_k p_k ≤ P_total,  p ≥ 0
//!            Σ_{k ∈ K_u} B·log2(1 + a_k p_k) ≥ r_u   ∀u
//! ```
//!
//! with `a_k = g_{u(k),k} / N₀B` the normalized gain of RB `k`'s owner.
//! Without rate constraints the solution is classical water-filling; the
//! constrained version is solved by dual subgradient ascent on the rate
//! multipliers μ with an inner bisection on the water level — each inner
//! problem is *weighted* water-filling `p_k = (w_k/λ − 1/a_k)₊` with
//! `w_k = 1 + μ_{u(k)}`.

use crate::QosError;

/// Power-allocation problem description for one assignment.
#[derive(Debug, Clone)]
pub struct PowerProblem {
    /// Normalized gain `a_k` per RB (gain / noise power).
    pub gains: Vec<f64>,
    /// Owner user of each RB.
    pub owners: Vec<usize>,
    /// Total power budget (W).
    pub power_budget: f64,
    /// Bandwidth per RB (Hz).
    pub rb_bandwidth_hz: f64,
    /// Minimum rate per user (bit/s); users without assigned RBs must
    /// have 0 here to be satisfiable.
    pub min_rates_bps: Vec<f64>,
}

/// Result of a power allocation.
#[derive(Debug, Clone)]
pub struct PowerSolution {
    /// Power per RB (W).
    pub powers: Vec<f64>,
    /// Rate per RB (bit/s).
    pub rb_rates_bps: Vec<f64>,
    /// Rate per user (bit/s).
    pub user_rates_bps: Vec<f64>,
    /// Total rate (bit/s).
    pub total_rate_bps: f64,
    /// True when every minimum-rate constraint is met (within tolerance).
    pub feasible: bool,
}

impl PowerSolution {
    /// An empty placeholder allocation (no RBs, no users, zero rate,
    /// infeasible) — for decoders and summaries that carry a solution's
    /// headline numbers without the per-RB breakdown.
    pub fn empty() -> PowerSolution {
        PowerSolution {
            powers: Vec::new(),
            rb_rates_bps: Vec::new(),
            user_rates_bps: Vec::new(),
            total_rate_bps: 0.0,
            feasible: false,
        }
    }
}

// rcr-lint: unit(bandwidth = Hz, a = GainLinear, p = PowerLinear, return = BitsPerSec, reason = "Shannon rate per RB: Hz times log2(1 + normalized-gain times watts)")
fn rate_bps(bandwidth: f64, a: f64, p: f64) -> f64 {
    bandwidth * (1.0 + a * p).log2()
}

/// Weighted water-filling: maximize `Σ w_k log(1 + a_k p_k)` subject to
/// `Σ p ≤ budget`, `p ≥ 0`. Exact via bisection on the water level.
// rcr-lint: unit(gains = GainLinear, budget = PowerLinear, reason = "water-filling works on linear normalized gains and a watt budget, never dB")
fn weighted_waterfill(gains: &[f64], weights: &[f64], budget: f64) -> Vec<f64> {
    let power_at = |lambda: f64| -> Vec<f64> {
        gains
            .iter()
            .zip(weights)
            .map(|(&a, &w)| ((w / lambda) - 1.0 / a).max(0.0))
            .collect()
    };
    // λ ∈ (0, ∞): total power decreases in λ. Find λ with Σp = budget.
    let mut lo = 1e-12f64;
    let mut hi = 1e12;
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection for scale-freeness
        let total: f64 = power_at(mid).iter().sum();
        if total > budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    power_at((lo * hi).sqrt())
}

/// Solves the constrained power allocation.
///
/// ```
/// use rcr_qos::power::{solve_power, PowerProblem};
///
/// # fn main() -> Result<(), rcr_qos::QosError> {
/// let sol = solve_power(&PowerProblem {
///     gains: vec![10.0, 2.0],
///     owners: vec![0, 1],
///     power_budget: 1.0,
///     rb_bandwidth_hz: 1.0,
///     min_rates_bps: vec![0.0, 0.0],
/// })?;
/// assert!(sol.feasible);
/// assert!(sol.powers.iter().sum::<f64>() <= 1.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// Returns the best allocation found; `feasible` reports whether the
/// minimum rates were met. When some user's minimum rate is unattainable
/// even with the whole budget on its best RB, the result comes back
/// infeasible rather than erroring.
///
/// # Errors
/// Returns [`QosError::InvalidParameter`] for malformed problem data.
pub fn solve_power(problem: &PowerProblem) -> Result<PowerSolution, QosError> {
    let k = problem.gains.len();
    if k == 0 || problem.owners.len() != k {
        return Err(QosError::InvalidParameter(format!(
            "{} gains vs {} owners",
            k,
            problem.owners.len()
        )));
    }
    if !(problem.power_budget > 0.0) || !(problem.rb_bandwidth_hz > 0.0) {
        return Err(QosError::InvalidParameter(
            "budget and bandwidth must be positive".into(),
        ));
    }
    if problem.gains.iter().any(|&a| !(a > 0.0) || !a.is_finite()) {
        return Err(QosError::InvalidParameter(
            "gains must be positive and finite".into(),
        ));
    }
    let users = problem.min_rates_bps.len();
    if problem.owners.iter().any(|&u| u >= users) {
        return Err(QosError::InvalidParameter(
            "owner index out of range".into(),
        ));
    }

    let user_rates = |powers: &[f64]| -> Vec<f64> {
        let mut rates = vec![0.0; users];
        for ((&p, &a), &u) in powers.iter().zip(&problem.gains).zip(&problem.owners) {
            rates[u] += rate_bps(problem.rb_bandwidth_hz, a, p);
        }
        rates
    };

    // Dual subgradient on μ ≥ 0 (one per user with a positive min rate).
    let mut mu = vec![0.0; users];
    let mut best: Option<PowerSolution> = None;
    let iterations = 300;
    for it in 0..iterations {
        let weights: Vec<f64> = problem.owners.iter().map(|&u| 1.0 + mu[u]).collect();
        let powers = weighted_waterfill(&problem.gains, &weights, problem.power_budget);
        let rates = user_rates(&powers);
        let violation: Vec<f64> = rates
            .iter()
            .zip(&problem.min_rates_bps)
            .map(|(r, m)| m - r)
            .collect();
        let feasible = violation
            .iter()
            .all(|&v| v <= 1e-6 * problem.rb_bandwidth_hz.max(1.0));

        let rb_rates: Vec<f64> = powers
            .iter()
            .zip(&problem.gains)
            .map(|(&p, &a)| rate_bps(problem.rb_bandwidth_hz, a, p))
            .collect();
        let total: f64 = rb_rates.iter().sum();
        let candidate = PowerSolution {
            powers,
            rb_rates_bps: rb_rates,
            user_rates_bps: rates,
            total_rate_bps: total,
            feasible,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                (candidate.feasible && !b.feasible)
                    || (candidate.feasible == b.feasible
                        && candidate.total_rate_bps > b.total_rate_bps)
            }
        };
        if better {
            best = Some(candidate);
        }
        if feasible && mu.iter().all(|&m| m == 0.0) {
            break; // unconstrained optimum already satisfies the rates
        }
        // Subgradient step on μ: grow where violated, shrink otherwise.
        let step = 2.0 / (1.0 + it as f64).sqrt();
        for (m, v) in mu.iter_mut().zip(&violation) {
            *m = (*m + step * v / problem.rb_bandwidth_hz.max(1.0)).max(0.0);
        }
    }
    best.ok_or_else(|| {
        QosError::PowerAllocationFailure("subgradient loop completed zero iterations".into())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_problem() -> PowerProblem {
        PowerProblem {
            gains: vec![10.0, 5.0, 1.0],
            owners: vec![0, 0, 1],
            power_budget: 3.0,
            rb_bandwidth_hz: 1.0,
            min_rates_bps: vec![0.0, 0.0],
        }
    }

    #[test]
    fn unconstrained_matches_classic_waterfilling() {
        let p = base_problem();
        let s = solve_power(&p).unwrap();
        assert!(s.feasible);
        assert!((s.powers.iter().sum::<f64>() - 3.0).abs() < 1e-6);
        // Water-filling: p_k = (1/λ − 1/a_k)₊ with common water level:
        // better channels get *more* power only through the 1/a term —
        // levels p_k + 1/a_k must be equal where p > 0.
        let levels: Vec<f64> = s
            .powers
            .iter()
            .zip(&p.gains)
            .map(|(&pw, &a)| pw + 1.0 / a)
            .collect();
        for w in levels.windows(2) {
            if s.powers[0] > 1e-9 && s.powers[1] > 1e-9 {
                assert!((w[0] - w[1]).abs() < 1e-5, "levels {levels:?}");
            }
        }
    }

    #[test]
    fn weak_channel_gets_no_power_under_tight_budget() {
        let p = PowerProblem {
            gains: vec![100.0, 0.001],
            owners: vec![0, 1],
            power_budget: 0.5,
            rb_bandwidth_hz: 1.0,
            min_rates_bps: vec![0.0, 0.0],
        };
        let s = solve_power(&p).unwrap();
        assert!(s.powers[1] < 1e-9, "weak RB power {}", s.powers[1]);
    }

    #[test]
    fn min_rate_constraint_diverts_power() {
        // User 1 owns only the weak RB; without a constraint it gets
        // almost nothing, with one it must reach its floor.
        let mut p = base_problem();
        let unconstrained = solve_power(&p).unwrap();
        p.min_rates_bps = vec![0.0, 1.0];
        let constrained = solve_power(&p).unwrap();
        assert!(
            constrained.feasible,
            "rates {:?}",
            constrained.user_rates_bps
        );
        assert!(constrained.user_rates_bps[1] >= 1.0 - 1e-4);
        assert!(constrained.user_rates_bps[1] > unconstrained.user_rates_bps[1]);
        // The diverted power costs total throughput.
        assert!(constrained.total_rate_bps <= unconstrained.total_rate_bps + 1e-9);
    }

    #[test]
    fn impossible_rate_reported_infeasible() {
        let mut p = base_problem();
        p.min_rates_bps = vec![0.0, 1000.0];
        let s = solve_power(&p).unwrap();
        assert!(!s.feasible);
    }

    #[test]
    fn rates_consistent_with_powers() {
        let p = base_problem();
        let s = solve_power(&p).unwrap();
        for ((&r, &pw), &a) in s.rb_rates_bps.iter().zip(&s.powers).zip(&p.gains) {
            assert!((r - (1.0 + a * pw).log2()).abs() < 1e-9);
        }
        let sum: f64 = s.user_rates_bps.iter().sum();
        assert!((sum - s.total_rate_bps).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        let mut p = base_problem();
        p.owners = vec![0, 0];
        assert!(solve_power(&p).is_err());
        let mut p = base_problem();
        p.power_budget = 0.0;
        assert!(solve_power(&p).is_err());
        let mut p = base_problem();
        p.gains[0] = -1.0;
        assert!(solve_power(&p).is_err());
        let mut p = base_problem();
        p.owners = vec![0, 0, 5];
        assert!(solve_power(&p).is_err());
    }
}
