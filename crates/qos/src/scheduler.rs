//! Multi-slot scheduling — the *time* half of the paper's
//! "frequency-time blocks (integer variables)" formulation (§I).
//!
//! [`crate::rra`] allocates one slot's frequency blocks; this module
//! iterates it over a horizon of slots with deadline-aware rate floors:
//! each task's per-slot minimum rate is its remaining demand spread over
//! the slots left before its deadline (a fluid earliest-deadline-first
//! policy). URLLC latency budgets become deadline slots, and a deadline
//! miss is precisely the QoS violation the paper's RRM must manage.

use crate::rra::{solve_greedy, RraProblem};
use crate::QosError;

/// One finite transfer with a latency budget.
#[derive(Debug, Clone)]
pub struct SlotTask {
    /// The served user (indexes the RRA problem's users).
    pub user: usize,
    /// Total bits to deliver.
    pub demand_bits: f64,
    /// Last slot index (0-based, inclusive) by which the transfer must
    /// complete.
    pub deadline_slot: usize,
}

/// Outcome of a horizon schedule.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Slot in which each task finished (`None` = unfinished at horizon).
    pub completed_slot: Vec<Option<usize>>,
    /// Whether each task met its deadline.
    pub met_deadline: Vec<bool>,
    /// Remaining bits per task at the horizon.
    pub remaining_bits: Vec<f64>,
    /// Cell throughput per slot (bit/s).
    pub per_slot_rate: Vec<f64>,
}

impl ScheduleResult {
    /// Fraction of tasks that met their deadlines.
    pub fn deadline_success_rate(&self) -> f64 {
        if self.met_deadline.is_empty() {
            return 1.0;
        }
        self.met_deadline.iter().filter(|&&m| m).count() as f64 / self.met_deadline.len() as f64
    }
}

/// Schedules `tasks` over `slots` slots of `slot_duration_s` seconds on a
/// block-fading channel (the RRA problem's gains hold for the horizon).
///
/// # Errors
/// * [`QosError::InvalidParameter`] for empty tasks, zero slots/duration,
///   or task users outside the problem.
/// * Propagates per-slot solver errors.
pub fn schedule(
    problem: &RraProblem,
    tasks: &[SlotTask],
    slots: usize,
    slot_duration_s: f64,
) -> Result<ScheduleResult, QosError> {
    if tasks.is_empty() || slots == 0 || !(slot_duration_s > 0.0) {
        return Err(QosError::InvalidParameter(
            "need tasks, slots >= 1 and a positive slot duration".into(),
        ));
    }
    for (i, t) in tasks.iter().enumerate() {
        if t.user >= problem.users() {
            return Err(QosError::InvalidParameter(format!(
                "task {i} serves user {} of {}",
                t.user,
                problem.users()
            )));
        }
        if !(t.demand_bits > 0.0) || !t.demand_bits.is_finite() {
            return Err(QosError::InvalidParameter(format!(
                "task {i} demand invalid"
            )));
        }
    }

    let mut remaining: Vec<f64> = tasks.iter().map(|t| t.demand_bits).collect();
    let mut completed: Vec<Option<usize>> = vec![None; tasks.len()];
    let mut per_slot_rate = Vec::with_capacity(slots);

    for slot in 0..slots {
        // Fluid-EDF rate floors: remaining demand over remaining slots
        // until the deadline (at least one slot — overdue tasks demand
        // everything now).
        let mut min_rates = vec![0.0; problem.users()];
        for (t, &rem) in tasks.iter().zip(&remaining) {
            if rem <= 0.0 {
                continue;
            }
            // Slots left before the deadline, counting this one; overdue
            // tasks get a single-slot horizon (demand everything now).
            let left = t.deadline_slot.saturating_sub(slot).saturating_add(1);
            min_rates[t.user] += rem / (left as f64 * slot_duration_s);
        }
        let sub = RraProblem::new(
            problem.channel().clone(),
            problem.noise_power_w,
            problem.power_budget_w,
            problem.rb_bandwidth_hz,
            min_rates,
        )?;
        let sol = solve_greedy(&sub)?;
        per_slot_rate.push(sol.total_rate_bps);

        // Drain demands in deadline order within each user.
        let mut served_bits: Vec<f64> = sol
            .power
            .user_rates_bps
            .iter()
            .map(|r| r * slot_duration_s)
            .collect();
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by_key(|&i| tasks[i].deadline_slot);
        for i in order {
            let u = tasks[i].user;
            if remaining[i] <= 0.0 || served_bits[u] <= 0.0 {
                continue;
            }
            let take = remaining[i].min(served_bits[u]);
            remaining[i] -= take;
            served_bits[u] -= take;
            if remaining[i] <= 1e-9 && completed[i].is_none() {
                completed[i] = Some(slot);
            }
        }
    }

    let met_deadline: Vec<bool> = tasks
        .iter()
        .zip(&completed)
        .map(|(t, c)| matches!(c, Some(s) if *s <= t.deadline_slot))
        .collect();
    Ok(ScheduleResult {
        completed_slot: completed,
        met_deadline,
        remaining_bits: remaining,
        per_slot_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelConfig};

    fn problem(users: usize, rbs: usize, seed: u64) -> RraProblem {
        let ch = Channel::generate(&ChannelConfig::default(), users, rbs, seed).unwrap();
        RraProblem::new(ch, 1e-12, 1.0, 180e3, vec![0.0; users]).unwrap()
    }

    /// Per-slot bit capacity of the cell under greedy scheduling.
    fn slot_capacity_bits(p: &RraProblem, slot_s: f64) -> f64 {
        solve_greedy(p).unwrap().total_rate_bps * slot_s
    }

    #[test]
    fn single_small_task_completes_by_deadline() {
        let p = problem(2, 6, 1);
        let slot_s = 1e-3;
        // A task worth ~half of one slot's capacity.
        let demand = 0.5 * slot_capacity_bits(&p, slot_s);
        let tasks = [SlotTask {
            user: 0,
            demand_bits: demand,
            deadline_slot: 5,
        }];
        let r = schedule(&p, &tasks, 6, slot_s).unwrap();
        assert!(r.met_deadline[0], "completed {:?}", r.completed_slot);
        assert_eq!(r.deadline_success_rate(), 1.0);
        assert!(r.remaining_bits[0] <= 1e-9);
    }

    #[test]
    fn oversized_demand_misses_deadline() {
        let p = problem(2, 4, 2);
        let slot_s = 1e-3;
        // 100 slots' worth of bits, two slots of time.
        let demand = 100.0 * slot_capacity_bits(&p, slot_s);
        let tasks = [SlotTask {
            user: 0,
            demand_bits: demand,
            deadline_slot: 1,
        }];
        let r = schedule(&p, &tasks, 2, slot_s).unwrap();
        assert!(!r.met_deadline[0]);
        assert!(r.remaining_bits[0] > 0.0);
    }

    #[test]
    fn urgent_task_finishes_before_lax_task() {
        let p = problem(2, 6, 3);
        let slot_s = 1e-3;
        // Size each demand against that user's own solo capacity (all RBs
        // to the user), since the users' channels can differ wildly.
        let solo = |u: usize| -> f64 {
            p.evaluate(&vec![u; p.resource_blocks()])
                .unwrap()
                .total_rate_bps
                * slot_s
        };
        let tasks = [
            SlotTask {
                user: 0,
                demand_bits: 3.0 * solo(0),
                deadline_slot: 9,
            }, // lax
            SlotTask {
                user: 1,
                demand_bits: 0.1 * solo(1),
                deadline_slot: 1,
            }, // urgent
        ];
        let r = schedule(&p, &tasks, 10, slot_s).unwrap();
        assert!(
            r.met_deadline[1],
            "urgent task missed: {:?}",
            r.completed_slot
        );
        let (lax, urgent) = (r.completed_slot[0], r.completed_slot[1]);
        if let (Some(l), Some(u)) = (lax, urgent) {
            assert!(u <= l, "urgent {u} finished after lax {l}");
        }
    }

    #[test]
    fn throughput_reported_every_slot() {
        let p = problem(3, 6, 4);
        let tasks = [
            SlotTask {
                user: 0,
                demand_bits: 1e6,
                deadline_slot: 3,
            },
            SlotTask {
                user: 2,
                demand_bits: 1e6,
                deadline_slot: 3,
            },
        ];
        let r = schedule(&p, &tasks, 4, 1e-3).unwrap();
        assert_eq!(r.per_slot_rate.len(), 4);
        assert!(r.per_slot_rate.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn deadline_at_usize_max_does_not_overflow_the_horizon() {
        // `deadline_slot = usize::MAX` used to overflow in the fluid-EDF
        // horizon (`saturating_sub(slot) + 1` at slot 0); the saturating
        // form clamps and the task just gets the widest possible horizon.
        let p = problem(2, 6, 6);
        let slot_s = 1e-3;
        let demand = 0.5 * slot_capacity_bits(&p, slot_s);
        let tasks = [SlotTask {
            user: 0,
            demand_bits: demand,
            deadline_slot: usize::MAX,
        }];
        let r = schedule(&p, &tasks, 2, slot_s).unwrap();
        assert!(r.met_deadline[0], "completed {:?}", r.completed_slot);
    }

    #[test]
    fn validation() {
        let p = problem(2, 4, 5);
        assert!(schedule(&p, &[], 2, 1e-3).is_err());
        let t = [SlotTask {
            user: 9,
            demand_bits: 1.0,
            deadline_slot: 0,
        }];
        assert!(schedule(&p, &t, 2, 1e-3).is_err());
        let t = [SlotTask {
            user: 0,
            demand_bits: -1.0,
            deadline_slot: 0,
        }];
        assert!(schedule(&p, &t, 2, 1e-3).is_err());
        let t = [SlotTask {
            user: 0,
            demand_bits: 1.0,
            deadline_slot: 0,
        }];
        assert!(schedule(&p, &t, 0, 1e-3).is_err());
        assert!(schedule(&p, &t, 1, 0.0).is_err());
    }
}
