//! Scenario generation with the 5G service categories.
//!
//! §I: "three main service categories: Enhanced Mobile Broadband (eMBB),
//! Ultra-Reliable Low-Latency Communications (URLLC), and massive
//! Machine-Type Communications (mMTC). These service categories will
//! support a wide range of QoS needs…". A scenario draws users, assigns
//! them service classes with class-appropriate minimum rates, realizes a
//! channel, and packages everything as an [`RraProblem`].

use crate::channel::{Channel, ChannelConfig};
use crate::rra::RraProblem;
use crate::QosError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 5G service category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Enhanced Mobile Broadband — high minimum rate.
    Embb,
    /// Ultra-Reliable Low-Latency — moderate rate that *must* be met.
    Urllc,
    /// Massive Machine-Type — low rate, best effort.
    Mmtc,
}

impl QosClass {
    /// Every class, in *service-priority order* (URLLC first): the order
    /// a QoS-aware scheduler visits lanes, and the canonical order for
    /// per-class metric tables.
    pub const ALL: [QosClass; 3] = [QosClass::Urllc, QosClass::Embb, QosClass::Mmtc];

    /// The minimum-rate requirement of the class, as a multiple of one
    /// RB's bandwidth (bit/s per Hz of a single block).
    // rcr-lint: unit(return = PerRb, reason = "normalized per-RB requirement; multiply by rb_bandwidth_hz to get bit/s")
    pub fn min_rate_per_rb_bandwidth(&self) -> f64 {
        match self {
            QosClass::Embb => 2.0,
            QosClass::Urllc => 1.0,
            QosClass::Mmtc => 0.1,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            QosClass::Embb => "eMBB",
            QosClass::Urllc => "URLLC",
            QosClass::Mmtc => "mMTC",
        }
    }

    /// The class's position in [`QosClass::ALL`] — 0 for URLLC (highest
    /// priority) through 2 for mMTC. Stable across releases: wire
    /// protocols and lane arrays may index by it.
    pub fn priority_rank(&self) -> usize {
        match self {
            QosClass::Urllc => 0,
            QosClass::Embb => 1,
            QosClass::Mmtc => 2,
        }
    }

    /// Parses a service-class name, case-insensitively, accepting the
    /// display names from [`QosClass::name`] (`"URLLC"`, `"eMBB"`,
    /// `"mMTC"`) in any capitalization — the inverse mapping used by
    /// text protocols and CLI flags.
    pub fn from_name(name: &str) -> Option<QosClass> {
        let name = name.trim();
        QosClass::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }
}

/// Scenario generation parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of users.
    pub users: usize,
    /// Number of resource blocks.
    pub resource_blocks: usize,
    /// Class mix (eMBB, URLLC, mMTC) proportions; need not normalize.
    pub class_mix: (f64, f64, f64),
    /// Total transmit power (W).
    pub power_budget_w: f64,
    /// Bandwidth per RB (Hz).
    pub rb_bandwidth_hz: f64,
    /// Noise power per RB (W).
    pub noise_power_w: f64,
    /// Channel model.
    pub channel: ChannelConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            users: 4,
            resource_blocks: 8,
            class_mix: (0.3, 0.2, 0.5),
            power_budget_w: 1.0,
            rb_bandwidth_hz: 180e3,
            noise_power_w: 1e-12,
            channel: ChannelConfig::default(),
        }
    }
}

impl ScenarioConfig {
    /// A configuration whose every user belongs to `class` — the request
    /// conversion used by the solver service, where one request carries
    /// one service class and a cell size.
    pub fn single_class(class: QosClass, users: usize, resource_blocks: usize) -> ScenarioConfig {
        let class_mix = match class {
            QosClass::Embb => (1.0, 0.0, 0.0),
            QosClass::Urllc => (0.0, 1.0, 0.0),
            QosClass::Mmtc => (0.0, 0.0, 1.0),
        };
        ScenarioConfig {
            users,
            resource_blocks,
            class_mix,
            ..ScenarioConfig::default()
        }
    }
}

/// A generated scenario: the RRA instance plus class annotations.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The optimization problem.
    pub rra: RraProblem,
    /// Class of each user.
    pub classes: Vec<QosClass>,
}

impl Scenario {
    /// Generates a scenario deterministically from `seed`.
    ///
    /// # Errors
    /// Returns [`QosError::InvalidParameter`] for malformed configuration.
    pub fn generate(config: &ScenarioConfig, seed: u64) -> Result<Self, QosError> {
        let (a, b, c) = config.class_mix;
        if !(a >= 0.0 && b >= 0.0 && c >= 0.0) || a + b + c <= 0.0 {
            return Err(QosError::InvalidParameter(format!(
                "bad class mix {:?}",
                config.class_mix
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let total = a + b + c;
        let classes: Vec<QosClass> = (0..config.users)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..total);
                if u < a {
                    QosClass::Embb
                } else if u < a + b {
                    QosClass::Urllc
                } else {
                    QosClass::Mmtc
                }
            })
            .collect();
        let min_rates: Vec<f64> = classes
            .iter()
            .map(|cl| cl.min_rate_per_rb_bandwidth() * config.rb_bandwidth_hz)
            .collect();
        let channel = Channel::generate(
            &config.channel,
            config.users,
            config.resource_blocks,
            seed.wrapping_add(0x9E37_79B9),
        )?;
        let rra = RraProblem::new(
            channel,
            config.noise_power_w,
            config.power_budget_w,
            config.rb_bandwidth_hz,
            min_rates,
        )?;
        Ok(Scenario { rra, classes })
    }

    /// Per-class user counts `(eMBB, URLLC, mMTC)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for c in &self.classes {
            match c {
                QosClass::Embb => counts.0 += 1,
                QosClass::Urllc => counts.1 += 1,
                QosClass::Mmtc => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rra::solve_greedy;

    #[test]
    fn generation_deterministic() {
        let cfg = ScenarioConfig::default();
        let a = Scenario::generate(&cfg, 5).unwrap();
        let b = Scenario::generate(&cfg, 5).unwrap();
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.rra.min_rates_bps, b.rra.min_rates_bps);
    }

    #[test]
    fn class_mix_respected_in_aggregate() {
        let cfg = ScenarioConfig {
            users: 300,
            class_mix: (1.0, 0.0, 0.0),
            ..Default::default()
        };
        let s = Scenario::generate(&cfg, 1).unwrap();
        assert_eq!(s.class_counts(), (300, 0, 0));
        let cfg = ScenarioConfig {
            users: 300,
            class_mix: (1.0, 1.0, 1.0),
            ..Default::default()
        };
        let s = Scenario::generate(&cfg, 2).unwrap();
        let (e, u, m) = s.class_counts();
        assert!(e > 50 && u > 50 && m > 50, "({e},{u},{m})");
    }

    #[test]
    fn min_rates_follow_classes() {
        let cfg = ScenarioConfig {
            users: 20,
            ..Default::default()
        };
        let s = Scenario::generate(&cfg, 3).unwrap();
        for (cl, &r) in s.classes.iter().zip(&s.rra.min_rates_bps) {
            assert_eq!(r, cl.min_rate_per_rb_bandwidth() * cfg.rb_bandwidth_hz);
        }
    }

    #[test]
    fn generated_scenarios_are_solvable() {
        let cfg = ScenarioConfig::default();
        let s = Scenario::generate(&cfg, 8).unwrap();
        let sol = solve_greedy(&s.rra).unwrap();
        assert!(sol.total_rate_bps > 0.0);
    }

    #[test]
    fn validation() {
        let bad = ScenarioConfig {
            class_mix: (0.0, 0.0, 0.0),
            ..Default::default()
        };
        assert!(Scenario::generate(&bad, 0).is_err());
        let bad = ScenarioConfig {
            class_mix: (-1.0, 1.0, 1.0),
            ..Default::default()
        };
        assert!(Scenario::generate(&bad, 0).is_err());
    }

    #[test]
    fn class_names() {
        assert_eq!(QosClass::Embb.name(), "eMBB");
        assert_eq!(QosClass::Urllc.name(), "URLLC");
        assert_eq!(QosClass::Mmtc.name(), "mMTC");
    }

    #[test]
    fn name_round_trips_and_ranks_align() {
        for (rank, class) in QosClass::ALL.into_iter().enumerate() {
            assert_eq!(class.priority_rank(), rank);
            assert_eq!(QosClass::from_name(class.name()), Some(class));
            assert_eq!(
                QosClass::from_name(&class.name().to_uppercase()),
                Some(class)
            );
            assert_eq!(
                QosClass::from_name(&class.name().to_lowercase()),
                Some(class)
            );
        }
        assert_eq!(QosClass::from_name(" urllc "), Some(QosClass::Urllc));
        assert_eq!(QosClass::from_name("bestEffort"), None);
        assert_eq!(QosClass::from_name(""), None);
    }

    #[test]
    fn single_class_scenarios_are_uniform() {
        for class in QosClass::ALL {
            let cfg = ScenarioConfig::single_class(class, 6, 12);
            assert_eq!(cfg.users, 6);
            assert_eq!(cfg.resource_blocks, 12);
            let s = Scenario::generate(&cfg, 17).unwrap();
            assert!(s.classes.iter().all(|&c| c == class), "{class:?}");
        }
    }
}
