//! Property-based invariants of the QoS problem domain.

use proptest::prelude::*;
use rcr_qos::channel::{Channel, ChannelConfig};
use rcr_qos::multirat::{solve_greedy as multirat_greedy, MultiRatProblem};
use rcr_qos::rra::{relaxation_bound_bps, solve_greedy, RraProblem};

fn problem(users: usize, rbs: usize, seed: u64) -> RraProblem {
    let ch = Channel::generate(&ChannelConfig::default(), users, rbs, seed).unwrap();
    RraProblem::new(ch, 1e-12, 1.0, 180e3, vec![0.0; users]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn channel_gains_positive_and_deterministic(
        users in 1usize..6,
        rbs in 1usize..12,
        seed in 0u64..500,
    ) {
        let a = Channel::generate(&ChannelConfig::default(), users, rbs, seed).unwrap();
        let b = Channel::generate(&ChannelConfig::default(), users, rbs, seed).unwrap();
        prop_assert_eq!(a.gains(), b.gains());
        for u in 0..users {
            for k in 0..rbs {
                prop_assert!(a.gain(u, k) > 0.0 && a.gain(u, k).is_finite());
            }
        }
    }

    #[test]
    fn greedy_solution_within_relaxation_bound(
        users in 2usize..5,
        rbs in 2usize..8,
        seed in 0u64..200,
    ) {
        let p = problem(users, rbs, seed);
        let sol = solve_greedy(&p).unwrap();
        let bound = relaxation_bound_bps(&p);
        prop_assert!(sol.total_rate_bps <= bound * (1.0 + 1e-9));
        prop_assert!(sol.total_rate_bps > 0.0);
        prop_assert!(sol.qos_satisfied); // zero rate floors: always satisfied
        // Power budget respected.
        let total_power: f64 = sol.power.powers.iter().sum();
        prop_assert!(total_power <= 1.0 * (1.0 + 1e-6));
    }

    #[test]
    fn greedy_assignment_prefers_best_gain_without_floors(
        users in 2usize..5,
        rbs in 2usize..8,
        seed in 0u64..200,
    ) {
        let p = problem(users, rbs, seed);
        let sol = solve_greedy(&p).unwrap();
        // With zero rate floors the greedy assignment is exactly per-RB
        // argmax gain (no repair needed).
        for (k, &owner) in sol.owners.iter().enumerate() {
            for u in 0..users {
                prop_assert!(
                    p.normalized_gain(owner, k) >= p.normalized_gain(u, k) - 1e-12
                );
            }
        }
    }

    #[test]
    fn multirat_greedy_always_capacity_feasible(
        users in 1usize..7,
        rats in 2usize..4,
        seed in 0u64..200,
    ) {
        // Utilities from a deterministic hash; capacities sized to fit.
        let utility: Vec<Vec<f64>> = (0..users)
            .map(|u| {
                (0..rats)
                    .map(|r| (((u * 31 + r * 17 + seed as usize) % 97) as f64) / 10.0)
                    .collect()
            })
            .collect();
        let base = users / rats + 1;
        let capacity = vec![base; rats];
        let p = MultiRatProblem::new(utility, capacity.clone()).unwrap();
        let sol = multirat_greedy(&p).unwrap();
        for (r, &load) in sol.load.iter().enumerate() {
            prop_assert!(load <= capacity[r]);
        }
        prop_assert!(sol.utility >= 0.0);
        prop_assert_eq!(sol.assignment.len(), users);
    }
}
