//! Arrival-time generation on the virtual microsecond timeline.
//!
//! [`Arrivals`] is an infinite iterator of absolute arrival times (u64
//! virtual µs, strictly increasing — gaps clamp to ≥ 1 µs) driven purely
//! by a seeded [`StdRng`], so a `(process, seed)` pair pins the whole
//! timeline. Three processes, matching [`ArrivalProcess`]:
//!
//! * **Poisson** — i.i.d. exponential gaps.
//! * **MMPP(2)** — exponential sojourns alternating a slow and a fast
//!   phase; arrivals are Poisson at the current phase's rate. Phase
//!   switches use the memoryless property: the pending gap is simply
//!   resampled at the new rate from the switch instant.
//! * **Diurnal** — non-homogeneous Poisson with a sinusoidal rate, drawn
//!   by thinning against the peak rate.

use crate::manifest::ArrivalProcess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const US_PER_SEC: f64 = 1_000_000.0;

/// Draws an exponential variate with the given rate (events per µs).
// rcr-lint: unit(return = Seconds, reason = "a gap on the virtual microsecond timeline; rate_per_us is its reciprocal domain")
fn exp_gap_us(rng: &mut StdRng, rate_per_us: f64) -> f64 {
    // gen::<f64>() is in [0, 1), so 1-u is in (0, 1] and ln() is finite.
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate_per_us
}

enum State {
    Poisson {
        rate_per_us: f64,
    },
    Mmpp {
        slow_rate_per_us: f64,
        fast_rate_per_us: f64,
        mean_slow_us: f64,
        mean_fast_us: f64,
        /// True while in the fast (burst) phase.
        fast: bool,
        /// Virtual time at which the current phase ends.
        phase_end_us: f64,
    },
    Diurnal {
        base_rate_per_us: f64,
        peak_rate_per_us: f64,
        period_us: f64,
    },
}

/// Infinite, deterministic arrival-time stream. See the module docs.
pub struct Arrivals {
    rng: StdRng,
    state: State,
    /// Exact integer clock of the last emitted arrival.
    now_us: u64,
    /// Fractional µs carried between gaps so long-run rates stay
    /// unbiased despite integer emission.
    carry_us: f64,
}

impl Arrivals {
    /// A stream for `process`, fully determined by `seed`.
    pub fn new(process: ArrivalProcess, seed: u64) -> Arrivals {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = match process {
            ArrivalProcess::Poisson { rate_per_sec } => State::Poisson {
                rate_per_us: rate_per_sec / US_PER_SEC,
            },
            ArrivalProcess::Mmpp {
                slow_rate_per_sec,
                fast_rate_per_sec,
                mean_slow_us,
                mean_fast_us,
            } => {
                let phase_end_us = exp_gap_us(&mut rng, 1.0 / mean_slow_us);
                State::Mmpp {
                    slow_rate_per_us: slow_rate_per_sec / US_PER_SEC,
                    fast_rate_per_us: fast_rate_per_sec / US_PER_SEC,
                    mean_slow_us,
                    mean_fast_us,
                    fast: false,
                    phase_end_us,
                }
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                peak_rate_per_sec,
                period_us,
            } => State::Diurnal {
                base_rate_per_us: base_rate_per_sec / US_PER_SEC,
                peak_rate_per_us: peak_rate_per_sec / US_PER_SEC,
                period_us: period_us as f64,
            },
        };
        Arrivals {
            rng,
            state,
            now_us: 0,
            carry_us: 0.0,
        }
    }

    /// The exact gap (fractional µs) from the previous arrival to the
    /// next one, per the process.
    fn next_gap_us(&mut self) -> f64 {
        match &mut self.state {
            State::Poisson { rate_per_us } => exp_gap_us(&mut self.rng, *rate_per_us),
            State::Mmpp {
                slow_rate_per_us,
                fast_rate_per_us,
                mean_slow_us,
                mean_fast_us,
                fast,
                phase_end_us,
            } => {
                // Walk phase boundaries until an arrival lands inside the
                // current phase. Memoryless: crossing a boundary discards
                // the pending gap and resamples at the new phase's rate.
                let mut t = self.now_us as f64 + self.carry_us;
                let start = t;
                loop {
                    let rate = if *fast {
                        *fast_rate_per_us
                    } else {
                        *slow_rate_per_us
                    };
                    // rcr-lint: allow(unchecked-time-arithmetic, reason = "f64 virtual-time math: saturates to inf, cannot underflow-panic")
                    let candidate = t + exp_gap_us(&mut self.rng, rate);
                    if candidate <= *phase_end_us {
                        return candidate - start;
                    }
                    t = *phase_end_us;
                    *fast = !*fast;
                    let mean = if *fast { *mean_fast_us } else { *mean_slow_us };
                    // rcr-lint: allow(unchecked-time-arithmetic, reason = "f64 virtual-time math: saturates to inf, cannot underflow-panic")
                    *phase_end_us = t + exp_gap_us(&mut self.rng, 1.0 / mean);
                }
            }
            State::Diurnal {
                base_rate_per_us,
                peak_rate_per_us,
                period_us,
            } => {
                // Thinning (Lewis–Shedler): propose at the peak rate,
                // accept with probability rate(t)/peak.
                let start = self.now_us as f64 + self.carry_us;
                let mut t = start;
                loop {
                    // rcr-lint: allow(unchecked-time-arithmetic, reason = "f64 virtual-time math: saturates to inf, cannot underflow-panic")
                    t += exp_gap_us(&mut self.rng, *peak_rate_per_us);
                    let phase = 2.0 * std::f64::consts::PI * (t / *period_us);
                    let rate = *base_rate_per_us
                        + (*peak_rate_per_us - *base_rate_per_us) * (0.5 - 0.5 * phase.cos());
                    let u: f64 = self.rng.gen();
                    if u * *peak_rate_per_us < rate {
                        return t - start;
                    }
                }
            }
        }
    }
}

impl Iterator for Arrivals {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        // rcr-lint: allow(unchecked-time-arithmetic, reason = "f64 virtual-time math: saturates to inf, cannot underflow-panic")
        let gap = self.next_gap_us() + self.carry_us;
        // Emit on the integer µs grid, strictly increasing; the dropped
        // fraction carries into the next gap so rates stay unbiased.
        let whole = (gap.floor() as u64).max(1);
        self.carry_us = (gap - gap.floor()).clamp(0.0, 1.0);
        self.now_us = self.now_us.saturating_add(whole);
        Some(self.now_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaps(process: ArrivalProcess, seed: u64, n: usize) -> Vec<u64> {
        let mut last = 0u64;
        Arrivals::new(process, seed)
            .take(n)
            .map(|t| {
                let gap = t - last;
                last = t;
                gap
            })
            .collect()
    }

    fn mean_and_scv(gaps: &[u64]) -> (f64, f64) {
        let n = gaps.len() as f64;
        let mean = gaps.iter().map(|&g| g as f64).sum::<f64>() / n;
        let var = gaps
            .iter()
            .map(|&g| {
                let d = g as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        (mean, var / (mean * mean))
    }

    #[test]
    fn poisson_gaps_match_exponential_moments() {
        // 200k gaps at 10k req/s: mean gap 100 µs, SCV 1 (exponential).
        let g = gaps(
            ArrivalProcess::Poisson {
                rate_per_sec: 10_000.0,
            },
            7,
            200_000,
        );
        let (mean, scv) = mean_and_scv(&g);
        assert!((mean - 100.0).abs() < 2.0, "mean gap {mean} µs, want ~100");
        assert!((scv - 1.0).abs() < 0.05, "SCV {scv}, want ~1");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_with_the_right_mean() {
        // Short sojourns on purpose: the horizon of an MMPP sample is
        // itself random (exponential sojourns), so the mean-gap estimator
        // needs many phase cycles (~700 here → ~3% noise) to settle.
        let process = ArrivalProcess::Mmpp {
            slow_rate_per_sec: 2_000.0,
            fast_rate_per_sec: 50_000.0,
            mean_slow_us: 40_000.0,
            mean_fast_us: 4_000.0,
        };
        let g = gaps(process, 11, 200_000);
        let (mean, scv) = mean_and_scv(&g);
        // Time-averaged rate: (λs·Ts + λf·Tf)/(Ts+Tf) per µs.
        let expected_rate = (0.002 * 40_000.0 + 0.05 * 4_000.0) / (40_000.0 + 4_000.0);
        let expected_mean = 1.0 / expected_rate;
        assert!(
            (mean - expected_mean).abs() / expected_mean < 0.10,
            "mean gap {mean} µs, want ~{expected_mean}"
        );
        assert!(scv > 1.3, "MMPP gaps must be overdispersed, got SCV {scv}");
    }

    #[test]
    fn diurnal_rate_stays_between_base_and_peak_and_waves() {
        let period_us = 1_000_000u64;
        let process = ArrivalProcess::Diurnal {
            base_rate_per_sec: 1_000.0,
            peak_rate_per_sec: 20_000.0,
            period_us,
        };
        // Count arrivals per quarter-period over many periods: crest
        // quarters (around period/2) must far out-arrive trough quarters.
        let horizon = 40 * period_us;
        let mut quarter_counts = [0u64; 4];
        for t in Arrivals::new(process, 3).take_while(|&t| t < horizon) {
            quarter_counts[((t % period_us) * 4 / period_us) as usize] += 1;
        }
        let total: u64 = quarter_counts.iter().sum();
        let mean_rate_per_sec = total as f64 / (horizon as f64 / US_PER_SEC);
        assert!(
            mean_rate_per_sec > 1_000.0 && mean_rate_per_sec < 20_000.0,
            "average rate {mean_rate_per_sec}/s must sit between base and peak"
        );
        // rate(t) peaks at t = period/2 (quarters 1 and 2 straddle it).
        let crest = quarter_counts[1] + quarter_counts[2];
        let trough = quarter_counts[0] + quarter_counts[3];
        assert!(
            crest as f64 > 2.0 * trough as f64,
            "crest {crest} vs trough {trough}: wave not visible"
        );
    }

    #[test]
    fn streams_are_deterministic_and_strictly_increasing() {
        let process = ArrivalProcess::Poisson {
            rate_per_sec: 5_000.0,
        };
        let a: Vec<u64> = Arrivals::new(process, 9).take(10_000).collect();
        let b: Vec<u64> = Arrivals::new(process, 9).take(10_000).collect();
        assert_eq!(a, b, "same seed, same timeline");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        let c: Vec<u64> = Arrivals::new(process, 10).take(10_000).collect();
        assert_ne!(a, c, "different seed, different timeline");
    }
}
