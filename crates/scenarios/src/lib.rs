//! `rcr-scenarios` — declarative scenarios, deterministic traces, and a
//! closed-loop load harness for `rcr-serve`.
//!
//! The paper's experiments need *workloads*, not just solvers: cell
//! populations with a QoS-class mix, fading channels, bursty and diurnal
//! arrival processes, offered at controlled load against the serving
//! stack. This crate makes those workloads declarative and replayable:
//!
//! ```text
//!   ScenarioManifest (JSON)          ──  manifest
//!        │ seed
//!        ▼
//!   Arrivals → TraceGenerator        ──  arrivals, trace
//!        │ lazy stream of SolveRequests  (+ 128-bit trace digest)
//!        ▼
//!   LoadGenerator → rcr_serve::Service   ──  load
//!        │ open- or closed-loop
//!        ▼
//!   ScenarioReport (+ reconcile)     ──  report
//!        │
//!        ▼
//!   ScenarioExpectation checks       ──  expect
//! ```
//!
//! Everything up to the load loop is **clock-free and bit-deterministic**:
//! a `(manifest, seed)` pair pins the exact request stream, recorded as a
//! 128-bit digest in a [`RunManifest`] so replays are checkable. Only the
//! load harness touches the wall clock — it has to, to offer load at a
//! real rate — and the lint wall-clock rule is scoped accordingly.
//!
//! [`sim`] adds a third leg: a virtual-time discrete-event simulator over
//! the *same* admission queue the live service uses, for scheduling
//! experiments (EDF vs FIFO) that must not depend on machine speed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod digest;
pub mod expect;
pub mod load;
pub mod manifest;
pub mod report;
pub mod sim;
pub mod trace;

pub use arrivals::Arrivals;
pub use digest::Digest128;
pub use expect::{DisciplineExpectation, OverloadExpectation};
pub use load::{run_scenario, LoadMode};
pub use manifest::{ArrivalProcess, ClassMix, FadingModel, RunManifest, ScenarioManifest};
pub use report::{ClassReport, ReportBuilder, ScenarioReport};
pub use sim::{simulate, SimItem, SimOutcome};
pub use trace::{trace_digest, TimedRequest, TraceGenerator};
