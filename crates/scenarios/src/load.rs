//! The closed-loop load harness: offer a generated trace to a live
//! in-process [`rcr_serve::Service`] and account for every response.
//!
//! Two offering disciplines:
//!
//! * [`LoadMode::Open`] — replay the trace's own virtual timeline
//!   against the wall clock, scaled by `speed` (2.0 = the same scenario
//!   offered twice as fast). Arrivals do not wait for responses, so
//!   overload manifests as queueing, shedding, and expiry — exactly what
//!   the admission lanes are for.
//! * [`LoadMode::Closed`] — ignore the timeline and keep at most
//!   `concurrency` requests in flight, submitting the next as the oldest
//!   completes. The service runs back-to-back, so the achieved rate *is*
//!   its capacity — which is how expectation tests calibrate "2×
//!   overload" without machine-specific constants.
//!
//! This module is the one deliberately wall-clock-touching part of the
//! crate (generation stays virtual-time and clock-free); every clock
//! read funnels through [`wall_now`], which carries the lint waiver.

use crate::manifest::ScenarioManifest;
use crate::report::{ReportBuilder, ScenarioReport};
use crate::trace::TraceGenerator;
use rcr_qos::QosClass;
use rcr_serve::{Service, ServiceConfig, Ticket};
use std::collections::VecDeque;
use std::thread;
use std::time::{Duration, Instant};

/// How the harness offers the trace to the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Open loop: submit on the trace's virtual timeline, compressed by
    /// `speed` (1.0 = real time; must be positive).
    Open {
        /// Timeline compression factor.
        speed: f64,
    },
    /// Closed loop: at most `concurrency` requests in flight.
    Closed {
        /// In-flight window (must be at least 1).
        concurrency: usize,
    },
}

/// The single sanctioned wall-clock read in this crate: load offering is
/// inherently a wall-clock activity, unlike trace generation.
fn wall_now() -> Instant {
    // rcr-lint: allow(no-wall-clock-in-solvers, reason = "the load harness paces real offered load; generation stays virtual-time")
    Instant::now()
}

/// Runs `manifest`'s trace against a freshly spawned service and returns
/// the sealed report (the service is drained and shut down before the
/// snapshot is taken, so harness and service books are comparable).
///
/// # Errors
/// Invalid manifest or mode parameters, service spawn failure, or a
/// response channel closing mid-run.
pub fn run_scenario(
    manifest: &ScenarioManifest,
    config: ServiceConfig,
    mode: LoadMode,
) -> Result<ScenarioReport, String> {
    match mode {
        LoadMode::Open { speed } => {
            if !(speed > 0.0) || !speed.is_finite() {
                return Err(format!(
                    "open-loop speed must be finite and positive, got {speed}"
                ));
            }
        }
        LoadMode::Closed { concurrency } => {
            if concurrency == 0 {
                return Err("closed-loop concurrency must be at least 1".into());
            }
        }
    }
    let trace = TraceGenerator::new(manifest)?;
    let service = Service::spawn(config).map_err(|e| e.to_string())?;
    let client = service.client();
    let mut builder = ReportBuilder::new();
    let settle = |builder: &mut ReportBuilder, class: QosClass, ticket: Ticket| {
        let resp = ticket.wait().map_err(|e| e.to_string())?;
        builder.record(
            class,
            &resp.outcome,
            resp.queue_time.saturating_add(resp.solve_time),
        );
        Ok::<(), String>(())
    };
    let start = wall_now();
    match mode {
        LoadMode::Open { speed } => {
            // Submit on schedule; settle everything afterwards. A ticket
            // is just a response-channel handle, so pending responses —
            // not requests — are what accumulates here.
            let mut pending: Vec<(QosClass, Ticket)> = Vec::new();
            let mut backlogged = 0u64;
            for t in trace {
                // A schedule offset the clock can't represent (absurd
                // speed, or a trace hour beyond the Instant range)
                // degrades to "submit immediately" instead of panicking.
                let offset = Duration::try_from_secs_f64(t.at_us as f64 / (speed * 1e6))
                    .unwrap_or(Duration::ZERO);
                let target = start.checked_add(offset).unwrap_or(start);
                let now = wall_now();
                match target.checked_duration_since(now) {
                    Some(ahead) if !ahead.is_zero() => thread::sleep(ahead),
                    // Behind schedule → submit immediately and catch up,
                    // yielding the core once in a while: a producer that
                    // busy-loops through a backlog starves the batcher on
                    // small machines, so an unyielding loop measures the
                    // host's core count rather than the admission policy.
                    // Every 8th submission keeps the pressure a firehose
                    // while letting the service actually run.
                    _ => {
                        backlogged += 1;
                        if backlogged.is_multiple_of(8) {
                            thread::yield_now();
                        }
                    }
                }
                pending.push((t.request.class, client.submit(t.request)));
            }
            for (class, ticket) in pending {
                settle(&mut builder, class, ticket)?;
            }
        }
        LoadMode::Closed { concurrency } => {
            let mut inflight: VecDeque<(QosClass, Ticket)> = VecDeque::new();
            for t in trace {
                if inflight.len() == concurrency {
                    if let Some((class, ticket)) = inflight.pop_front() {
                        settle(&mut builder, class, ticket)?;
                    }
                }
                inflight.push_back((t.request.class, client.submit(t.request)));
            }
            for (class, ticket) in inflight {
                settle(&mut builder, class, ticket)?;
            }
        }
    }
    let elapsed = wall_now().saturating_duration_since(start);
    let snapshot = service.shutdown();
    Ok(builder.finish(elapsed, snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ArrivalProcess, ClassMix, FadingModel};
    use rcr_serve::SolverKind;

    fn manifest(requests: u64) -> ScenarioManifest {
        ScenarioManifest {
            name: "load-unit".into(),
            seed: 5,
            requests,
            cells: 2,
            population: 500,
            users_per_problem: 3,
            resource_blocks: 6,
            class_mix: ClassMix {
                urllc: 0.2,
                embb: 0.3,
                mmtc: 0.5,
            },
            fading: FadingModel::BlockRayleigh {
                coherence_us: 10_000,
            },
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 100_000.0,
            },
            deadlines_us: [1_000_000, 1_000_000, 1_000_000],
            solver: SolverKind::Greedy,
        }
    }

    #[test]
    fn rejects_degenerate_modes() {
        let m = manifest(10);
        assert!(run_scenario(&m, ServiceConfig::default(), LoadMode::Open { speed: 0.0 }).is_err());
        assert!(run_scenario(
            &m,
            ServiceConfig::default(),
            LoadMode::Closed { concurrency: 0 }
        )
        .is_err());
    }

    #[test]
    fn closed_loop_accounts_for_every_request() {
        let report = run_scenario(
            &manifest(400),
            ServiceConfig::default(),
            LoadMode::Closed { concurrency: 8 },
        )
        .expect("run succeeds");
        assert_eq!(report.offered(), 400);
        report.reconcile(None).expect("books balance");
        // Generous deadlines + closed loop: everything solves.
        for class in QosClass::ALL {
            let c = report.class(class);
            assert_eq!(c.solved, c.offered, "{} shed under no load", class.name());
        }
    }

    #[test]
    fn open_loop_survives_unrepresentable_schedule_offsets() {
        // A vanishingly small (but valid) replay speed pushes every
        // schedule offset past what Duration can represent; the
        // try_from_secs_f64 + checked_add pacing must degrade to
        // "submit immediately" rather than panic in Duration::from_secs_f64.
        let report = run_scenario(
            &manifest(50),
            ServiceConfig::default(),
            LoadMode::Open { speed: 1e-300 },
        )
        .expect("run succeeds");
        assert_eq!(report.offered(), 50);
        report.reconcile(None).expect("books balance");
    }

    #[test]
    fn open_loop_replays_the_trace_timeline() {
        // 400 requests at 100k/s ≈ 4ms of virtual time; at speed 0.5 the
        // submission window alone must take at least ~8ms of wall time.
        let report = run_scenario(
            &manifest(400),
            ServiceConfig::default(),
            LoadMode::Open { speed: 0.5 },
        )
        .expect("run succeeds");
        assert_eq!(report.offered(), 400);
        report.reconcile(None).expect("books balance");
        assert!(
            report.elapsed >= Duration::from_millis(6),
            "open loop finished in {:?} — pacing was ignored",
            report.elapsed
        );
    }
}
