//! Lazy, deterministic trace generation.
//!
//! [`TraceGenerator`] turns a validated [`ScenarioManifest`] into an
//! iterator of [`TimedRequest`]s — nothing is materialized, so a 10⁶-
//! request trace costs O(active drifting users) memory, and the whole
//! stream is a pure function of the manifest (worker counts, wall clock,
//! and iteration batching cannot touch it).
//!
//! Seed derivation is layered so streams never alias:
//!
//! ```text
//! manifest.seed
//!   ├─ ^ARRIVAL_SALT  → arrival timeline rng
//!   ├─ ^PICK_SALT     → user-selection rng
//!   ├─ ^CLASS_SALT ──seed_stream(·, user)──→ the user's QoS class
//!   └─ ^CHANNEL_SALT ─seed_stream(·, user ⊕ cell·φ)─→ user channel base
//!                        └─seed_stream(·, epoch)──→ per-epoch spec seed
//! ```
//!
//! so a user's class is stable for the whole trace, and their channel
//! redraws exactly when the fading model says it should.

use crate::arrivals::Arrivals;
use crate::digest::Digest128;
use crate::manifest::{FadingModel, ScenarioManifest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcr_runtime::seed_stream;
use rcr_serve::{Payload, ScenarioSpec, SolveRequest};
use std::collections::HashMap;
use std::time::Duration;

const ARRIVAL_SALT: u64 = 0xA11C_0A75_ED15_7AB1;
const PICK_SALT: u64 = 0x9C0D_E5EE_D0F0_0D5E;
const CLASS_SALT: u64 = 0xC1A5_5EED_0000_0001;
const CHANNEL_SALT: u64 = 0xC4A7_7E15_EED0_0002;
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Maps a 64-bit hash to the unit interval `[0, 1)`.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One generated request with its virtual arrival time and attribution.
#[derive(Debug, Clone)]
pub struct TimedRequest {
    /// Virtual arrival time (µs since trace start, strictly increasing).
    pub at_us: u64,
    /// The user this arrival is attributed to.
    pub user: u64,
    /// The user's home cell (`user % cells`).
    pub cell: u64,
    /// The request to submit; `request.id` is the trace position.
    pub request: SolveRequest,
}

/// Per-user correlated-drift channel state: how many requests the user
/// has issued, and which epoch their current channel realization is.
struct DriftState {
    arrivals: u64,
    epoch: u64,
}

/// Lazy trace iterator. Yields exactly `manifest.requests` items.
pub struct TraceGenerator {
    manifest: ScenarioManifest,
    arrivals: Arrivals,
    pick_rng: StdRng,
    next_id: u64,
    /// Correlated-drift memory, keyed by user. Only populated under
    /// [`FadingModel::CorrelatedDrift`]; grows with *distinct users
    /// seen*, the one deliberate O(population) cost of that model.
    drift: HashMap<u64, DriftState>,
}

impl TraceGenerator {
    /// A generator over `manifest`. Validates first so iteration cannot
    /// divide by zero or loop forever.
    ///
    /// # Errors
    /// Whatever [`ScenarioManifest::validate`] reports.
    pub fn new(manifest: &ScenarioManifest) -> Result<TraceGenerator, String> {
        manifest.validate()?;
        Ok(TraceGenerator {
            arrivals: Arrivals::new(manifest.arrivals, manifest.seed ^ ARRIVAL_SALT),
            pick_rng: StdRng::seed_from_u64(manifest.seed ^ PICK_SALT),
            manifest: manifest.clone(),
            next_id: 0,
            drift: HashMap::new(),
        })
    }

    /// The channel-spec seed for this arrival, per the fading model.
    fn channel_seed(&mut self, user: u64, cell: u64, at_us: u64) -> u64 {
        let base = seed_stream(
            self.manifest.seed ^ CHANNEL_SALT,
            user ^ cell.wrapping_mul(GOLDEN),
        );
        match self.manifest.fading {
            FadingModel::BlockRayleigh { coherence_us } => {
                // Redraw on coherence-block boundaries of virtual time.
                seed_stream(base, at_us / coherence_us)
            }
            FadingModel::CorrelatedDrift { redraw_prob } => {
                let state = self.drift.entry(user).or_insert(DriftState {
                    arrivals: 0,
                    epoch: 0,
                });
                if state.arrivals > 0 {
                    let u = unit_f64(seed_stream(base ^ GOLDEN, state.arrivals));
                    if u < redraw_prob {
                        state.epoch = state.arrivals;
                    }
                }
                state.arrivals += 1;
                seed_stream(base, state.epoch)
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = TimedRequest;

    fn next(&mut self) -> Option<TimedRequest> {
        if self.next_id >= self.manifest.requests {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let at_us = self.arrivals.next()?;
        let user = self.pick_rng.gen_range(0..self.manifest.population);
        let cell = user % self.manifest.cells;
        let class = self
            .manifest
            .class_mix
            .pick(unit_f64(seed_stream(self.manifest.seed ^ CLASS_SALT, user)));
        let spec_seed = self.channel_seed(user, cell, at_us);
        Some(TimedRequest {
            at_us,
            user,
            cell,
            request: SolveRequest {
                id,
                class,
                deadline: Duration::from_micros(self.manifest.deadline_us(class)),
                solver: self.manifest.solver,
                payload: Payload::Scenario(ScenarioSpec {
                    users: self.manifest.users_per_problem,
                    resource_blocks: self.manifest.resource_blocks,
                    seed: spec_seed,
                }),
            },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.manifest.requests - self.next_id) as usize;
        (left, Some(left))
    }
}

/// Folds one timed request into a digest — every field that reaches the
/// service, plus the attribution, in emission order.
pub fn fold_request(d: &mut Digest128, t: &TimedRequest) {
    d.u64(t.request.id);
    d.u64(t.at_us);
    d.u64(t.user);
    d.u64(t.cell);
    d.u64(t.request.class.priority_rank() as u64);
    d.u64(t.request.deadline.as_micros() as u64);
    d.str(t.request.solver.name());
    if let Payload::Scenario(spec) = &t.request.payload {
        d.u64(spec.users as u64);
        d.u64(spec.resource_blocks as u64);
        d.u64(spec.seed);
    }
}

/// Generates the full trace and returns its 128-bit hex digest — the
/// replay contract recorded in a [`crate::manifest::RunManifest`].
///
/// # Errors
/// Whatever [`ScenarioManifest::validate`] reports.
pub fn trace_digest(manifest: &ScenarioManifest) -> Result<String, String> {
    let mut d = Digest128::new(manifest.seed);
    manifest.fold_into(&mut d);
    for t in TraceGenerator::new(manifest)? {
        fold_request(&mut d, &t);
    }
    Ok(d.hex())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ArrivalProcess, ClassMix, ScenarioManifest};
    use rcr_qos::QosClass;
    use rcr_serve::SolverKind;

    fn manifest() -> ScenarioManifest {
        ScenarioManifest {
            name: "trace-unit".into(),
            seed: 99,
            requests: 5_000,
            cells: 4,
            population: 10_000,
            users_per_problem: 3,
            resource_blocks: 6,
            class_mix: ClassMix {
                urllc: 0.2,
                embb: 0.3,
                mmtc: 0.5,
            },
            fading: FadingModel::BlockRayleigh {
                coherence_us: 5_000,
            },
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 50_000.0,
            },
            deadlines_us: [2_000, 20_000, 200_000],
            solver: SolverKind::Greedy,
        }
    }

    #[test]
    fn yields_exactly_requests_items_with_sequential_ids() {
        let items: Vec<TimedRequest> = TraceGenerator::new(&manifest()).unwrap().collect();
        assert_eq!(items.len(), 5_000);
        for (i, t) in items.iter().enumerate() {
            assert_eq!(t.request.id, i as u64);
            assert_eq!(t.cell, t.user % 4);
            assert!(t.user < 10_000);
        }
        assert!(items.windows(2).all(|w| w[0].at_us < w[1].at_us));
    }

    #[test]
    fn class_is_a_stable_function_of_the_user() {
        let mut class_of: HashMap<u64, QosClass> = HashMap::new();
        for t in TraceGenerator::new(&manifest()).unwrap() {
            let prev = class_of.insert(t.user, t.request.class);
            if let Some(prev) = prev {
                assert_eq!(prev, t.request.class, "user {} changed class", t.user);
            }
            assert_eq!(
                t.request.deadline.as_micros() as u64,
                manifest().deadline_us(t.request.class)
            );
        }
        // With a 10k population and 5k requests, all three classes appear.
        let mut seen = [false; 3];
        for class in class_of.values() {
            seen[class.priority_rank()] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn block_fading_redraws_on_epoch_boundaries_only() {
        // Within one coherence block a user's spec seed is constant;
        // across blocks it changes.
        let mut per_user: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        for t in TraceGenerator::new(&manifest()).unwrap() {
            if let Payload::Scenario(spec) = &t.request.payload {
                per_user
                    .entry(t.user)
                    .or_default()
                    .push((t.at_us, spec.seed));
            }
        }
        let mut same_epoch_pairs = 0u64;
        let mut cross_epoch_changes = 0u64;
        for draws in per_user.values() {
            for w in draws.windows(2) {
                let (ta, sa) = w[0];
                let (tb, sb) = w[1];
                if ta / 5_000 == tb / 5_000 {
                    assert_eq!(sa, sb, "seed changed inside a coherence block");
                    same_epoch_pairs += 1;
                } else if sa != sb {
                    cross_epoch_changes += 1;
                }
            }
        }
        assert!(same_epoch_pairs > 0, "test must exercise same-block pairs");
        assert!(cross_epoch_changes > 0, "blocks must actually redraw");
    }

    #[test]
    fn correlated_drift_repeats_and_redraws_per_its_probability() {
        let mut m = manifest();
        m.fading = FadingModel::CorrelatedDrift { redraw_prob: 0.3 };
        m.population = 200; // force many repeat arrivals per user
        let mut per_user: HashMap<u64, Vec<u64>> = HashMap::new();
        for t in TraceGenerator::new(&m).unwrap() {
            if let Payload::Scenario(spec) = &t.request.payload {
                per_user.entry(t.user).or_default().push(spec.seed);
            }
        }
        let (mut kept, mut redrawn) = (0u64, 0u64);
        for seeds in per_user.values() {
            for w in seeds.windows(2) {
                if w[0] == w[1] {
                    kept += 1;
                } else {
                    redrawn += 1;
                }
            }
        }
        let frac = redrawn as f64 / (kept + redrawn) as f64;
        assert!(
            (frac - 0.3).abs() < 0.05,
            "redraw fraction {frac}, want ~0.3"
        );
    }

    #[test]
    fn digest_is_reproducible_and_spec_sensitive() {
        let m = manifest();
        let a = trace_digest(&m).unwrap();
        let b = trace_digest(&m).unwrap();
        assert_eq!(a, b, "same manifest, same digest");
        let mut m2 = m.clone();
        m2.seed += 1;
        assert_ne!(a, trace_digest(&m2).unwrap(), "seed must change the digest");
        let mut m3 = m.clone();
        m3.class_mix.urllc += 0.01;
        assert_ne!(a, trace_digest(&m3).unwrap(), "spec must change the digest");
    }
}
