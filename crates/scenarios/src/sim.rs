//! Virtual-time discrete-event simulation over the *real* admission
//! queue.
//!
//! The live service measures scheduling with wall clocks, which makes
//! discipline comparisons (EDF vs FIFO) machine-dependent and noisy. This
//! simulator drives the very same [`AdmissionQueue`] — same lanes, same
//! sweep, same batching triggers — on a virtual µs clock with a single
//! deterministic server, so "EDF meets more deadlines than FIFO at 0.9
//! utilization" becomes an exact, replayable statement about the
//! scheduling code rather than about the machine the test ran on.
//!
//! The module is clock-free: the caller supplies the base [`Instant`]
//! that anchors the virtual timeline (any instant works — only offsets
//! from it matter), and the simulation never reads a clock.

use rcr_qos::QosClass;
use rcr_serve::{AdmissionQueue, EnqueueRejection, QueuePolicy};
use std::time::{Duration, Instant};

/// One arrival to simulate.
#[derive(Debug, Clone, Copy)]
pub struct SimItem {
    /// Virtual arrival time, µs from the base instant.
    pub at_us: u64,
    /// Admission lane.
    pub class: QosClass,
    /// Deadline budget from arrival, µs.
    pub deadline_us: u64,
}

/// Deadline bookkeeping of one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimOutcome {
    /// Solved with the (serialized) completion inside the deadline.
    pub met: u64,
    /// Solved, but the completion landed past the deadline.
    pub late: u64,
    /// Expired before service (at enqueue or swept from the lane).
    pub expired: u64,
    /// Refused admission (lane full).
    pub rejected: u64,
}

impl SimOutcome {
    /// Total arrivals accounted for.
    pub fn total(&self) -> u64 {
        self.met + self.late + self.expired + self.rejected
    }

    /// Fraction of arrivals whose deadline was met.
    pub fn met_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.met as f64 / self.total() as f64
    }
}

/// `base + d`, saturating toward the end of the representable `Instant`
/// range instead of panicking: an event the clock can never reach stays
/// in the far future (and so never becomes "due"). Halving converges
/// because `checked_add(ZERO)` always succeeds.
fn forward(base: Instant, mut d: Duration) -> Instant {
    loop {
        if let Some(t) = base.checked_add(d) {
            return t;
        }
        d /= 2;
    }
}

/// Simulates `items` (must be sorted by `at_us`) through an admission
/// queue under `policy`, with one server taking `service_time_us` per
/// request; a drained batch of `n` completes its entries serially at
/// `t + k·service_time_us` for `k = 1..=n`, matching how a batch solve
/// reports per-entry completions.
///
/// # Errors
/// An invalid `policy`, or unsorted `items`.
pub fn simulate(
    base: Instant,
    items: &[SimItem],
    service_time_us: u64,
    policy: &QueuePolicy,
) -> Result<SimOutcome, String> {
    if items.windows(2).any(|w| w[0].at_us > w[1].at_us) {
        return Err("sim items must be sorted by arrival time".into());
    }
    let mut queue: AdmissionQueue<usize> =
        AdmissionQueue::new(policy).map_err(|e| e.to_string())?;
    let service_time = Duration::from_micros(service_time_us);
    let mut outcome = SimOutcome::default();
    let mut now = base;
    let mut free_at = base;
    let mut next_item = 0usize;
    loop {
        // 1. Expire whatever the clock has overtaken.
        outcome.expired += queue.sweep_expired(now).len() as u64;
        // 2. Admit every arrival due by now.
        while next_item < items.len()
            && forward(base, Duration::from_micros(items[next_item].at_us)) <= now
        {
            let item = items[next_item];
            let due_us = item.at_us.saturating_add(item.deadline_us);
            let deadline_at = forward(base, Duration::from_micros(due_us));
            match queue.enqueue(next_item, item.class, now, deadline_at) {
                Ok(()) => {}
                Err(EnqueueRejection::QueueFull { .. }) => outcome.rejected += 1,
                Err(EnqueueRejection::AlreadyExpired { .. }) => outcome.expired += 1,
            }
            next_item += 1;
        }
        // 3. An idle server takes at most one batch and goes busy.
        if now >= free_at {
            if let Some((_, batch)) = queue.next_batch(now, false) {
                for (k, entry) in batch.iter().enumerate() {
                    let done = forward(now, service_time.saturating_mul(k as u32 + 1));
                    if done <= entry.deadline_at {
                        outcome.met += 1;
                    } else {
                        outcome.late += 1;
                    }
                }
                free_at = forward(now, service_time.saturating_mul(batch.len() as u32));
            }
        }
        // 4. Advance to the next event.
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| {
            next = Some(match next {
                Some(n) => n.min(t),
                None => t,
            });
        };
        if next_item < items.len() {
            consider(forward(base, Duration::from_micros(items[next_item].at_us)));
        }
        if free_at > now {
            consider(free_at);
        } else if let Some(wake) = queue.next_wakeup(now) {
            consider(wake);
        }
        match next {
            None => break,
            // A wakeup may be "now" (e.g. ready lane behind a just-freed
            // server); nudge forward one tick so time always advances.
            // If even one tick overflows the clock, the run is over.
            Some(t) if t <= now => match now.checked_add(Duration::from_micros(1)) {
                Some(tick) => now = tick,
                None => break,
            },
            Some(t) => now = t,
        }
    }
    debug_assert_eq!(outcome.total(), items.len() as u64);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcr_serve::{LanePolicy, QueueDiscipline};

    fn policy(discipline: QueueDiscipline) -> QueuePolicy {
        let lane = LanePolicy {
            capacity: 64,
            max_batch: 4,
            max_age: Duration::from_micros(200),
        };
        QueuePolicy {
            urllc: lane,
            embb: lane,
            mmtc: lane,
            discipline,
        }
    }

    /// Bursts of 9 requests every 10 ms against a 1 ms server — 0.9
    /// utilization, but *bursty*, so a queue actually forms. Each burst
    /// puts five loose-deadline items ahead of four tight-deadline ones:
    /// EDF reorders to save the tight ones, FIFO can't.
    fn items(bursts: u64) -> Vec<SimItem> {
        let mut v = Vec::new();
        for b in 0..bursts {
            let at_us = b * 10_000;
            for i in 0..9u64 {
                v.push(SimItem {
                    at_us,
                    class: QosClass::Embb,
                    deadline_us: if i < 5 { 50_000 } else { 5_000 },
                });
            }
        }
        v
    }

    #[test]
    fn accounts_for_every_item_and_is_deterministic() {
        let items = items(50);
        let a = simulate(Instant::now(), &items, 1_000, &policy(QueueDiscipline::Edf)).unwrap();
        let b = simulate(Instant::now(), &items, 1_000, &policy(QueueDiscipline::Edf)).unwrap();
        assert_eq!(a, b, "virtual time ⇒ base instant must not matter");
        assert_eq!(a.total(), 450);
    }

    #[test]
    fn underload_meets_every_deadline_under_both_disciplines() {
        // 10% utilization: gap 10ms, service 1ms, generous deadlines.
        let easy: Vec<SimItem> = (0..100)
            .map(|i| SimItem {
                at_us: i * 10_000,
                class: QosClass::Embb,
                deadline_us: 50_000,
            })
            .collect();
        for discipline in [QueueDiscipline::Edf, QueueDiscipline::Fifo] {
            let out = simulate(Instant::now(), &easy, 1_000, &policy(discipline)).unwrap();
            assert_eq!(out.met, 100, "{discipline:?} shed under 10% load: {out:?}");
        }
    }

    #[test]
    fn near_boundary_timestamps_do_not_panic_and_still_account() {
        // `at_us + deadline_us` would overflow u64 raw; the saturating
        // sum plus `forward`'s Instant clamp must keep the event loop
        // total-accounting invariant intact instead of panicking.
        let extreme = vec![
            SimItem {
                at_us: 0,
                class: QosClass::Embb,
                deadline_us: u64::MAX,
            },
            SimItem {
                at_us: 1,
                class: QosClass::Embb,
                deadline_us: u64::MAX - 1,
            },
        ];
        let out = simulate(
            Instant::now(),
            &extreme,
            1_000,
            &policy(QueueDiscipline::Edf),
        )
        .unwrap();
        assert_eq!(out.total(), 2, "{out:?}");
    }

    #[test]
    fn edf_beats_fifo_at_high_utilization() {
        let items = items(200);
        let edf = simulate(Instant::now(), &items, 1_000, &policy(QueueDiscipline::Edf)).unwrap();
        let fifo = simulate(
            Instant::now(),
            &items,
            1_000,
            &policy(QueueDiscipline::Fifo),
        )
        .unwrap();
        assert!(
            edf.met > fifo.met,
            "EDF must meet more deadlines than FIFO at 0.9 utilization: {edf:?} vs {fifo:?}"
        );
        // The gap is structural, not marginal: every tight deadline EDF
        // rescues, FIFO burns.
        assert!(
            edf.met_fraction() - fifo.met_fraction() > 0.2,
            "expected a structural gap: {edf:?} vs {fifo:?}"
        );
    }
}
