//! Scenario run reporting and closed-book accounting.
//!
//! [`ScenarioReport`] is what a load run returns: per-class outcome
//! counts with *exact* latency quantiles (the harness keeps every sample,
//! unlike the service's fixed-bin histograms), plus the service's own
//! [`MetricsSnapshot`] taken at shutdown. [`ScenarioReport::reconcile`]
//! then cross-checks the two books: every offered request must be
//! accounted for exactly once, the harness's counts must agree with the
//! service's, and sustained `QueueFull` rejections must coincide with the
//! lane having actually hit its configured capacity.

use rcr_qos::QosClass;
use rcr_serve::{ExpiryPhase, MetricsSnapshot, Outcome, QueuePolicy, RejectReason};
use std::fmt::Write as _;
use std::time::Duration;

/// One class's view of a run, from the harness's side of the wire.
#[derive(Debug, Clone, Default)]
pub struct ClassReport {
    /// Requests the harness submitted for this class.
    pub offered: u64,
    /// Solved within deadline.
    pub solved: u64,
    /// Rejected with `QueueFull`.
    pub rejected_full: u64,
    /// Rejected with `ShuttingDown`.
    pub rejected_shutdown: u64,
    /// Expired before admission.
    pub expired_at_enqueue: u64,
    /// Expired waiting in the lane.
    pub expired_in_queue: u64,
    /// Expired detected after the solve finished.
    pub expired_after_solve: u64,
    /// Solver errors.
    pub failed: u64,
    /// Service-side latency (queue + solve) of each solved request, µs,
    /// sorted ascending once the run is sealed.
    latencies_us: Vec<u64>,
}

impl ClassReport {
    /// Terminal outcomes recorded — must equal `offered` after a run.
    pub fn accounted(&self) -> u64 {
        self.solved
            + self.rejected_full
            + self.rejected_shutdown
            + self.expired_at_enqueue
            + self.expired_in_queue
            + self.expired_after_solve
            + self.failed
    }

    /// Fraction of offered requests that were shed (rejected or expired).
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        let shed = self.offered - self.solved - self.failed;
        shed as f64 / self.offered as f64
    }

    /// Exact latency quantile (nearest-rank on the sorted samples), or
    /// zero when no request of this class was solved.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_us[rank - 1]
    }

    /// Median solved latency, µs.
    pub fn p50_us(&self) -> u64 {
        self.latency_quantile_us(0.50)
    }

    /// 99th-percentile solved latency, µs.
    pub fn p99_us(&self) -> u64 {
        self.latency_quantile_us(0.99)
    }

    /// Maximum solved latency, µs.
    pub fn max_us(&self) -> u64 {
        self.latencies_us.last().copied().unwrap_or(0)
    }

    fn record(&mut self, outcome: &Outcome, latency: Duration) {
        self.offered += 1;
        match outcome {
            Outcome::Solved(_) => {
                self.solved += 1;
                self.latencies_us.push(latency.as_micros() as u64);
            }
            Outcome::Rejected(RejectReason::QueueFull { .. }) => self.rejected_full += 1,
            Outcome::Rejected(RejectReason::ShuttingDown) => self.rejected_shutdown += 1,
            Outcome::Expired(miss) => match miss.phase {
                ExpiryPhase::AtEnqueue => self.expired_at_enqueue += 1,
                ExpiryPhase::InQueue => self.expired_in_queue += 1,
                ExpiryPhase::AfterSolve => self.expired_after_solve += 1,
            },
            Outcome::Failed(_) => self.failed += 1,
        }
    }

    fn seal(&mut self) {
        self.latencies_us.sort_unstable();
    }
}

/// The complete result of one scenario load run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Per-class harness books, indexed by [`QosClass::priority_rank`].
    pub per_class: [ClassReport; 3],
    /// Wall-clock duration of the load loop.
    pub elapsed: Duration,
    /// The service's own metrics, snapshotted at shutdown.
    pub snapshot: MetricsSnapshot,
}

/// Incremental report assembly — the load loop folds each response in as
/// it completes, so a 10⁶-request run never materializes its outcomes.
#[derive(Debug, Default)]
pub struct ReportBuilder {
    per_class: [ClassReport; 3],
}

impl ReportBuilder {
    /// An empty builder.
    pub fn new() -> ReportBuilder {
        ReportBuilder::default()
    }

    /// Folds one response in. `latency` is the service-side total
    /// (queue time + solve time).
    pub fn record(&mut self, class: QosClass, outcome: &Outcome, latency: Duration) {
        self.per_class[class.priority_rank()].record(outcome, latency);
    }

    /// Seals the books into a [`ScenarioReport`].
    pub fn finish(mut self, elapsed: Duration, snapshot: MetricsSnapshot) -> ScenarioReport {
        for report in &mut self.per_class {
            report.seal();
        }
        ScenarioReport {
            per_class: self.per_class,
            elapsed,
            snapshot,
        }
    }
}

impl ScenarioReport {
    /// The harness book for `class`.
    pub fn class(&self, class: QosClass) -> &ClassReport {
        &self.per_class[class.priority_rank()]
    }

    /// Total requests offered across classes.
    pub fn offered(&self) -> u64 {
        self.per_class.iter().map(|c| c.offered).sum()
    }

    /// Achieved throughput over the run (responses per wall second).
    pub fn achieved_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.offered() as f64 / secs
    }

    /// Renders the per-class table plus run totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
            "class",
            "offered",
            "solved",
            "rejected",
            "expired",
            "failed",
            "p50_us",
            "p99_us",
            "max_us",
            "lane_hw"
        );
        for class in QosClass::ALL {
            let c = self.class(class);
            let _ = writeln!(
                out,
                "{:<6} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
                class.name(),
                c.offered,
                c.solved,
                c.rejected_full + c.rejected_shutdown,
                c.expired_at_enqueue + c.expired_in_queue + c.expired_after_solve,
                c.failed,
                c.p50_us(),
                c.p99_us(),
                c.max_us(),
                self.snapshot.lane_high_water(class),
            );
        }
        let _ = writeln!(
            out,
            "total  {:>9} requests in {:.3}s ({:.0} req/s)",
            self.offered(),
            self.elapsed.as_secs_f64(),
            self.achieved_rps(),
        );
        out
    }

    /// Cross-checks the harness's books against the service's.
    ///
    /// With `policy` provided, additionally requires that any sustained
    /// `QueueFull` shedding coincides with the lane having reached its
    /// configured capacity — the accounting that pins the lane-full
    /// bookkeeping under overload.
    ///
    /// # Errors
    /// The first discrepancy found, as a human-readable message.
    pub fn reconcile(&self, policy: Option<&QueuePolicy>) -> Result<(), String> {
        for class in QosClass::ALL {
            let c = self.class(class);
            let name = class.name();
            if c.accounted() != c.offered {
                return Err(format!(
                    "{name}: {} outcomes recorded for {} offered requests",
                    c.accounted(),
                    c.offered
                ));
            }
            let s = self.snapshot.class(class);
            let pairs = [
                ("solved", c.solved, s.solved),
                (
                    "rejected",
                    c.rejected_full + c.rejected_shutdown,
                    s.rejected,
                ),
                (
                    "expired",
                    c.expired_at_enqueue + c.expired_in_queue + c.expired_after_solve,
                    s.expired,
                ),
                ("failed", c.failed, s.failed),
            ];
            for (what, harness, service) in pairs {
                if harness != service {
                    return Err(format!(
                        "{name}: harness counted {harness} {what}, service counted {service}"
                    ));
                }
            }
            // Everything the service admitted must terminate past the
            // admission gate; at-enqueue expiries and rejections never
            // entered the lane.
            let past_admission = c.solved + c.failed + c.expired_in_queue + c.expired_after_solve;
            if s.admitted != past_admission {
                return Err(format!(
                    "{name}: service admitted {} but {} outcomes passed admission",
                    s.admitted, past_admission
                ));
            }
            if let Some(policy) = policy {
                let capacity = policy.lane(class).capacity;
                let high_water = self.snapshot.lane_high_water(class);
                if c.rejected_full > 0 && high_water != capacity {
                    return Err(format!(
                        "{name}: {} QueueFull rejections but lane high water {high_water} \
                         never reached capacity {capacity}",
                        c.rejected_full
                    ));
                }
                if high_water > capacity {
                    return Err(format!(
                        "{name}: lane high water {high_water} exceeds capacity {capacity}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcr_serve::{DeadlineMissed, ScenarioSpec, Solved};

    fn solved_outcome() -> Outcome {
        let problem = ScenarioSpec {
            users: 3,
            resource_blocks: 6,
            seed: 1,
        }
        .to_problem(QosClass::Embb)
        .expect("valid spec");
        Outcome::Solved(Solved {
            solution: rcr_qos::rra::solve_greedy(&problem).expect("solvable"),
            batch_size: 1,
        })
    }

    fn expired(phase: ExpiryPhase) -> Outcome {
        Outcome::Expired(DeadlineMissed {
            phase,
            late_by: Duration::from_micros(5),
        })
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let mut c = ClassReport::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            c.record(&solved_outcome(), Duration::from_micros(us));
        }
        c.seal();
        assert_eq!(c.p50_us(), 50);
        assert_eq!(c.latency_quantile_us(0.90), 90);
        assert_eq!(c.p99_us(), 100);
        assert_eq!(c.max_us(), 100);
        assert_eq!(c.latency_quantile_us(0.0), 10, "q=0 clamps to min");
    }

    #[test]
    fn shed_fraction_counts_rejections_and_expiries() {
        let mut c = ClassReport::default();
        c.record(&solved_outcome(), Duration::from_micros(1));
        c.record(
            &Outcome::Rejected(RejectReason::QueueFull {
                depth: 4,
                capacity: 4,
            }),
            Duration::ZERO,
        );
        c.record(&expired(ExpiryPhase::InQueue), Duration::ZERO);
        c.record(&expired(ExpiryPhase::AtEnqueue), Duration::ZERO);
        c.seal();
        assert_eq!(c.offered, 4);
        assert_eq!(c.accounted(), 4);
        assert!((c.shed_fraction() - 0.75).abs() < 1e-12);
    }
}
