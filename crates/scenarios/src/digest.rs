//! A 128-bit running digest for trace fingerprinting.
//!
//! Same construction as the solution-reuse cache key in `rcr-serve`: two
//! independent SplitMix64 streams, the second rotated between folds so
//! the pair never degenerates into one stream. 128 bits because a trace
//! digest is the *replay contract* — a manifest claims "this spec + seed
//! produced exactly these requests", and a collision would let a silently
//! different trace masquerade as a faithful replay.

/// SplitMix64 finalizer — the same mixer `rcr_runtime::seed_stream` uses.
#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Two independent 64-bit streams folded into one 128-bit value.
#[derive(Debug, Clone)]
pub struct Digest128 {
    a: u64,
    b: u64,
}

impl Digest128 {
    /// A fresh digest domain-separated by `seed`.
    pub fn new(seed: u64) -> Digest128 {
        Digest128 {
            a: splitmix64(seed),
            b: splitmix64(seed ^ 0x5851_F42D_4C95_7F2D),
        }
    }

    /// Folds one word into both streams.
    pub fn u64(&mut self, v: u64) {
        self.a = splitmix64(self.a ^ v);
        self.b = splitmix64(self.b.rotate_left(17) ^ v);
    }

    /// Folds a float by raw bit pattern (`-0.0 != 0.0` on purpose:
    /// distinct bits are distinct trace content).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Folds a string as its bytes (length-prefixed so `"ab","c"` and
    /// `"a","bc"` cannot alias).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.u64(u64::from_le_bytes(word));
        }
    }

    /// The 128-bit digest value.
    pub fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }

    /// The digest as 32 lowercase hex digits — the form written into
    /// run manifests.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_content_sensitive() {
        let mut a = Digest128::new(1);
        a.u64(10);
        a.u64(20);
        let mut b = Digest128::new(1);
        b.u64(20);
        b.u64(10);
        assert_ne!(a.finish(), b.finish(), "order must matter");
        let mut c = Digest128::new(2);
        c.u64(10);
        c.u64(20);
        assert_ne!(a.finish(), c.finish(), "seed must matter");
    }

    #[test]
    fn string_folding_is_length_prefixed() {
        let fold = |parts: &[&str]| {
            let mut d = Digest128::new(0);
            for p in parts {
                d.str(p);
            }
            d.finish()
        };
        assert_ne!(fold(&["ab", "c"]), fold(&["a", "bc"]));
        assert_eq!(fold(&["abc"]), fold(&["abc"]));
    }

    #[test]
    fn hex_is_stable_32_digits() {
        let mut d = Digest128::new(7);
        d.u64(42);
        let h = d.hex();
        assert_eq!(h.len(), 32);
        assert_eq!(h, d.hex(), "hex is a pure read");
        assert_eq!(u128::from_str_radix(&h, 16).ok(), Some(d.finish()));
    }
}
