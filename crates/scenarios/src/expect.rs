//! Scenario expectations: the QoS *shape* a run must exhibit.
//!
//! Raw latency numbers are machine-dependent; the paper's claims are
//! about shapes — URLLC latency stays flat while mMTC sheds under
//! overload, EDF saves deadlines FIFO burns. Expectations encode those
//! shapes as relative assertions between runs (or simulated outcomes),
//! so the integration tests are meaningful on any machine.

use crate::report::ScenarioReport;
use crate::sim::SimOutcome;
use rcr_qos::QosClass;

/// The isolation shape under overload: driving the system far past
/// capacity must shed low-priority load instead of degrading URLLC.
#[derive(Debug, Clone, Copy)]
pub struct OverloadExpectation {
    /// URLLC p99 under overload may grow at most this factor over the
    /// baseline p99.
    pub max_urllc_p99_ratio: f64,
    /// …or up to this absolute value, whichever is larger (guards the
    /// ratio against a near-zero baseline).
    pub urllc_p99_floor_us: u64,
    /// mMTC must shed at least this fraction of its offered load under
    /// overload — the pressure has to go *somewhere*, and it must be
    /// the lowest class that takes it.
    pub min_mmtc_shed: f64,
    /// URLLC must still solve at least this fraction of its offered
    /// load under overload.
    pub min_urllc_solved: f64,
}

impl Default for OverloadExpectation {
    fn default() -> OverloadExpectation {
        OverloadExpectation {
            max_urllc_p99_ratio: 10.0,
            urllc_p99_floor_us: 2_000,
            min_mmtc_shed: 0.25,
            min_urllc_solved: 0.95,
        }
    }
}

/// Whether `over_p99_us` counts as "flat" relative to `base_p99_us`
/// under a growth-factor cap with an absolute floor.
fn flat_enough(base_p99_us: u64, over_p99_us: u64, ratio: f64, floor_us: u64) -> bool {
    let allowance = (base_p99_us as f64 * ratio).max(floor_us as f64);
    (over_p99_us as f64) <= allowance
}

impl OverloadExpectation {
    /// Checks the overload run against the baseline run.
    ///
    /// # Errors
    /// The first violated shape assertion, with the numbers.
    pub fn check(
        &self,
        baseline: &ScenarioReport,
        overload: &ScenarioReport,
    ) -> Result<(), String> {
        let base_urllc = baseline.class(QosClass::Urllc);
        let over_urllc = overload.class(QosClass::Urllc);
        if base_urllc.solved == 0 {
            return Err("baseline run solved no URLLC requests — nothing to compare".into());
        }
        if !flat_enough(
            base_urllc.p99_us(),
            over_urllc.p99_us(),
            self.max_urllc_p99_ratio,
            self.urllc_p99_floor_us,
        ) {
            return Err(format!(
                "URLLC p99 not flat under overload: baseline {} µs, overload {} µs \
                 (allowed {}× or {} µs)",
                base_urllc.p99_us(),
                over_urllc.p99_us(),
                self.max_urllc_p99_ratio,
                self.urllc_p99_floor_us
            ));
        }
        if over_urllc.offered > 0 {
            let solved_frac = over_urllc.solved as f64 / over_urllc.offered as f64;
            if solved_frac < self.min_urllc_solved {
                return Err(format!(
                    "URLLC solved only {:.1}% under overload (want ≥ {:.1}%)",
                    100.0 * solved_frac,
                    100.0 * self.min_urllc_solved
                ));
            }
        }
        let over_mmtc = overload.class(QosClass::Mmtc);
        if over_mmtc.shed_fraction() < self.min_mmtc_shed {
            return Err(format!(
                "mMTC shed only {:.1}% under overload (want ≥ {:.1}%): overload must \
                 land on the lowest class",
                100.0 * over_mmtc.shed_fraction(),
                100.0 * self.min_mmtc_shed
            ));
        }
        Ok(())
    }
}

/// The scheduling shape: at high utilization, EDF must meet visibly more
/// deadlines than FIFO on the same arrival sequence.
#[derive(Debug, Clone, Copy)]
pub struct DisciplineExpectation {
    /// Minimum met-deadline-fraction advantage EDF must show over FIFO.
    pub min_met_gain: f64,
}

impl Default for DisciplineExpectation {
    fn default() -> DisciplineExpectation {
        DisciplineExpectation { min_met_gain: 0.02 }
    }
}

impl DisciplineExpectation {
    /// Checks simulated EDF and FIFO outcomes of the same item sequence.
    ///
    /// # Errors
    /// A message with both outcomes when EDF's advantage is below the
    /// configured gain.
    pub fn check(&self, edf: &SimOutcome, fifo: &SimOutcome) -> Result<(), String> {
        if edf.total() != fifo.total() {
            return Err(format!(
                "outcomes cover different arrival counts: {} vs {}",
                edf.total(),
                fifo.total()
            ));
        }
        let gain = edf.met_fraction() - fifo.met_fraction();
        if gain < self.min_met_gain {
            return Err(format!(
                "EDF met {:.1}% vs FIFO {:.1}% — gain {:.1}% below the required {:.1}%",
                100.0 * edf.met_fraction(),
                100.0 * fifo.met_fraction(),
                100.0 * gain,
                100.0 * self.min_met_gain
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatness_uses_ratio_with_an_absolute_floor() {
        assert!(flat_enough(100, 900, 10.0, 2_000), "within the ratio");
        assert!(
            flat_enough(10, 1_900, 10.0, 2_000),
            "floor rescues tiny baselines"
        );
        assert!(!flat_enough(100, 2_500, 10.0, 2_000), "past both bounds");
        assert!(
            flat_enough(1_000, 9_000, 10.0, 2_000),
            "ratio dominates large baselines"
        );
        assert!(!flat_enough(1_000, 11_000, 10.0, 2_000));
    }

    #[test]
    fn discipline_check_compares_met_fractions() {
        let edf = SimOutcome {
            met: 90,
            late: 10,
            expired: 0,
            rejected: 0,
        };
        let fifo = SimOutcome {
            met: 60,
            late: 40,
            expired: 0,
            rejected: 0,
        };
        let expectation = DisciplineExpectation::default();
        assert!(expectation.check(&edf, &fifo).is_ok());
        assert!(
            expectation.check(&fifo, &edf).is_err(),
            "reversed gain fails"
        );
        let mismatched = SimOutcome {
            met: 60,
            late: 0,
            expired: 0,
            rejected: 0,
        };
        assert!(
            expectation.check(&edf, &mismatched).is_err(),
            "count mismatch fails"
        );
    }
}
