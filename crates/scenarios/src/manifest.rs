//! Declarative scenario manifests: the JSON spec layer.
//!
//! A manifest describes a workload *family* — cell topology, user
//! population, QoS-class mix, channel fading model, arrival process —
//! and, together with its `seed`, pins one exact trace of
//! [`rcr_serve::SolveRequest`]s. The JSON codec is the serve crate's
//! hand-rolled one (`rcr_serve::json`), so the build stays hermetic and
//! floats round-trip bit-identically.
//!
//! Encoding is canonical: [`ScenarioManifest::encode`] emits keys in one
//! fixed order, so `parse(encode(m)) == m` *and* `encode(parse(s))` is a
//! normal form suitable for digesting and committing to the repo.

use crate::digest::Digest128;
use rcr_qos::QosClass;
use rcr_serve::json::{self, JsonObject, JsonValue};
use rcr_serve::SolverKind;

/// QoS-class mix fractions. Need not sum to 1 — they are weights, and
/// validation only requires them non-negative with a positive sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// URLLC weight.
    pub urllc: f64,
    /// eMBB weight.
    pub embb: f64,
    /// mMTC weight.
    pub mmtc: f64,
}

impl ClassMix {
    /// The weight of `class`.
    pub fn weight(&self, class: QosClass) -> f64 {
        match class {
            QosClass::Urllc => self.urllc,
            QosClass::Embb => self.embb,
            QosClass::Mmtc => self.mmtc,
        }
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a class by cumulative weight.
    pub fn pick(&self, u: f64) -> QosClass {
        let total = self.urllc + self.embb + self.mmtc;
        let x = u * total;
        if x < self.urllc {
            QosClass::Urllc
        } else if x < self.urllc + self.embb {
            QosClass::Embb
        } else {
            QosClass::Mmtc
        }
    }
}

/// How a user's channel realization evolves over virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingModel {
    /// Block fading: the channel is redrawn independently every
    /// `coherence_us` of virtual time (block Rayleigh — the realization
    /// inside `rcr_qos::channel` is Rayleigh-faded).
    BlockRayleigh {
        /// Coherence-block length in virtual microseconds.
        coherence_us: u64,
    },
    /// Correlated drift: each of a user's successive requests keeps the
    /// previous channel realization with probability `1 - redraw_prob`,
    /// drawing the redraw decision from the user's own seed stream, so
    /// consecutive requests are correlated and the whole path is still a
    /// pure function of (manifest, seed).
    CorrelatedDrift {
        /// Per-request probability of redrawing the channel.
        redraw_prob: f64,
    },
}

/// The arrival process generating request times on the virtual
/// microsecond timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Mean arrival rate (requests per virtual second).
        rate_per_sec: f64,
    },
    /// Two-state Markov-modulated Poisson process: exponential sojourns
    /// in a slow and a fast phase, Poisson arrivals at the phase's rate —
    /// the classic bursty-traffic model.
    Mmpp {
        /// Arrival rate in the slow phase (requests per virtual second).
        slow_rate_per_sec: f64,
        /// Arrival rate in the fast (burst) phase.
        fast_rate_per_sec: f64,
        /// Mean slow-phase sojourn (virtual µs).
        mean_slow_us: f64,
        /// Mean fast-phase sojourn (virtual µs).
        mean_fast_us: f64,
    },
    /// Diurnal wave: a non-homogeneous Poisson process whose rate swings
    /// sinusoidally between `base_rate_per_sec` and `peak_rate_per_sec`
    /// with period `period_us`, sampled by thinning.
    Diurnal {
        /// Trough arrival rate (requests per virtual second).
        base_rate_per_sec: f64,
        /// Crest arrival rate.
        peak_rate_per_sec: f64,
        /// Wave period (virtual µs).
        period_us: u64,
    },
}

/// A complete declarative scenario spec. See the module docs; every
/// field participates in the canonical encoding and the trace digest.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioManifest {
    /// Human-readable scenario name (also the default run-artifact stem).
    pub name: String,
    /// Base seed; all per-user and per-arrival streams derive from it.
    pub seed: u64,
    /// Trace length in requests.
    pub requests: u64,
    /// Cells in the topology; a user's home cell is `user % cells` and
    /// decorrelates that user's channel stream from same-index users of
    /// other cells.
    pub cells: u64,
    /// User population size; each arrival is attributed to one user drawn
    /// uniformly from it.
    pub population: u64,
    /// Users per solve request (the per-cell problem size handed to the
    /// solver).
    pub users_per_problem: usize,
    /// Resource blocks per solve request.
    pub resource_blocks: usize,
    /// QoS-class mix over the population.
    pub class_mix: ClassMix,
    /// Channel fading model.
    pub fading: FadingModel,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Per-class request deadline in µs, indexed by
    /// [`QosClass::priority_rank`].
    pub deadlines_us: [u64; 3],
    /// Solver every request asks for.
    pub solver: SolverKind,
}

impl ScenarioManifest {
    /// Checks every invariant the generator relies on.
    ///
    /// # Errors
    /// A human-readable message naming the first violated field.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("name must be non-empty".into());
        }
        if self.requests == 0 {
            return Err("requests must be >= 1".into());
        }
        if self.cells == 0 {
            return Err("cells must be >= 1".into());
        }
        if self.population == 0 {
            return Err("population must be >= 1".into());
        }
        if self.users_per_problem == 0 {
            return Err("users_per_problem must be >= 1".into());
        }
        if self.resource_blocks == 0 {
            return Err("resource_blocks must be >= 1".into());
        }
        let ClassMix { urllc, embb, mmtc } = self.class_mix;
        // Negated-conjunction form so NaN anywhere in the mix fails too.
        if !(urllc >= 0.0 && embb >= 0.0 && mmtc >= 0.0 && urllc + embb + mmtc > 0.0) {
            return Err(format!(
                "class_mix must be non-negative with a positive sum, got {:?}",
                self.class_mix
            ));
        }
        match self.fading {
            FadingModel::BlockRayleigh { coherence_us } => {
                if coherence_us == 0 {
                    return Err("fading.coherence_us must be >= 1".into());
                }
            }
            FadingModel::CorrelatedDrift { redraw_prob } => {
                if !(0.0..=1.0).contains(&redraw_prob) {
                    return Err(format!(
                        "fading.redraw_prob must be in [0, 1], got {redraw_prob}"
                    ));
                }
            }
        }
        match self.arrivals {
            ArrivalProcess::Poisson { rate_per_sec } => {
                if !(rate_per_sec > 0.0) || !rate_per_sec.is_finite() {
                    return Err(format!(
                        "arrivals.rate_per_sec must be finite and positive, got {rate_per_sec}"
                    ));
                }
            }
            ArrivalProcess::Mmpp {
                slow_rate_per_sec,
                fast_rate_per_sec,
                mean_slow_us,
                mean_fast_us,
            } => {
                for (name, v) in [
                    ("slow_rate_per_sec", slow_rate_per_sec),
                    ("fast_rate_per_sec", fast_rate_per_sec),
                    ("mean_slow_us", mean_slow_us),
                    ("mean_fast_us", mean_fast_us),
                ] {
                    if !(v > 0.0) || !v.is_finite() {
                        return Err(format!(
                            "arrivals.{name} must be finite and positive, got {v}"
                        ));
                    }
                }
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                peak_rate_per_sec,
                period_us,
            } => {
                if !(base_rate_per_sec > 0.0) || !base_rate_per_sec.is_finite() {
                    return Err(format!(
                        "arrivals.base_rate_per_sec must be finite and positive, got {base_rate_per_sec}"
                    ));
                }
                if !(peak_rate_per_sec >= base_rate_per_sec) || !peak_rate_per_sec.is_finite() {
                    return Err(format!(
                        "arrivals.peak_rate_per_sec must be >= base_rate_per_sec, got {peak_rate_per_sec}"
                    ));
                }
                if period_us == 0 {
                    return Err("arrivals.period_us must be >= 1".into());
                }
            }
        }
        for (class, &d) in QosClass::ALL.iter().zip(&self.deadlines_us) {
            if d == 0 {
                return Err(format!("deadlines_us.{} must be >= 1", class.name()));
            }
        }
        Ok(())
    }

    /// The deadline of `class`, in virtual µs.
    pub fn deadline_us(&self, class: QosClass) -> u64 {
        self.deadlines_us[class.priority_rank()]
    }

    /// Canonical JSON encoding (fixed key order, one line).
    pub fn encode(&self) -> String {
        let fading = match self.fading {
            FadingModel::BlockRayleigh { coherence_us } => {
                format!("{{\"model\":\"block_rayleigh\",\"coherence_us\":{coherence_us}}}")
            }
            FadingModel::CorrelatedDrift { redraw_prob } => format!(
                "{{\"model\":\"correlated_drift\",\"redraw_prob\":{}}}",
                json::encode_f64(redraw_prob)
            ),
        };
        let arrivals = match self.arrivals {
            ArrivalProcess::Poisson { rate_per_sec } => format!(
                "{{\"process\":\"poisson\",\"rate_per_sec\":{}}}",
                json::encode_f64(rate_per_sec)
            ),
            ArrivalProcess::Mmpp {
                slow_rate_per_sec,
                fast_rate_per_sec,
                mean_slow_us,
                mean_fast_us,
            } => format!(
                "{{\"process\":\"mmpp\",\"slow_rate_per_sec\":{},\"fast_rate_per_sec\":{},\"mean_slow_us\":{},\"mean_fast_us\":{}}}",
                json::encode_f64(slow_rate_per_sec),
                json::encode_f64(fast_rate_per_sec),
                json::encode_f64(mean_slow_us),
                json::encode_f64(mean_fast_us),
            ),
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                peak_rate_per_sec,
                period_us,
            } => format!(
                "{{\"process\":\"diurnal\",\"base_rate_per_sec\":{},\"peak_rate_per_sec\":{},\"period_us\":{period_us}}}",
                json::encode_f64(base_rate_per_sec),
                json::encode_f64(peak_rate_per_sec),
            ),
        };
        format!(
            "{{\"name\":{},\"seed\":{},\"requests\":{},\"cells\":{},\"population\":{},\
             \"users_per_problem\":{},\"resource_blocks\":{},\
             \"class_mix\":{{\"urllc\":{},\"embb\":{},\"mmtc\":{}}},\
             \"fading\":{},\"arrivals\":{},\
             \"deadlines_us\":{{\"urllc\":{},\"embb\":{},\"mmtc\":{}}},\
             \"solver\":{}}}",
            json::encode_str(&self.name),
            self.seed,
            self.requests,
            self.cells,
            self.population,
            self.users_per_problem,
            self.resource_blocks,
            json::encode_f64(self.class_mix.urllc),
            json::encode_f64(self.class_mix.embb),
            json::encode_f64(self.class_mix.mmtc),
            fading,
            arrivals,
            self.deadlines_us[0],
            self.deadlines_us[1],
            self.deadlines_us[2],
            json::encode_str(self.solver.name()),
        )
    }

    /// Parses a manifest (accepting any key order and ignoring unknown
    /// keys) and validates it.
    ///
    /// # Errors
    /// A human-readable message naming the malformed or invalid field.
    pub fn parse(text: &str) -> Result<ScenarioManifest, String> {
        ScenarioManifest::parse_value(&json::parse(text)?)
    }

    /// [`ScenarioManifest::parse`] over an already-parsed JSON value
    /// (used by [`RunManifest::parse`] for the nested object).
    ///
    /// # Errors
    /// Same as [`ScenarioManifest::parse`].
    pub fn parse_value(value: &JsonValue) -> Result<ScenarioManifest, String> {
        let obj = value.as_object().ok_or("manifest is not a JSON object")?;
        let manifest = ScenarioManifest {
            name: obj
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("missing \"name\"")?
                .to_string(),
            seed: obj
                .get_u64("seed")
                .ok_or("missing or non-integer \"seed\"")?,
            requests: obj
                .get_u64("requests")
                .ok_or("missing or non-integer \"requests\"")?,
            cells: obj.get_u64("cells").unwrap_or(1),
            population: obj
                .get_u64("population")
                .ok_or("missing or non-integer \"population\"")?,
            users_per_problem: obj.get_u64("users_per_problem").unwrap_or(3) as usize,
            resource_blocks: obj.get_u64("resource_blocks").unwrap_or(6) as usize,
            class_mix: parse_class_mix(obj)?,
            fading: parse_fading(obj)?,
            arrivals: parse_arrivals(obj)?,
            deadlines_us: parse_deadlines(obj)?,
            solver: match obj.get("solver").and_then(JsonValue::as_str) {
                None => SolverKind::Greedy,
                Some(name) => {
                    SolverKind::from_name(name).ok_or_else(|| format!("unknown solver {name:?}"))?
                }
            },
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Folds every spec field into `d` — the manifest's contribution to a
    /// run digest (so two different specs can never share one).
    pub fn fold_into(&self, d: &mut Digest128) {
        d.str(&self.name);
        d.u64(self.seed);
        d.u64(self.requests);
        d.u64(self.cells);
        d.u64(self.population);
        d.u64(self.users_per_problem as u64);
        d.u64(self.resource_blocks as u64);
        d.f64(self.class_mix.urllc);
        d.f64(self.class_mix.embb);
        d.f64(self.class_mix.mmtc);
        match self.fading {
            FadingModel::BlockRayleigh { coherence_us } => {
                d.u64(1);
                d.u64(coherence_us);
            }
            FadingModel::CorrelatedDrift { redraw_prob } => {
                d.u64(2);
                d.f64(redraw_prob);
            }
        }
        match self.arrivals {
            ArrivalProcess::Poisson { rate_per_sec } => {
                d.u64(1);
                d.f64(rate_per_sec);
            }
            ArrivalProcess::Mmpp {
                slow_rate_per_sec,
                fast_rate_per_sec,
                mean_slow_us,
                mean_fast_us,
            } => {
                d.u64(2);
                d.f64(slow_rate_per_sec);
                d.f64(fast_rate_per_sec);
                d.f64(mean_slow_us);
                d.f64(mean_fast_us);
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                peak_rate_per_sec,
                period_us,
            } => {
                d.u64(3);
                d.f64(base_rate_per_sec);
                d.f64(peak_rate_per_sec);
                d.u64(period_us);
            }
        }
        for &dl in &self.deadlines_us {
            d.u64(dl);
        }
        d.str(self.solver.name());
    }
}

fn parse_class_mix(obj: &JsonObject) -> Result<ClassMix, String> {
    let mix = obj
        .get("class_mix")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"class_mix\" object")?;
    let field = |key: &str| {
        mix.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("class_mix missing numeric {key:?}"))
    };
    Ok(ClassMix {
        urllc: field("urllc")?,
        embb: field("embb")?,
        mmtc: field("mmtc")?,
    })
}

fn parse_fading(obj: &JsonObject) -> Result<FadingModel, String> {
    let fading = obj
        .get("fading")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"fading\" object")?;
    match fading.get("model").and_then(JsonValue::as_str) {
        Some("block_rayleigh") => Ok(FadingModel::BlockRayleigh {
            coherence_us: fading
                .get_u64("coherence_us")
                .ok_or("block_rayleigh missing \"coherence_us\"")?,
        }),
        Some("correlated_drift") => Ok(FadingModel::CorrelatedDrift {
            redraw_prob: fading
                .get("redraw_prob")
                .and_then(JsonValue::as_f64)
                .ok_or("correlated_drift missing \"redraw_prob\"")?,
        }),
        other => Err(format!("unknown fading model {other:?}")),
    }
}

fn parse_arrivals(obj: &JsonObject) -> Result<ArrivalProcess, String> {
    let arrivals = obj
        .get("arrivals")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"arrivals\" object")?;
    let num = |key: &str| {
        arrivals
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("arrivals missing numeric {key:?}"))
    };
    match arrivals.get("process").and_then(JsonValue::as_str) {
        Some("poisson") => Ok(ArrivalProcess::Poisson {
            rate_per_sec: num("rate_per_sec")?,
        }),
        Some("mmpp") => Ok(ArrivalProcess::Mmpp {
            slow_rate_per_sec: num("slow_rate_per_sec")?,
            fast_rate_per_sec: num("fast_rate_per_sec")?,
            mean_slow_us: num("mean_slow_us")?,
            mean_fast_us: num("mean_fast_us")?,
        }),
        Some("diurnal") => Ok(ArrivalProcess::Diurnal {
            base_rate_per_sec: num("base_rate_per_sec")?,
            peak_rate_per_sec: num("peak_rate_per_sec")?,
            period_us: arrivals
                .get_u64("period_us")
                .ok_or("diurnal missing \"period_us\"")?,
        }),
        other => Err(format!("unknown arrival process {other:?}")),
    }
}

fn parse_deadlines(obj: &JsonObject) -> Result<[u64; 3], String> {
    let deadlines = obj
        .get("deadlines_us")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"deadlines_us\" object")?;
    let field = |key: &str| {
        deadlines
            .get_u64(key)
            .ok_or_else(|| format!("deadlines_us missing integer {key:?}"))
    };
    // Key order here is URLLC, eMBB, mMTC — the priority_rank order.
    Ok([field("urllc")?, field("embb")?, field("mmtc")?])
}

/// A run manifest: the spec plus the digest of the trace it generated —
/// written alongside a run so the trace is exactly replayable and the
/// replay is *checkable*.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The generating spec.
    pub manifest: ScenarioManifest,
    /// Hex digest of the generated trace (see
    /// [`crate::trace::trace_digest`]).
    pub trace_digest: String,
}

impl RunManifest {
    /// Canonical JSON encoding.
    pub fn encode(&self) -> String {
        format!(
            "{{\"manifest\":{},\"trace_digest\":{}}}",
            self.manifest.encode(),
            json::encode_str(&self.trace_digest)
        )
    }

    /// Parses a run manifest.
    ///
    /// # Errors
    /// A human-readable message naming the malformed field.
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("run manifest is not an object")?;
        let manifest =
            ScenarioManifest::parse_value(obj.get("manifest").ok_or("missing \"manifest\"")?)?;
        let trace_digest = obj
            .get("trace_digest")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"trace_digest\"")?
            .to_string();
        if trace_digest.len() != 32 || !trace_digest.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("malformed trace_digest {trace_digest:?}"));
        }
        Ok(RunManifest {
            manifest,
            trace_digest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn example() -> ScenarioManifest {
        ScenarioManifest {
            name: "unit".into(),
            seed: 42,
            requests: 1000,
            cells: 3,
            population: 5000,
            users_per_problem: 3,
            resource_blocks: 6,
            class_mix: ClassMix {
                urllc: 0.2,
                embb: 0.3,
                mmtc: 0.5,
            },
            fading: FadingModel::BlockRayleigh {
                coherence_us: 10_000,
            },
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 10_000.0,
            },
            deadlines_us: [5_000, 20_000, 100_000],
            solver: SolverKind::Greedy,
        }
    }

    #[test]
    fn encode_parse_round_trips_every_variant() {
        let mut variants = vec![example()];
        let mut mmpp = example();
        mmpp.fading = FadingModel::CorrelatedDrift { redraw_prob: 0.25 };
        mmpp.arrivals = ArrivalProcess::Mmpp {
            slow_rate_per_sec: 1_000.0,
            fast_rate_per_sec: 50_000.0,
            mean_slow_us: 200_000.0,
            mean_fast_us: 20_000.0,
        };
        variants.push(mmpp);
        let mut diurnal = example();
        diurnal.arrivals = ArrivalProcess::Diurnal {
            base_rate_per_sec: 500.0,
            peak_rate_per_sec: 20_000.0,
            period_us: 60_000_000,
        };
        variants.push(diurnal);
        for m in variants {
            let text = m.encode();
            let parsed = ScenarioManifest::parse(&text).unwrap();
            assert_eq!(parsed, m);
            // Canonical: encoding is a normal form.
            assert_eq!(parsed.encode(), text);
        }
    }

    #[test]
    fn parse_accepts_any_key_order_and_defaults() {
        let text = r#"{
            "population": 100, "seed": 1, "requests": 10, "name": "x",
            "arrivals": {"process": "poisson", "rate_per_sec": 100.0},
            "fading": {"model": "block_rayleigh", "coherence_us": 1000},
            "class_mix": {"mmtc": 1.0, "urllc": 0.0, "embb": 0.0},
            "deadlines_us": {"urllc": 1, "embb": 2, "mmtc": 3}
        }"#;
        let m = ScenarioManifest::parse(text).unwrap();
        assert_eq!(m.cells, 1, "cells defaults to 1");
        assert_eq!(m.users_per_problem, 3);
        assert_eq!(m.resource_blocks, 6);
        assert_eq!(m.solver, SolverKind::Greedy);
        assert_eq!(m.deadlines_us, [1, 2, 3]);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut m = example();
        m.requests = 0;
        assert!(m.validate().is_err());
        let mut m = example();
        m.class_mix = ClassMix {
            urllc: 0.0,
            embb: 0.0,
            mmtc: 0.0,
        };
        assert!(m.validate().is_err());
        let mut m = example();
        m.fading = FadingModel::CorrelatedDrift { redraw_prob: 1.5 };
        assert!(m.validate().is_err());
        let mut m = example();
        m.arrivals = ArrivalProcess::Poisson { rate_per_sec: -1.0 };
        assert!(m.validate().is_err());
        let mut m = example();
        m.deadlines_us[1] = 0;
        assert!(m.validate().is_err());
        let mut m = example();
        m.arrivals = ArrivalProcess::Diurnal {
            base_rate_per_sec: 100.0,
            peak_rate_per_sec: 10.0, // peak < base
            period_us: 1000,
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn parse_reports_malformed_fields_by_name() {
        assert!(ScenarioManifest::parse("not json").is_err());
        let err = ScenarioManifest::parse(r#"{"name":"x"}"#).unwrap_err();
        assert!(err.contains("seed"), "{err}");
        let bad_fading = example().encode().replace("block_rayleigh", "nakagami");
        let err = ScenarioManifest::parse(&bad_fading).unwrap_err();
        assert!(err.contains("fading"), "{err}");
    }

    #[test]
    fn class_mix_pick_follows_cumulative_weights() {
        let mix = ClassMix {
            urllc: 1.0,
            embb: 1.0,
            mmtc: 2.0,
        };
        assert_eq!(mix.pick(0.0), QosClass::Urllc);
        assert_eq!(mix.pick(0.26), QosClass::Embb);
        assert_eq!(mix.pick(0.51), QosClass::Mmtc);
        assert_eq!(mix.pick(0.99), QosClass::Mmtc);
    }

    #[test]
    fn run_manifest_round_trips() {
        let run = RunManifest {
            manifest: example(),
            trace_digest: format!("{:032x}", 0xDEAD_BEEFu128),
        };
        let parsed = RunManifest::parse(&run.encode()).unwrap();
        assert_eq!(parsed, run);
        assert!(RunManifest::parse(r#"{"manifest":{},"trace_digest":"zz"}"#).is_err());
    }
}
