//! Layer-wise convex relaxation robustness verification for ReLU
//! networks — the paper's §II-B-2.
//!
//! "There are two aspects of relaxation: (1) convex relaxations
//! implemented at each layer of the MSY3I, and (2) the relaxation schema
//! verifier implemented to ascertain robustness … both layer-wise and
//! overall. These are the key elements of the RCR framework, which has a
//! counterpoised objective of the tightest possible relaxation."
//!
//! The crate provides the full verifier spectrum the paper describes:
//!
//! * [`net::AffineReluNet`] — the framework-agnostic network form the
//!   verifiers consume (extractable from trained [`rcr_nn`] MLPs).
//! * [`bounds`] — **interval bound propagation** (IBP), the loosest and
//!   cheapest layer-wise relaxation.
//! * [`crown`] — backward **linear relaxation** with the ReLU triangle
//!   envelope (CROWN-style), the tightened relaxation of Anderson et al.
//!   / Salman et al. that the paper cites.
//! * [`exact`] — a **complete** verifier: input-domain branch-and-bound
//!   with CROWN bounding and concrete falsification, the paper's
//!   "exact (complete)" arm; exponential worst case, exact answers.
//!
//! # Example
//!
//! ```
//! use rcr_linalg::Matrix;
//! use rcr_verify::net::AffineReluNet;
//! use rcr_verify::bounds::interval_bounds;
//!
//! # fn main() -> Result<(), rcr_verify::VerifyError> {
//! // y = ReLU(x) for a single neuron; input in [-1, 1] → output in [0, 1].
//! let net = AffineReluNet::new(vec![
//!     (Matrix::identity(1), vec![0.0]),
//!     (Matrix::identity(1), vec![0.0]),
//! ])?;
//! let b = interval_bounds(&net, &[(-1.0, 1.0)])?;
//! assert_eq!(b.output()[0], (0.0, 1.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod bounds;
pub mod crown;
pub mod exact;
pub mod net;

mod error;

pub use error::VerifyError;
/// Re-export of the workspace scratch pool so callers of the
/// `*_scratch` verifier entry points need not depend on `rcr-kernels`
/// directly.
pub use rcr_kernels::Scratch;

use std::cell::RefCell;

thread_local! {
    /// Per-thread verifier scratch pool. Worker threads of the parallel
    /// entry points (and the branch-and-bound node loop) each warm their
    /// own pool once and then propagate bounds allocation-free.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's scratch pool. Callees must take the pool as
/// a parameter rather than re-entering `with_scratch` (the `RefCell` is
/// already mutably borrowed for the duration of `f`).
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}
