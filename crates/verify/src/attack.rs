//! Gradient-free adversarial attack — the *empirical* robustness probe
//! that complements the certification ladder.
//!
//! Verifiers bound the worst case from below; an attack bounds it from
//! above by exhibiting concrete bad inputs. The gap between "not
//! attacked" and "not verified" is exactly the region the paper's
//! §II-B-2 hybrid exact/relaxed strategy exists to close. The attack here
//! is a coordinate-descent / random-restart search over the ε-box —
//! derivative-free so it works on the verifier's [`AffineReluNet`] form
//! directly (piecewise-linear networks have no useful smooth gradient at
//! the kinks anyway at this scale).

use crate::net::{validate_box, AffineReluNet, Specification};
use crate::VerifyError;

/// Result of an attack run.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// The input achieving the lowest margin found.
    pub worst_input: Vec<f64>,
    /// The margin at that input (≤ 0 means a successful attack).
    pub worst_margin: f64,
    /// Margin evaluations spent.
    pub evaluations: usize,
}

impl AttackResult {
    /// True when a spec violation was found.
    pub fn succeeded(&self) -> bool {
        self.worst_margin <= 0.0
    }
}

/// Attacks `spec` over `input_box` with coordinate descent from multiple
/// deterministic starts (center, corners, midpoints of faces).
///
/// # Errors
/// * [`VerifyError::InvalidInput`] for a malformed box or zero budget.
pub fn coordinate_attack(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec: &Specification,
    sweeps: usize,
) -> Result<AttackResult, VerifyError> {
    validate_box(input_box)?;
    if sweeps == 0 {
        return Err(VerifyError::InvalidInput("sweeps must be >= 1".into()));
    }
    let dim = input_box.len();
    let mut evaluations = 0usize;
    let mut margin_of = |x: &[f64]| -> Result<f64, VerifyError> {
        evaluations += 1;
        Ok(spec.eval(&net.eval(x)?))
    };

    // Deterministic starts: center + up to 2^min(dim,8) corners.
    let mut starts: Vec<Vec<f64>> = Vec::new();
    starts.push(input_box.iter().map(|&(l, h)| 0.5 * (l + h)).collect());
    let corner_bits = dim.min(8);
    for mask in 0..(1usize << corner_bits) {
        starts.push(
            input_box
                .iter()
                .enumerate()
                .map(|(i, &(l, h))| {
                    if i < corner_bits && mask >> i & 1 == 1 {
                        h
                    } else {
                        l
                    }
                })
                .collect(),
        );
    }

    let mut best: Option<(f64, Vec<f64>)> = None;
    for start in starts {
        let mut x = start;
        let mut m = margin_of(&x)?;
        for sweep in 0..sweeps {
            // Step size shrinks geometrically per sweep.
            let scale = 0.5f64.powi(sweep as i32);
            let mut improved = false;
            for d in 0..dim {
                let (lo, hi) = input_box[d];
                let step = scale * (hi - lo);
                if step == 0.0 {
                    continue;
                }
                for cand in [x[d] - step, x[d] + step, lo, hi] {
                    let cand = cand.clamp(lo, hi);
                    if cand == x[d] {
                        continue;
                    }
                    let old = x[d];
                    x[d] = cand;
                    let mc = margin_of(&x)?;
                    if mc < m {
                        m = mc;
                        improved = true;
                    } else {
                        x[d] = old;
                    }
                }
            }
            if !improved && sweep > 0 {
                break;
            }
        }
        match &best {
            Some((bm, _)) if *bm <= m => {}
            _ => best = Some((m, x)),
        }
    }
    // The start set always contains the box center, so `best` is Some;
    // surface a typed error rather than a panic if that invariant breaks.
    let Some((worst_margin, worst_input)) = best else {
        return Err(VerifyError::InvalidInput(
            "attack produced no start points".into(),
        ));
    };
    Ok(AttackResult {
        worst_input,
        worst_margin,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcr_linalg::Matrix;

    fn abs_net() -> AffineReluNet {
        AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
                vec![0.0, 0.0],
            ),
            (Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![0.0]),
        ])
        .unwrap()
    }

    #[test]
    fn finds_the_violation_when_one_exists() {
        // |x| − 0.5 > 0 fails on (−0.5, 0.5); the attack must find it.
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: -0.5,
        };
        let r = coordinate_attack(&net, &[(-1.0, 1.0)], &spec, 12).unwrap();
        assert!(r.succeeded(), "margin {}", r.worst_margin);
        assert!(r.worst_input[0].abs() < 0.5 + 1e-9);
    }

    #[test]
    fn cannot_attack_a_true_property() {
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.1,
        };
        let r = coordinate_attack(&net, &[(-1.0, 1.0)], &spec, 12).unwrap();
        assert!(!r.succeeded());
        // And the attack margin upper-bounds the true minimum (0.1).
        assert!(r.worst_margin >= 0.1 - 1e-9);
    }

    #[test]
    fn attack_margin_at_least_exact_minimum() {
        // For any net: attack margin (an upper bound on the min) must be
        // ≥ the exact verifier's certified lower bound.
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.05,
        };
        let bx = [(-1.0, 1.0)];
        let attack = coordinate_attack(&net, &bx, &spec, 16).unwrap();
        let exact =
            crate::exact::verify_complete(&net, &bx, &spec, &crate::exact::BnbSettings::default())
                .unwrap();
        assert!(attack.worst_margin >= exact.lower_bound - 1e-9);
        // On |x| the attack actually reaches the true minimum at x = 0.
        assert!((attack.worst_margin - 0.05).abs() < 1e-9);
    }

    #[test]
    fn two_dimensional_attack() {
        // f(x,y) = |x| + |y| − 0.3: minimum −0.3 at the origin.
        let net = AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap(),
                vec![0.0; 4],
            ),
            (
                Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]).unwrap(),
                vec![-0.3],
            ),
        ])
        .unwrap();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.0,
        };
        let r = coordinate_attack(&net, &[(-1.0, 1.0), (-1.0, 1.0)], &spec, 16).unwrap();
        assert!(r.succeeded());
        assert!(
            (r.worst_margin + 0.3).abs() < 1e-6,
            "margin {}",
            r.worst_margin
        );
    }

    #[test]
    fn validation() {
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.0,
        };
        assert!(coordinate_attack(&net, &[], &spec, 4).is_err());
        assert!(coordinate_attack(&net, &[(-1.0, 1.0)], &spec, 0).is_err());
    }
}
