//! CROWN-style backward linear relaxation with the ReLU triangle
//! envelope — the paper's "tightened convex relaxation" verifier arm
//! (Anderson et al. 2020, Salman et al. 2019).
//!
//! A linear function of the network output is propagated backward; at
//! each unstable ReLU the coefficient sign selects the convex
//! under-estimator (a line `λz` through the origin) or the concave
//! over-estimator (the chord `u(z − l)/(u − l)`), exactly the
//! envelope pair of §II-B. The result is an affine minorant of the
//! specification over the input box, concretized by interval arithmetic.

use crate::bounds::{interval_bounds, LayerBounds};
use crate::net::{validate_box, AffineReluNet, Specification};
use crate::VerifyError;
use rcr_kernels::Scratch;

/// Result of a CROWN bound computation.
#[derive(Debug, Clone)]
pub struct CrownBound {
    /// Sound lower bound on `cᵀ f(x) + offset` over the box.
    pub lower: f64,
    /// The affine minorant's coefficients over the input (for diagnosis
    /// and for warm-starting branch-and-bound).
    pub input_coeffs: Vec<f64>,
    /// The affine minorant's constant term.
    pub constant: f64,
}

/// Computes a CROWN lower bound for `spec` over `input_box`, reusing
/// caller-provided interval bounds (so branch-and-bound can pass refined
/// per-node bounds).
///
/// # Errors
/// * [`VerifyError::InvalidInput`] on malformed box/spec.
/// * [`VerifyError::DimensionMismatch`] on incompatible dimensions.
pub fn crown_lower_with_bounds(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec: &Specification,
    bounds: &LayerBounds,
) -> Result<CrownBound, VerifyError> {
    let mut scratch = Scratch::new();
    crown_lower_with_bounds_scratch(net, input_box, spec, bounds, &mut scratch)
}

/// [`crown_lower_with_bounds`] propagating the backward state through
/// buffers checked out of `scratch`. The intermediate coefficient vectors
/// ping-pong through the pool; only the returned
/// [`CrownBound::input_coeffs`] vector permanently leaves it. For a fully
/// allocation-free bound (the branch-and-bound hot path), use
/// [`crown_lower_value_scratch`].
///
/// # Errors
/// Same as [`crown_lower_with_bounds`].
pub fn crown_lower_with_bounds_scratch(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec: &Specification,
    bounds: &LayerBounds,
    scratch: &mut Scratch,
) -> Result<CrownBound, VerifyError> {
    let (lower, constant, input_coeffs) =
        crown_backward(net, input_box, &spec.c, spec.offset, bounds, scratch)?;
    Ok(CrownBound {
        lower,
        input_coeffs,
        constant,
    })
}

/// The lower bound of [`crown_lower_with_bounds_scratch`] alone, with
/// every intermediate buffer returned to `scratch` — zero allocations once
/// the pool is warm. Branch-and-bound calls this once per node.
///
/// # Errors
/// Same as [`crown_lower_with_bounds`].
pub fn crown_lower_value_scratch(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec: &Specification,
    bounds: &LayerBounds,
    scratch: &mut Scratch,
) -> Result<f64, VerifyError> {
    let (lower, _, coeffs) = crown_backward(net, input_box, &spec.c, spec.offset, bounds, scratch)?;
    scratch.give_f64(coeffs);
    Ok(lower)
}

/// Slice-level backward pass shared by the public CROWN entry points:
/// returns `(lower, constant, input_coeffs)` with `input_coeffs` checked
/// out of `scratch` (the caller owns it and decides whether to recycle).
/// Accumulation orders are exactly those of the historical implementation:
/// the bias dot is a sequential `.sum()`-seeded fold and the `aᵀW` row
/// combination keeps the increasing-`r` order with the `ar == 0.0` skip.
fn crown_backward(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec_c: &[f64],
    spec_offset: f64,
    bounds: &LayerBounds,
    scratch: &mut Scratch,
) -> Result<(f64, f64, Vec<f64>), VerifyError> {
    validate_box(input_box)?;
    if spec_c.len() != net.output_dim() {
        return Err(VerifyError::DimensionMismatch(format!(
            "spec has {} coefficients, network emits {}",
            spec_c.len(),
            net.output_dim()
        )));
    }
    if input_box.len() != net.input_dim() {
        return Err(VerifyError::DimensionMismatch(format!(
            "box has {} dims, network expects {}",
            input_box.len(),
            net.input_dim()
        )));
    }

    let depth = net.depth();
    // Backward state: spec ≥ a·h + c where h is the post-activation of
    // layer `li` (initially the output itself).
    let mut a = scratch.take_f64(spec_c.len(), 0.0);
    a.copy_from_slice(spec_c);
    let mut c = spec_offset;

    for li in (0..depth).rev() {
        let (w, b) = &net.layers()[li];
        // Through the affine layer: h_post(li) relates to previous post as
        // z = W h_prev + b, and (except the last layer) h = ReLU(z).
        // `a` currently multiplies h(li)-post; first undo the ReLU (if
        // any), turning it into a function of z(li).
        if li + 1 < depth {
            // a·h with h = ReLU(z): relax each unstable coordinate.
            let pre = &bounds.pre_activation()[li];
            for (j, aj) in a.iter_mut().enumerate() {
                let (l, u) = pre[j];
                if u <= 0.0 {
                    *aj = 0.0; // neuron always off
                } else if l >= 0.0 {
                    // identity: keep aj
                } else if *aj >= 0.0 {
                    // lower envelope: h ≥ λ z, λ ∈ [0, 1]; adaptive pick.
                    let lambda = if u >= -l { 1.0 } else { 0.0 };
                    *aj *= lambda;
                } else {
                    // upper envelope: h ≤ u (z − l)/(u − l).
                    let slope = u / (u - l);
                    c += *aj * (-l * slope);
                    *aj *= slope;
                }
            }
        }
        // Now through the affine map z = W h_prev + b:
        // a·z + c = (aᵀW)·h_prev + a·b + c.
        c += rcr_kernels::dot(&a, b);
        let mut new_a = scratch.take_f64(w.cols(), 0.0);
        for (r, ar) in a.iter().enumerate() {
            if *ar == 0.0 {
                continue;
            }
            rcr_kernels::axpy(*ar, w.row(r), &mut new_a);
        }
        scratch.give_f64(std::mem::replace(&mut a, new_a));
    }

    // Concretize over the input box.
    let mut lower = c;
    for (ai, &(lo, hi)) in a.iter().zip(input_box) {
        lower += if *ai >= 0.0 { ai * lo } else { ai * hi };
    }
    Ok((lower, c, a))
}

/// Computes a CROWN lower bound, deriving interval bounds internally.
///
/// # Errors
/// Same as [`crown_lower_with_bounds`].
pub fn crown_lower(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec: &Specification,
) -> Result<CrownBound, VerifyError> {
    let bounds = interval_bounds(net, input_box)?;
    crown_lower_with_bounds(net, input_box, spec, &bounds)
}

/// Per-output CROWN bounds `(lo, hi)` via unit specifications (the upper
/// bound of output `j` is minus the lower bound of `−e_j`).
///
/// # Errors
/// Same as [`crown_lower`].
pub fn crown_output_bounds(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
) -> Result<Vec<(f64, f64)>, VerifyError> {
    crown_output_bounds_parallel(net, input_box, 1)
}

/// [`crown_output_bounds`] with the per-output-node backward passes fanned
/// out across `workers` threads (a count as resolved by
/// [`rcr_runtime::resolve_workers`]).
///
/// Each output's `±e_j` backward substitutions are independent and share
/// only the read-only pre-activation bounds, so results are bit-identical
/// to the serial sweep for every worker count.
///
/// # Errors
/// Same as [`crown_lower`].
pub fn crown_output_bounds_parallel(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    workers: usize,
) -> Result<Vec<(f64, f64)>, VerifyError> {
    let bounds = interval_bounds(net, input_box)?;
    let m = net.output_dim();
    let outputs: Vec<usize> = (0..m).collect();
    let per_output = rcr_runtime::parallel_map(&outputs, workers, |_, &j| {
        // Both ±e_j backward passes run through this worker thread's
        // scratch pool: after the first output, no allocations remain.
        crate::with_scratch(|scratch| {
            let mut c = scratch.take_f64(m, 0.0);
            c[j] = 1.0;
            let (lo, _, coeffs) = crown_backward(net, input_box, &c, 0.0, &bounds, scratch)?;
            scratch.give_f64(coeffs);
            for v in &mut c {
                *v = -*v;
            }
            let (neg_hi, _, coeffs) = crown_backward(net, input_box, &c, 0.0, &bounds, scratch)?;
            scratch.give_f64(coeffs);
            scratch.give_f64(c);
            Ok::<(f64, f64), VerifyError>((lo, -neg_hi))
        })
    });
    per_output.into_iter().collect()
}

/// Largest `ε` in `[0, max_eps]` (to resolution `tol`) at which the
/// *relaxed* verifier still certifies `spec` on the `ε`-ball around
/// `center` — the incomplete-verifier analogue of
/// [`crate::exact::certified_radius`]. Because the bound is conservative,
/// this radius is always ≤ the exact certified radius; the difference is
/// the paper's "convex relaxation barrier" in radius units.
///
/// # Errors
/// Propagates bound-computation errors; rejects non-positive `max_eps`
/// or `tol`.
pub fn relaxed_certified_radius(
    net: &AffineReluNet,
    center: &[f64],
    spec: &Specification,
    max_eps: f64,
    tol: f64,
) -> Result<f64, VerifyError> {
    if !(max_eps > 0.0) || !(tol > 0.0) {
        return Err(VerifyError::InvalidInput(
            "max_eps and tol must be positive".into(),
        ));
    }
    let ball =
        |eps: f64| -> Vec<(f64, f64)> { center.iter().map(|&c| (c - eps, c + eps)).collect() };
    let holds = |eps: f64| -> Result<bool, VerifyError> {
        Ok(crown_lower(net, &ball(eps), spec)?.lower > 0.0)
    };
    if spec.eval(&net.eval(center)?) <= 0.0 {
        return Ok(0.0);
    }
    if holds(max_eps)? {
        return Ok(max_eps);
    }
    let mut lo = 0.0;
    let mut hi = max_eps;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if holds(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcr_linalg::Matrix;

    fn abs_net() -> AffineReluNet {
        AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
                vec![0.0, 0.0],
            ),
            (Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![0.0]),
        ])
        .unwrap()
    }

    fn random_net(seed: u64) -> AffineReluNet {
        // Deterministic pseudo-random 2-4-4-1 network.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mk = |rows: usize, cols: usize, f: &mut dyn FnMut() -> f64| {
            Matrix::from_fn(rows, cols, |_, _| f())
        };
        AffineReluNet::new(vec![
            (mk(4, 2, &mut next), vec![0.1, -0.1, 0.2, 0.0]),
            (mk(4, 4, &mut next), vec![0.0, 0.05, -0.05, 0.1]),
            (mk(1, 4, &mut next), vec![0.0]),
        ])
        .unwrap()
    }

    fn spec1() -> Specification {
        Specification {
            c: vec![1.0],
            offset: 0.0,
        }
    }

    #[test]
    fn exact_for_stable_region() {
        // Box entirely positive: |x| = x exactly; CROWN is exact.
        let net = abs_net();
        let b = crown_lower(&net, &[(0.5, 1.0)], &spec1()).unwrap();
        assert!((b.lower - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sound_and_tighter_than_ibp_on_abs() {
        let net = abs_net();
        let input_box = [(-1.0, 1.0)];
        // True min of |x| is 0.
        let cb = crown_lower(&net, &input_box, &spec1()).unwrap();
        assert!(cb.lower <= 0.0 + 1e-12, "must be sound: {}", cb.lower);
        let ibp = interval_bounds(&net, &input_box).unwrap();
        assert!(
            cb.lower >= ibp.output()[0].0 - 1e-12,
            "never looser than IBP here"
        );
    }

    #[test]
    fn crown_sound_on_random_networks() {
        for seed in 0..5u64 {
            let net = random_net(seed);
            let input_box = [(-0.8, 0.8), (-0.5, 1.0)];
            let cb = crown_lower(&net, &input_box, &spec1()).unwrap();
            // Exhaustive grid sample: the bound must lie below every value.
            let mut min_seen = f64::INFINITY;
            for i in 0..=24 {
                for j in 0..=24 {
                    let x = [-0.8 + 1.6 * i as f64 / 24.0, -0.5 + 1.5 * j as f64 / 24.0];
                    min_seen = min_seen.min(net.eval(&x).unwrap()[0]);
                }
            }
            assert!(
                cb.lower <= min_seen + 1e-9,
                "seed {seed}: crown {} above sampled min {min_seen}",
                cb.lower
            );
        }
    }

    #[test]
    fn crown_tighter_than_ibp_under_cancellation() {
        // CROWN's advantage over IBP is *cancellation*: when paths through
        // the network carry correlated signals, the backward linear form
        // cancels them while interval arithmetic double-counts. (On tiny
        // monotone networks whose neurons all peak at a shared corner,
        // IBP is exact and CROWN's chord slack can even lose — the regime
        // the CROWN-IBP literature documents.)
        //
        // f(x) = ReLU(x + 1.5) + ReLU(−x + 1.5) ≡ 3 on [−1, 1] (both
        // neurons stably active): CROWN is exact, IBP is off by 2.
        let net = AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
                vec![1.5, 1.5],
            ),
            (Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![0.0]),
        ])
        .unwrap();
        let input_box = [(-1.0, 1.0)];
        let cb = crown_lower(&net, &input_box, &spec1()).unwrap();
        let ibp = interval_bounds(&net, &input_box).unwrap().output()[0].0;
        assert!((cb.lower - 3.0).abs() < 1e-12, "crown {}", cb.lower);
        assert!((ibp - 1.0).abs() < 1e-12, "ibp {ibp}");
    }

    #[test]
    fn output_bounds_bracket_function() {
        let net = random_net(7);
        let input_box = [(-0.5, 0.5), (-0.5, 0.5)];
        let ob = crown_output_bounds(&net, &input_box).unwrap();
        assert_eq!(ob.len(), 1);
        let (lo, hi) = ob[0];
        assert!(lo <= hi);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [-0.5 + i as f64 / 10.0, -0.5 + j as f64 / 10.0];
                let y = net.eval(&x).unwrap()[0];
                assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn point_box_is_exact() {
        let net = random_net(3);
        let x = [0.3, -0.2];
        let cb = crown_lower(&net, &[(x[0], x[0]), (x[1], x[1])], &spec1()).unwrap();
        assert!((cb.lower - net.eval(&x).unwrap()[0]).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        let net = abs_net();
        assert!(crown_lower(&net, &[], &spec1()).is_err());
        assert!(crown_lower(&net, &[(0.0, 1.0), (0.0, 1.0)], &spec1()).is_err());
        let bad_spec = Specification {
            c: vec![1.0, 2.0],
            offset: 0.0,
        };
        assert!(crown_lower(&net, &[(0.0, 1.0)], &bad_spec).is_err());
    }

    #[test]
    fn relaxed_radius_never_exceeds_exact() {
        // f(x) = |x| − 0.2 > 0 holds on the ball around 0.6 of radius 0.4
        // exactly; CROWN certifies a subset of that.
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: -0.2,
        };
        let relaxed = relaxed_certified_radius(&net, &[0.6], &spec, 1.0, 1e-3).unwrap();
        let exact = crate::exact::certified_radius(
            &net,
            &[0.6],
            &spec,
            1.0,
            1e-3,
            &crate::exact::BnbSettings::default(),
        )
        .unwrap();
        assert!(relaxed <= exact + 1e-3, "relaxed {relaxed} > exact {exact}");
        assert!(relaxed > 0.0);
        // Misclassified center → zero radius, mirroring the exact API.
        let r0 = relaxed_certified_radius(&net, &[0.1], &spec, 1.0, 1e-3).unwrap();
        assert_eq!(r0, 0.0);
        assert!(relaxed_certified_radius(&net, &[0.6], &spec, -1.0, 1e-3).is_err());
    }
}
