//! The affine-ReLU network form consumed by every verifier.

use crate::VerifyError;
use rcr_linalg::Matrix;

/// A feed-forward network `x → W_L(…ReLU(W_1 x + b_1)…) + b_L`:
/// affine layers with ReLU between them (none after the last).
#[derive(Debug, Clone)]
pub struct AffineReluNet {
    layers: Vec<(Matrix, Vec<f64>)>,
}

impl AffineReluNet {
    /// Creates a network from `(weight, bias)` pairs; weight `i` maps the
    /// previous layer's width to `bias_i.len()`.
    ///
    /// # Errors
    /// * [`VerifyError::DimensionMismatch`] when layers do not chain or a
    ///   bias length differs from its weight's row count.
    /// * [`VerifyError::InvalidInput`] for an empty layer list.
    /// * [`VerifyError::NotFinite`] for NaN/inf parameters.
    pub fn new(layers: Vec<(Matrix, Vec<f64>)>) -> Result<Self, VerifyError> {
        if layers.is_empty() {
            return Err(VerifyError::InvalidInput(
                "network needs at least one layer".into(),
            ));
        }
        let mut prev_out: Option<usize> = None;
        for (i, (w, b)) in layers.iter().enumerate() {
            if w.rows() != b.len() {
                return Err(VerifyError::DimensionMismatch(format!(
                    "layer {i}: weight has {} rows but bias has {}",
                    w.rows(),
                    b.len()
                )));
            }
            if let Some(p) = prev_out {
                if w.cols() != p {
                    return Err(VerifyError::DimensionMismatch(format!(
                        "layer {i}: expects {} inputs, previous layer emits {p}",
                        w.cols()
                    )));
                }
            }
            if !w.is_finite() || !b.iter().all(|v| v.is_finite()) {
                return Err(VerifyError::NotFinite);
            }
            prev_out = Some(w.rows());
        }
        Ok(AffineReluNet { layers })
    }

    /// Extracts an affine-ReLU net from a trained [`rcr_nn`] MLP given its
    /// linear layers in order (the caller supplies the `Linear` handles;
    /// activations between them are assumed ReLU).
    ///
    /// # Errors
    /// Same as [`AffineReluNet::new`].
    pub fn from_linear_layers(linears: &[&rcr_nn::layers::Linear]) -> Result<Self, VerifyError> {
        let layers = linears
            .iter()
            .map(|l| {
                let w = Matrix::from_vec(l.out_features(), l.in_features(), l.weight().to_vec())
                    .map_err(|e| VerifyError::InvalidInput(e.to_string()))?;
                Ok((w, l.bias().to_vec()))
            })
            .collect::<Result<Vec<_>, VerifyError>>()?;
        Self::new(layers)
    }

    /// The `(weight, bias)` layers.
    pub fn layers(&self) -> &[(Matrix, Vec<f64>)] {
        &self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].0.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        // rcr-lint: allow(no-unwrap-in-lib, reason = "constructor rejects zero-layer networks, so last() cannot be None")
        self.layers.last().expect("non-empty").1.len()
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Concrete forward evaluation.
    ///
    /// # Errors
    /// Returns [`VerifyError::DimensionMismatch`] for a wrong-length input.
    pub fn eval(&self, x: &[f64]) -> Result<Vec<f64>, VerifyError> {
        if x.len() != self.input_dim() {
            return Err(VerifyError::DimensionMismatch(format!(
                "input has {} entries, expected {}",
                x.len(),
                self.input_dim()
            )));
        }
        let mut cur = x.to_vec();
        for (i, (w, b)) in self.layers.iter().enumerate() {
            let mut z = w
                .matvec(&cur)
                .map_err(|e| VerifyError::InvalidInput(e.to_string()))?;
            for (zi, bi) in z.iter_mut().zip(b) {
                *zi += bi;
            }
            if i + 1 < self.layers.len() {
                for zi in &mut z {
                    *zi = zi.max(0.0);
                }
            }
            cur = z;
        }
        Ok(cur)
    }
}

/// A verification problem: show `cᵀ f(x) + offset > 0` for every `x` in
/// the input box.
#[derive(Debug, Clone)]
pub struct Specification {
    /// Objective row `c`.
    pub c: Vec<f64>,
    /// Constant offset added to `cᵀ f(x)`.
    pub offset: f64,
}

impl Specification {
    /// Margin specification for a classifier: class `target` beats class
    /// `other` (`f_target − f_other > 0`).
    ///
    /// # Errors
    /// Returns [`VerifyError::InvalidInput`] for equal or out-of-range
    /// indices.
    pub fn margin(output_dim: usize, target: usize, other: usize) -> Result<Self, VerifyError> {
        if target == other || target >= output_dim || other >= output_dim {
            return Err(VerifyError::InvalidInput(format!(
                "bad margin spec: {target} vs {other} with {output_dim} outputs"
            )));
        }
        let mut c = vec![0.0; output_dim];
        c[target] = 1.0;
        c[other] = -1.0;
        Ok(Specification { c, offset: 0.0 })
    }

    /// Evaluates the specification margin at a concrete output.
    pub fn eval(&self, output: &[f64]) -> f64 {
        self.c.iter().zip(output).map(|(a, b)| a * b).sum::<f64>() + self.offset
    }
}

/// Validates an input box.
///
/// # Errors
/// Returns [`VerifyError::InvalidInput`] for an empty/reversed/non-finite
/// box.
pub fn validate_box(input_box: &[(f64, f64)]) -> Result<(), VerifyError> {
    if input_box.is_empty() {
        return Err(VerifyError::InvalidInput("empty input box".into()));
    }
    for &(lo, hi) in input_box {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(VerifyError::InvalidInput(format!(
                "bad interval [{lo}, {hi}]"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> AffineReluNet {
        // f(x) = W2 ReLU(W1 x + b1) + b2 with W1 = [[1],[−1]], b1 = 0,
        // W2 = [1, 1], b2 = 0 ⇒ f(x) = |x|.
        AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
                vec![0.0, 0.0],
            ),
            (Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![0.0]),
        ])
        .unwrap()
    }

    #[test]
    fn absolute_value_network() {
        let net = tiny_net();
        assert_eq!(net.input_dim(), 1);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.depth(), 2);
        for x in [-2.0, -0.5, 0.0, 1.5] {
            assert_eq!(net.eval(&[x]).unwrap()[0], x.abs());
        }
    }

    #[test]
    fn construction_validation() {
        assert!(AffineReluNet::new(vec![]).is_err());
        // Bias length mismatch.
        assert!(AffineReluNet::new(vec![(Matrix::identity(2), vec![0.0])]).is_err());
        // Chain mismatch.
        assert!(AffineReluNet::new(vec![
            (Matrix::identity(2), vec![0.0; 2]),
            (Matrix::identity(3), vec![0.0; 3]),
        ])
        .is_err());
        // NaN.
        let mut w = Matrix::identity(1);
        w[(0, 0)] = f64::NAN;
        assert!(AffineReluNet::new(vec![(w, vec![0.0])]).is_err());
    }

    #[test]
    fn eval_validates_input_length() {
        let net = tiny_net();
        assert!(net.eval(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn extraction_from_rcr_nn_linear() {
        let mut l1 = rcr_nn::layers::Linear::new(2, 3, 0).unwrap();
        l1.set_parameters(&[1.0, 0.0, 0.0, 1.0, 1.0, -1.0], &[0.0, 0.1, -0.1])
            .unwrap();
        let l2 = rcr_nn::layers::Linear::new(3, 1, 1).unwrap();
        let net = AffineReluNet::from_linear_layers(&[&l1, &l2]).unwrap();
        assert_eq!(net.input_dim(), 2);
        assert_eq!(net.output_dim(), 1);
        // Spot-check against manual forward.
        let x = [0.3f64, -0.7];
        let z1 = [
            (1.0 * x[0] + 0.0 * x[1]).max(0.0),
            (0.0 * x[0] + 1.0 * x[1] + 0.1).max(0.0),
            (1.0 * x[0] - 1.0 * x[1] - 0.1).max(0.0),
        ];
        let expected: f64 =
            l2.weight().iter().zip(&z1).map(|(w, z)| w * z).sum::<f64>() + l2.bias()[0];
        assert!((net.eval(&x).unwrap()[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn margin_specification() {
        let s = Specification::margin(3, 0, 2).unwrap();
        assert_eq!(s.c, vec![1.0, 0.0, -1.0]);
        assert_eq!(s.eval(&[2.0, 9.0, 0.5]), 1.5);
        assert!(Specification::margin(3, 1, 1).is_err());
        assert!(Specification::margin(3, 5, 0).is_err());
    }

    #[test]
    fn box_validation() {
        assert!(validate_box(&[]).is_err());
        assert!(validate_box(&[(1.0, 0.0)]).is_err());
        assert!(validate_box(&[(0.0, f64::INFINITY)]).is_err());
        assert!(validate_box(&[(-1.0, 1.0)]).is_ok());
    }
}
