//! Interval bound propagation — the loosest layer-wise convex relaxation.
//!
//! Each affine layer maps an input box to the tightest output box
//! obtainable coordinate-wise (exact for a single affine layer, loose for
//! compositions because inter-neuron correlations are dropped); ReLU
//! clamps lower bounds at 0. The per-layer boxes are exactly the
//! "layer-wise" relaxations the paper's RCR framework tracks, and the
//! pre-activation intervals feed the CROWN triangle relaxation.

use crate::net::{validate_box, AffineReluNet};
use crate::VerifyError;
use rcr_kernels::Scratch;

/// Per-layer interval bounds for one network and input box.
#[derive(Debug, Clone)]
pub struct LayerBounds {
    /// Pre-activation bounds of each affine layer:
    /// `pre[i][j] = (lo, hi)` of neuron `j` of layer `i`.
    pre: Vec<Vec<(f64, f64)>>,
    /// Post-activation bounds (same shape; last layer has no ReLU).
    post: Vec<Vec<(f64, f64)>>,
}

impl LayerBounds {
    /// Pre-activation bounds per layer.
    pub fn pre_activation(&self) -> &[Vec<(f64, f64)>] {
        &self.pre
    }

    /// Post-activation bounds per layer.
    pub fn post_activation(&self) -> &[Vec<(f64, f64)>] {
        &self.post
    }

    /// Bounds of the network output (post of the last layer).
    pub fn output(&self) -> &[(f64, f64)] {
        // rcr-lint: allow(no-unwrap-in-lib, reason = "constructor rejects empty networks, so post always has one entry per layer")
        self.post.last().expect("at least one layer")
    }

    /// Number of *unstable* ReLU neurons (pre-activation straddles 0) —
    /// the combinatorial hardness measure for complete verification.
    pub fn unstable_count(&self) -> usize {
        // The last layer has no ReLU; skip it.
        self.pre[..self.pre.len().saturating_sub(1)]
            .iter()
            .flatten()
            .filter(|&&(lo, hi)| lo < 0.0 && hi > 0.0)
            .count()
    }

    /// Mean width of the output box — the bound-tightness metric used by
    /// experiment E10.
    pub fn output_mean_width(&self) -> f64 {
        let out = self.output();
        out.iter().map(|(lo, hi)| hi - lo).sum::<f64>() / out.len().max(1) as f64
    }

    /// Returns the per-layer bound buffers to `scratch` so the next
    /// propagation through [`interval_bounds_scratch`] can reuse them
    /// instead of allocating. Branch-and-bound calls this once per node.
    pub fn recycle(self, scratch: &mut Scratch) {
        for buf in self.pre {
            scratch.give_pairs(buf);
        }
        for buf in self.post {
            scratch.give_pairs(buf);
        }
    }
}

/// Propagates interval bounds through the network.
///
/// # Errors
/// * [`VerifyError::InvalidInput`] for a malformed box.
/// * [`VerifyError::DimensionMismatch`] when the box width differs from
///   the network input dimension.
pub fn interval_bounds(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
) -> Result<LayerBounds, VerifyError> {
    interval_bounds_parallel(net, input_box, 1)
}

/// [`interval_bounds`] with the per-layer row sweep fanned out across
/// `workers` threads (a count as resolved by
/// [`rcr_runtime::resolve_workers`]).
///
/// Rows of one layer are independent and each row's accumulation order is
/// unchanged, so the result is bit-identical to the serial propagation for
/// every worker count. Layers stay sequential — each consumes the previous
/// layer's post-activation box.
///
/// # Errors
/// Same as [`interval_bounds`].
pub fn interval_bounds_parallel(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    workers: usize,
) -> Result<LayerBounds, VerifyError> {
    let mut scratch = Scratch::new();
    interval_bounds_scratch(net, input_box, workers, &mut scratch)
}

/// One affine row of interval arithmetic: the tightest `(lo, hi)` of
/// `bias + Σ row[c]·x[c]` over the box `cur`. Accumulation order matches
/// the historical per-row loop exactly (increasing `c`, lo/hi interleaved).
#[inline]
fn ibp_row(row: &[f64], bias: f64, cur: &[(f64, f64)]) -> (f64, f64) {
    let mut lo = bias;
    let mut hi = bias;
    for (&wv, &(xl, xh)) in row.iter().zip(cur) {
        if wv >= 0.0 {
            lo += wv * xl;
            hi += wv * xh;
        } else {
            lo += wv * xh;
            hi += wv * xl;
        }
    }
    (lo, hi)
}

/// [`interval_bounds_parallel`] propagating through buffers checked out of
/// `scratch` — the allocation-free form used per node by branch-and-bound.
/// Pass the returned [`LayerBounds`] back via [`LayerBounds::recycle`] to
/// keep the pool warm.
///
/// The per-layer row sweep writes results in place via
/// `rcr_runtime::parallel_map_mut` chunks (no per-row index vector, no
/// reassembly copy, no per-layer clones), and each row's accumulation
/// order is unchanged, so results are bit-identical to the historical
/// serial propagation for every worker count.
///
/// # Errors
/// Same as [`interval_bounds`].
pub fn interval_bounds_scratch(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    workers: usize,
    scratch: &mut Scratch,
) -> Result<LayerBounds, VerifyError> {
    validate_box(input_box)?;
    if input_box.len() != net.input_dim() {
        return Err(VerifyError::DimensionMismatch(format!(
            "box has {} dims, network expects {}",
            input_box.len(),
            net.input_dim()
        )));
    }
    let depth = net.depth();
    let mut pre: Vec<Vec<(f64, f64)>> = Vec::with_capacity(depth);
    let mut post: Vec<Vec<(f64, f64)>> = Vec::with_capacity(depth);
    for (li, (w, b)) in net.layers().iter().enumerate() {
        let mut layer_pre = scratch.take_pairs(w.rows(), (0.0, 0.0));
        {
            let cur: &[(f64, f64)] = if li == 0 { input_box } else { &post[li - 1] };
            rcr_runtime::parallel_map_mut(&mut layer_pre, workers, |r, slot| {
                *slot = ibp_row(w.row(r), b[r], cur);
            });
        }
        let mut layer_post = scratch.take_pairs(w.rows(), (0.0, 0.0));
        if li + 1 < depth {
            for (dst, &(lo, hi)) in layer_post.iter_mut().zip(&layer_pre) {
                *dst = (lo.max(0.0), hi.max(0.0));
            }
        } else {
            layer_post.copy_from_slice(&layer_pre);
        }
        pre.push(layer_pre);
        post.push(layer_post);
    }
    Ok(LayerBounds { pre, post })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcr_linalg::Matrix;

    fn abs_net() -> AffineReluNet {
        AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
                vec![0.0, 0.0],
            ),
            (Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![0.0]),
        ])
        .unwrap()
    }

    #[test]
    fn single_affine_layer_is_exact() {
        let net = AffineReluNet::new(vec![(
            Matrix::from_rows(&[&[2.0, -1.0]]).unwrap(),
            vec![0.5],
        )])
        .unwrap();
        let b = interval_bounds(&net, &[(0.0, 1.0), (-1.0, 1.0)]).unwrap();
        // 2x₁ − x₂ + 0.5 over the box: [0−1+0.5, 2+1+0.5].
        assert_eq!(b.output()[0], (-0.5, 3.5));
    }

    #[test]
    fn abs_network_bounds_are_sound_but_loose() {
        let net = abs_net();
        let b = interval_bounds(&net, &[(-1.0, 1.0)]).unwrap();
        let (lo, hi) = b.output()[0];
        // True range of |x| over [-1,1] is [0,1]; IBP must contain it.
        assert!(lo <= 0.0 && hi >= 1.0);
        // And IBP is loose here: it reports hi = 2 (both branches active).
        assert_eq!((lo, hi), (0.0, 2.0));
    }

    #[test]
    fn bounds_contain_sampled_outputs() {
        let net = AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[0.5, -1.2], &[0.7, 0.3], &[-0.4, 0.9]]).unwrap(),
                vec![0.1, -0.2, 0.0],
            ),
            (Matrix::from_rows(&[&[1.0, -1.0, 0.5]]).unwrap(), vec![0.3]),
        ])
        .unwrap();
        let input_box = [(-0.5, 0.5), (0.0, 1.0)];
        let b = interval_bounds(&net, &input_box).unwrap();
        let (lo, hi) = b.output()[0];
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [
                    input_box[0].0 + (input_box[0].1 - input_box[0].0) * i as f64 / 10.0,
                    input_box[1].0 + (input_box[1].1 - input_box[1].0) * j as f64 / 10.0,
                ];
                let y = net.eval(&x).unwrap()[0];
                assert!(
                    y >= lo - 1e-12 && y <= hi + 1e-12,
                    "y={y} outside [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn unstable_count_reflects_straddling_neurons() {
        let net = abs_net();
        // Box entirely positive: the −x branch is stably inactive, the +x
        // branch stably active → 0 unstable.
        let b = interval_bounds(&net, &[(0.5, 1.0)]).unwrap();
        assert_eq!(b.unstable_count(), 0);
        // Box straddling 0: both neurons unstable.
        let b = interval_bounds(&net, &[(-1.0, 1.0)]).unwrap();
        assert_eq!(b.unstable_count(), 2);
    }

    #[test]
    fn degenerate_point_box() {
        let net = abs_net();
        let b = interval_bounds(&net, &[(0.7, 0.7)]).unwrap();
        let (lo, hi) = b.output()[0];
        assert!((lo - 0.7).abs() < 1e-12 && (hi - 0.7).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let net = abs_net();
        assert!(interval_bounds(&net, &[]).is_err());
        assert!(interval_bounds(&net, &[(1.0, -1.0)]).is_err());
        assert!(interval_bounds(&net, &[(0.0, 1.0), (0.0, 1.0)]).is_err());
    }
}
