use std::fmt;

/// Errors produced by the verification kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Network layer dimensions do not chain.
    DimensionMismatch(String),
    /// The input box or specification was malformed.
    InvalidInput(String),
    /// Branch-and-bound exhausted its node budget without a verdict.
    BudgetExhausted {
        /// Nodes explored before giving up.
        nodes: usize,
    },
    /// Data contained NaN or infinite values.
    NotFinite,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            VerifyError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            VerifyError::BudgetExhausted { nodes } => {
                write!(f, "branch-and-bound budget exhausted after {nodes} nodes")
            }
            VerifyError::NotFinite => write!(f, "data contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for VerifyError {}
