//! Complete verification by input-domain branch-and-bound — the paper's
//! "exact (complete)" verifier arm.
//!
//! §II-B-2: "prototypical exact verifiers are predicated upon …
//! Branch-and-Bound … by definition, these exact verifiers are not beset
//! by false positives or false negatives, but they must contend with
//! resolving NP-hard optimization problems, which in turn obviates their
//! scalability." This implementation bisects the input box along its
//! widest dimension, bounds each sub-box with CROWN, falsifies with
//! concrete center/corner evaluations, and terminates with an exact
//! verdict up to the requested gap `epsilon`.

use crate::bounds::interval_bounds_scratch;
use crate::crown::crown_lower_value_scratch;
use crate::net::{validate_box, AffineReluNet, Specification};
use crate::{Scratch, VerifyError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Node bound: the tighter of the CROWN linear relaxation and the plain
/// IBP interval bound (neither dominates the other in general).
///
/// Every buffer — the per-layer interval bounds and the CROWN backward
/// state — cycles through the calling thread's scratch pool, so
/// re-verifying a branch-and-bound node is allocation-free once the pool
/// is warm.
fn node_bound(
    net: &AffineReluNet,
    domain: &[(f64, f64)],
    spec: &Specification,
) -> Result<f64, VerifyError> {
    crate::with_scratch(|scratch| {
        let ib = interval_bounds_scratch(net, domain, 1, scratch)?;
        let cb_lower = crown_lower_value_scratch(net, domain, spec, &ib, scratch)?;
        let mut ibp_spec = spec.offset;
        for (ci, &(lo, hi)) in spec.c.iter().zip(ib.output()) {
            ibp_spec += if *ci >= 0.0 { ci * lo } else { ci * hi };
        }
        ib.recycle(scratch);
        Ok(cb_lower.max(ibp_spec))
    })
}

/// Margin `spec(net(x))` evaluated through scratch buffers: the forward
/// pass ping-pongs two pooled activation vectors and the final
/// specification dot keeps the `.sum()` fold, so the value is bit-identical
/// to `spec.eval(&net.eval(x)?)` without its per-layer allocations.
fn eval_margin_scratch(
    net: &AffineReluNet,
    spec: &Specification,
    x: &[f64],
    scratch: &mut Scratch,
) -> Result<f64, VerifyError> {
    if x.len() != net.input_dim() {
        return Err(VerifyError::DimensionMismatch(format!(
            "input has {} entries, expected {}",
            x.len(),
            net.input_dim()
        )));
    }
    let mut cur = scratch.take_f64(x.len(), 0.0);
    cur.copy_from_slice(x);
    let depth = net.depth();
    for (i, (w, b)) in net.layers().iter().enumerate() {
        let mut z = scratch.take_f64(w.rows(), 0.0);
        rcr_kernels::gemv(w.rows(), w.cols(), w.as_slice(), &cur, &mut z);
        for (zi, bi) in z.iter_mut().zip(b) {
            *zi += bi;
        }
        if i + 1 < depth {
            for zi in &mut z {
                *zi = zi.max(0.0);
            }
        }
        scratch.give_f64(std::mem::replace(&mut cur, z));
    }
    let margin = rcr_kernels::dot(&spec.c, &cur) + spec.offset;
    scratch.give_f64(cur);
    Ok(margin)
}

/// Verdict of a complete verification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The specification holds everywhere in the box (min margin > 0).
    Verified {
        /// A certified lower bound on the margin.
        lower_bound: f64,
    },
    /// A concrete counterexample was found.
    Falsified {
        /// The margin at the counterexample (≤ 0).
        margin: f64,
    },
}

/// Statistics of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct BnbReport {
    /// Final verdict.
    pub verdict: Verdict,
    /// Nodes (sub-boxes) explored.
    pub nodes: usize,
    /// Best certified global lower bound on the margin.
    pub lower_bound: f64,
    /// Best concrete margin observed (a sound upper bound on the min).
    pub upper_bound: f64,
    /// Counterexample input when falsified.
    pub counterexample: Option<Vec<f64>>,
}

/// Branch-and-bound settings.
#[derive(Debug, Clone)]
pub struct BnbSettings {
    /// Node budget before giving up.
    pub max_nodes: usize,
    /// Terminate once `upper − lower < epsilon` (bound gap).
    pub epsilon: f64,
    /// Worker threads for bounding/probing subproblems: `0` = auto (the
    /// `RCR_WORKERS` environment variable, else serial). Results are
    /// identical for every worker count.
    pub workers: usize,
    /// Open nodes popped and bounded per round. The wave size — not the
    /// worker count — determines the exploration order, which is why
    /// verdicts and node counts are worker-count independent. `0` is
    /// treated as `1`.
    pub wave: usize,
}

impl Default for BnbSettings {
    fn default() -> Self {
        BnbSettings {
            max_nodes: 100_000,
            epsilon: 1e-6,
            workers: 0,
            wave: 8,
        }
    }
}

#[derive(Debug)]
struct Node {
    lower: f64,
    domain: Vec<(f64, f64)>,
}

// Min-heap on lower bound: explore the weakest-bound node first.
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.lower == other.lower
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest lower.
        other.lower.total_cmp(&self.lower)
    }
}

/// Runs complete verification of `spec` over `input_box`.
///
/// ```
/// use rcr_linalg::Matrix;
/// use rcr_verify::exact::{verify_complete, BnbSettings, Verdict};
/// use rcr_verify::net::{AffineReluNet, Specification};
///
/// # fn main() -> Result<(), rcr_verify::VerifyError> {
/// // f(x) = ReLU(x): prove f(x) + 0.5 > 0 on [-1, 1].
/// let net = AffineReluNet::new(vec![
///     (Matrix::identity(1), vec![0.0]),
///     (Matrix::identity(1), vec![0.0]),
/// ])?;
/// let spec = Specification { c: vec![1.0], offset: 0.5 };
/// let report = verify_complete(&net, &[(-1.0, 1.0)], &spec, &BnbSettings::default())?;
/// assert!(matches!(report.verdict, Verdict::Verified { .. }));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// * [`VerifyError::InvalidInput`] / [`VerifyError::DimensionMismatch`]
///   for malformed problems.
/// * [`VerifyError::BudgetExhausted`] when `max_nodes` is reached without
///   a verdict (the partial bounds are lost; raise the budget).
pub fn verify_complete(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec: &Specification,
    settings: &BnbSettings,
) -> Result<BnbReport, VerifyError> {
    validate_box(input_box)?;
    if settings.max_nodes == 0 || !(settings.epsilon > 0.0) {
        return Err(VerifyError::InvalidInput(
            "max_nodes >= 1 and epsilon > 0 required".into(),
        ));
    }

    // Concrete probes: center and corners (corners capped at 2^10). One
    // pooled point buffer is rewritten per candidate; only the winning
    // probe point is materialised as an owned witness vector.
    let probe = |domain: &[(f64, f64)]| -> Result<(f64, Vec<f64>), VerifyError> {
        crate::with_scratch(|scratch| {
            let mut x = scratch.take_f64(domain.len(), 0.0);
            for (xi, &(l, h)) in x.iter_mut().zip(domain) {
                *xi = 0.5 * (l + h);
            }
            let mut best_margin = eval_margin_scratch(net, spec, &x, scratch)?;
            // `None` marks the center as the incumbent probe point.
            let mut best_mask: Option<usize> = None;
            if domain.len() <= 10 {
                for mask in 0..(1usize << domain.len()) {
                    for (i, (xi, &(l, h))) in x.iter_mut().zip(domain).enumerate() {
                        *xi = if mask >> i & 1 == 1 { h } else { l };
                    }
                    let m = eval_margin_scratch(net, spec, &x, scratch)?;
                    if m < best_margin {
                        best_margin = m;
                        best_mask = Some(mask);
                    }
                }
            }
            scratch.give_f64(x);
            let witness: Vec<f64> = match best_mask {
                None => domain.iter().map(|&(l, h)| 0.5 * (l + h)).collect(),
                Some(mask) => domain
                    .iter()
                    .enumerate()
                    .map(|(i, &(l, h))| if mask >> i & 1 == 1 { h } else { l })
                    .collect(),
            };
            Ok((best_margin, witness))
        })
    };

    let root_lower = node_bound(net, input_box, spec)?;
    let (mut upper, mut witness) = probe(input_box)?;
    let mut lower_global = root_lower;
    let mut nodes = 1usize;

    if upper <= 0.0 {
        return Ok(BnbReport {
            verdict: Verdict::Falsified { margin: upper },
            nodes,
            lower_bound: lower_global,
            upper_bound: upper,
            counterexample: Some(witness),
        });
    }
    if lower_global > 0.0 {
        return Ok(BnbReport {
            verdict: Verdict::Verified {
                lower_bound: lower_global,
            },
            nodes,
            lower_bound: lower_global,
            upper_bound: upper,
            counterexample: None,
        });
    }

    let workers = rcr_runtime::resolve_workers(settings.workers);
    let wave = settings.wave.max(1);
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        lower: root_lower,
        domain: input_box.to_vec(),
    });

    while !heap.is_empty() {
        // Pop a wave of the weakest-bound open nodes. The wave size is a
        // setting, not the worker count, so the exploration schedule —
        // and with it every bound, verdict, and node count — is the same
        // no matter how many threads compute it.
        let mut batch = Vec::with_capacity(wave);
        while batch.len() < wave {
            match heap.pop() {
                Some(n) => batch.push(n),
                None => break,
            }
        }

        // Global lower bound = weakest open node (first of the batch).
        lower_global = batch[0].lower;
        if lower_global > 0.0 {
            return Ok(BnbReport {
                verdict: Verdict::Verified {
                    lower_bound: lower_global,
                },
                nodes,
                lower_bound: lower_global,
                upper_bound: upper,
                counterexample: None,
            });
        }
        if upper - lower_global < settings.epsilon {
            // Gap closed: the true minimum is ≈ upper; sign decides.
            let verdict = if upper > 0.0 {
                Verdict::Verified {
                    lower_bound: lower_global,
                }
            } else {
                Verdict::Falsified { margin: upper }
            };
            return Ok(BnbReport {
                verdict,
                nodes,
                lower_bound: lower_global,
                upper_bound: upper,
                counterexample: if upper <= 0.0 { Some(witness) } else { None },
            });
        }
        if nodes >= settings.max_nodes {
            return Err(VerifyError::BudgetExhausted { nodes });
        }

        // Bound and probe both children of every node in the wave across
        // the worker pool; each child subproblem is independent.
        type Child = ((f64, f64), Vec<f64>, Vec<(f64, f64)>);
        let results: Vec<Result<Vec<Child>, VerifyError>> =
            rcr_runtime::parallel_map(&batch, workers, |_, node| {
                // Split along the widest dimension.
                let (dim, _) = node
                    .domain
                    .iter()
                    .enumerate()
                    .map(|(i, &(l, h))| (i, h - l))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .ok_or_else(|| VerifyError::InvalidInput("empty domain".into()))?;
                let mid = 0.5 * (node.domain[dim].0 + node.domain[dim].1);
                let mut children = Vec::with_capacity(2);
                for half in 0..2 {
                    let mut sub = node.domain.clone();
                    if half == 0 {
                        sub[dim].1 = mid;
                    } else {
                        sub[dim].0 = mid;
                    }
                    let lower = node_bound(net, &sub, spec)?;
                    let (m, x) = probe(&sub)?;
                    children.push(((lower, m), x, sub));
                }
                Ok(children)
            });

        // Serial merge in wave order: identical to processing the popped
        // nodes one by one.
        for node_children in results {
            for ((lower, m), x, sub) in node_children? {
                nodes += 1;
                if m < upper {
                    upper = m;
                    witness = x;
                    if upper <= 0.0 {
                        return Ok(BnbReport {
                            verdict: Verdict::Falsified { margin: upper },
                            nodes,
                            lower_bound: lower_global,
                            upper_bound: upper,
                            counterexample: Some(witness),
                        });
                    }
                }
                if lower <= 0.0 {
                    heap.push(Node { lower, domain: sub });
                }
            }
        }
    }

    // No open node has a bound ≤ 0 anymore: verified everywhere.
    Ok(BnbReport {
        verdict: Verdict::Verified { lower_bound: 0.0 },
        nodes,
        lower_bound: 0.0,
        upper_bound: upper,
        counterexample: None,
    })
}

/// Largest `ε` in `[0, max_eps]` (to resolution `tol`) for which the
/// margin specification holds on the `ε`-ball (infinity norm) around
/// `center` — the *certified radius*, computed by bisection with the
/// given verifier.
///
/// # Errors
/// Propagates verifier errors.
pub fn certified_radius(
    net: &AffineReluNet,
    center: &[f64],
    spec: &Specification,
    max_eps: f64,
    tol: f64,
    settings: &BnbSettings,
) -> Result<f64, VerifyError> {
    if !(max_eps > 0.0) || !(tol > 0.0) {
        return Err(VerifyError::InvalidInput(
            "max_eps and tol must be positive".into(),
        ));
    }
    let ball =
        |eps: f64| -> Vec<(f64, f64)> { center.iter().map(|&c| (c - eps, c + eps)).collect() };
    // The margin at the center must be positive to begin with.
    if spec.eval(&net.eval(center)?) <= 0.0 {
        return Ok(0.0);
    }
    let mut lo = 0.0;
    let mut hi = max_eps;
    // Check the outer radius first: maybe everything verifies.
    if matches!(
        verify_complete(net, &ball(max_eps), spec, settings)?.verdict,
        Verdict::Verified { .. }
    ) {
        return Ok(max_eps);
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        match verify_complete(net, &ball(mid), spec, settings)?.verdict {
            Verdict::Verified { .. } => lo = mid,
            Verdict::Falsified { .. } => hi = mid,
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcr_linalg::Matrix;

    fn abs_net() -> AffineReluNet {
        // f(x) = |x|.
        AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
                vec![0.0, 0.0],
            ),
            (Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![0.0]),
        ])
        .unwrap()
    }

    fn settings() -> BnbSettings {
        BnbSettings::default()
    }

    #[test]
    fn verifies_true_property() {
        // |x| + 0.5 > 0 everywhere: trivially true, needs tight bounding
        // because IBP at the root gives lower −... actually 0.5 > 0.
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.5,
        };
        let r = verify_complete(&net, &[(-1.0, 1.0)], &spec, &settings()).unwrap();
        assert!(matches!(r.verdict, Verdict::Verified { .. }), "{r:?}");
    }

    #[test]
    fn falsifies_false_property() {
        // |x| − 0.5 > 0 fails near x = 0.
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: -0.5,
        };
        let r = verify_complete(&net, &[(-1.0, 1.0)], &spec, &settings()).unwrap();
        match r.verdict {
            Verdict::Falsified { margin } => {
                assert!(margin <= 0.0);
                let x = r.counterexample.unwrap();
                assert!(x[0].abs() < 0.5 + 1e-9, "cex {x:?}");
            }
            v => panic!("expected falsified, got {v:?}"),
        }
    }

    /// `f(x) = |x| − 0.9x` built so the pass-through neuron (`x + 10`,
    /// always active on small boxes) defeats CROWN's coefficient
    /// cancellation: the root bound is −0.9 although the true minimum
    /// over `[-1, 1]` is `+0.1`.
    fn loose_net() -> AffineReluNet {
        AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0]]).unwrap(),
                vec![0.0, 0.0, 10.0],
            ),
            (Matrix::from_rows(&[&[1.0, 1.0, -0.9]]).unwrap(), vec![9.0]),
        ])
        .unwrap()
    }

    #[test]
    fn tight_true_property_requires_branching() {
        let net = loose_net();
        // f(x) = |x| − 0.9x has min 0 at x = 0, so f + 0.05 > 0 holds
        // everywhere with margin 0.05.
        let spec = Specification {
            c: vec![1.0],
            offset: 0.05,
        };
        // Root CROWN bound is loose (≈ −0.85) so branching must kick in.
        let root = crate::crown::crown_lower(&net, &[(-1.0, 1.0)], &spec).unwrap();
        assert!(
            root.lower < 0.0,
            "root bound unexpectedly tight: {}",
            root.lower
        );
        let r = verify_complete(&net, &[(-1.0, 1.0)], &spec, &settings()).unwrap();
        assert!(matches!(r.verdict, Verdict::Verified { .. }), "{r:?}");
        assert!(r.nodes > 1, "expected branching, got {} nodes", r.nodes);
    }

    #[test]
    fn margin_spec_on_two_output_net() {
        // f(x) = (x, 1 − x) on [0, 0.4]: f₀ < f₁ everywhere (x < 0.5),
        // so margin(1, 0) verifies and margin(0, 1) falsifies.
        let net = AffineReluNet::new(vec![(
            Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
            vec![0.0, 1.0],
        )])
        .unwrap();
        let good = Specification::margin(2, 1, 0).unwrap();
        let bad = Specification::margin(2, 0, 1).unwrap();
        let r1 = verify_complete(&net, &[(0.0, 0.4)], &good, &settings()).unwrap();
        assert!(matches!(r1.verdict, Verdict::Verified { .. }));
        let r2 = verify_complete(&net, &[(0.0, 0.4)], &bad, &settings()).unwrap();
        assert!(matches!(r2.verdict, Verdict::Falsified { .. }));
    }

    #[test]
    fn two_dim_input_bnb() {
        // f(x, y) = |x| + |y| − 0.3 > 0 fails inside the L1 ball of radius
        // 0.3 — BnB must find it.
        let net = AffineReluNet::new(vec![
            (
                Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap(),
                vec![0.0; 4],
            ),
            (
                Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]).unwrap(),
                vec![-0.3],
            ),
        ])
        .unwrap();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.0,
        };
        let r = verify_complete(&net, &[(-1.0, 1.0), (-1.0, 1.0)], &spec, &settings()).unwrap();
        assert!(matches!(r.verdict, Verdict::Falsified { .. }));
        // Restricted to a far corner, the property holds.
        let r = verify_complete(&net, &[(0.5, 1.0), (0.5, 1.0)], &spec, &settings()).unwrap();
        assert!(matches!(r.verdict, Verdict::Verified { .. }));
    }

    #[test]
    fn budget_exhaustion_reported() {
        // True property with a loose root bound: verification needs many
        // nodes, a 2-node budget cannot finish.
        let net = loose_net();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.05,
        };
        let s = BnbSettings {
            max_nodes: 1,
            epsilon: 1e-12,
            ..Default::default()
        };
        let r = verify_complete(&net, &[(-1.0, 1.0)], &spec, &s);
        assert!(
            matches!(r, Err(VerifyError::BudgetExhausted { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn certified_radius_matches_geometry() {
        // f(x) = |x| − margin spec at center 0.6: property f > 0.2 holds
        // while |x| > 0.2, i.e. radius 0.4 around 0.6.
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: -0.2,
        };
        let r = certified_radius(&net, &[0.6], &spec, 1.0, 1e-3, &settings()).unwrap();
        assert!((r - 0.4).abs() < 5e-3, "radius {r}");
    }

    #[test]
    fn certified_radius_zero_for_misclassified_center() {
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: -0.5,
        };
        // At center 0.1 the margin is already negative.
        let r = certified_radius(&net, &[0.1], &spec, 1.0, 1e-3, &settings()).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn full_radius_when_property_globally_true() {
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: 1.0,
        };
        let r = certified_radius(&net, &[0.0], &spec, 0.5, 1e-3, &settings()).unwrap();
        assert_eq!(r, 0.5);
    }

    #[test]
    fn validation() {
        let net = abs_net();
        let spec = Specification {
            c: vec![1.0],
            offset: 0.0,
        };
        assert!(verify_complete(&net, &[], &spec, &settings()).is_err());
        let bad = BnbSettings {
            max_nodes: 0,
            epsilon: 1e-6,
            ..Default::default()
        };
        assert!(verify_complete(&net, &[(0.0, 1.0)], &spec, &bad).is_err());
        assert!(certified_radius(&net, &[0.0], &spec, -1.0, 1e-3, &settings()).is_err());
    }
}
