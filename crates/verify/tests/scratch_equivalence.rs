//! Bit-equivalence of the scratch-pooled verifier paths against the
//! pre-kernels naive implementations.
//!
//! The reference functions in this file are verbatim copies of the IBP and
//! CROWN loops as they existed before the `rcr-kernels` rewiring (fresh
//! `Vec` per layer, `Matrix` index access). Every current entry point —
//! allocating wrapper, explicit-scratch, and warm-pool reuse — must agree
//! with them to the bit, on fixed-seed nets and on random shapes.

use proptest::prelude::*;
use rcr_linalg::Matrix;
use rcr_verify::bounds::{interval_bounds, interval_bounds_parallel, interval_bounds_scratch};
use rcr_verify::crown::{
    crown_lower_value_scratch, crown_lower_with_bounds, crown_lower_with_bounds_scratch,
};
use rcr_verify::net::{AffineReluNet, Specification};
use rcr_verify::Scratch;

/// Deterministic pseudo-random weights (splitmix64 folded to [-1, 1]).
fn weights(n: usize, mut state: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Per-layer `(lo, hi)` boxes, one vec per layer.
type LayerBoxes = Vec<Vec<(f64, f64)>>;

/// Pre-PR interval propagation, kept verbatim as the bitwise oracle.
fn naive_interval_bounds(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
) -> (LayerBoxes, LayerBoxes) {
    let mut cur: Vec<(f64, f64)> = input_box.to_vec();
    let depth = net.depth();
    let mut pre = Vec::with_capacity(depth);
    let mut post = Vec::with_capacity(depth);
    for (li, (w, b)) in net.layers().iter().enumerate() {
        let layer_pre: Vec<(f64, f64)> = (0..w.rows())
            .map(|r| {
                let mut lo = b[r];
                let mut hi = b[r];
                for c in 0..w.cols() {
                    let wv = w[(r, c)];
                    let (xl, xh) = cur[c];
                    if wv >= 0.0 {
                        lo += wv * xl;
                        hi += wv * xh;
                    } else {
                        lo += wv * xh;
                        hi += wv * xl;
                    }
                }
                (lo, hi)
            })
            .collect();
        let layer_post: Vec<(f64, f64)> = if li + 1 < depth {
            layer_pre
                .iter()
                .map(|&(lo, hi)| (lo.max(0.0), hi.max(0.0)))
                .collect()
        } else {
            layer_pre.clone()
        };
        cur = layer_post.clone();
        pre.push(layer_pre);
        post.push(layer_post);
    }
    (pre, post)
}

/// Pre-PR CROWN backward pass, kept verbatim as the bitwise oracle.
/// Returns `(lower, constant, input_coeffs)`.
fn naive_crown_lower(
    net: &AffineReluNet,
    input_box: &[(f64, f64)],
    spec: &Specification,
    pre_bounds: &[Vec<(f64, f64)>],
) -> (f64, f64, Vec<f64>) {
    let depth = net.depth();
    let mut a: Vec<f64> = spec.c.clone();
    let mut c = spec.offset;
    for li in (0..depth).rev() {
        let (w, b) = &net.layers()[li];
        if li + 1 < depth {
            let pre = &pre_bounds[li];
            for (j, aj) in a.iter_mut().enumerate() {
                let (l, u) = pre[j];
                if u <= 0.0 {
                    *aj = 0.0;
                } else if l >= 0.0 {
                } else if *aj >= 0.0 {
                    let lambda = if u >= -l { 1.0 } else { 0.0 };
                    *aj *= lambda;
                } else {
                    let slope = u / (u - l);
                    c += *aj * (-l * slope);
                    *aj *= slope;
                }
            }
        }
        c += a.iter().zip(b).map(|(ai, bi)| ai * bi).sum::<f64>();
        let mut new_a = vec![0.0; w.cols()];
        for (r, ar) in a.iter().enumerate() {
            if *ar == 0.0 {
                continue;
            }
            for (cc, na) in new_a.iter_mut().enumerate() {
                *na += ar * w[(r, cc)];
            }
        }
        a = new_a;
    }
    let mut lower = c;
    for (ai, &(lo, hi)) in a.iter().zip(input_box) {
        lower += if *ai >= 0.0 { ai * lo } else { ai * hi };
    }
    (lower, c, a)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn pair_bits(v: &[(f64, f64)]) -> Vec<(u64, u64)> {
    v.iter().map(|&(a, b)| (a.to_bits(), b.to_bits())).collect()
}

/// A 3-16-16-2 ReLU net with fixed pseudo-random parameters (the same
/// construction the parallel-determinism suite pins).
fn test_net() -> AffineReluNet {
    let w1 = Matrix::from_vec(16, 3, weights(48, 1)).unwrap();
    let w2 = Matrix::from_vec(16, 16, weights(256, 2)).unwrap();
    let w3 = Matrix::from_vec(2, 16, weights(32, 3)).unwrap();
    AffineReluNet::new(vec![
        (w1, weights(16, 4)),
        (w2, weights(16, 5)),
        (w3, weights(2, 6)),
    ])
    .unwrap()
}

const BOX: [(f64, f64); 3] = [(-0.6, 0.4), (-0.5, 0.5), (-0.2, 0.8)];

#[test]
fn ibp_matches_pre_pr_reference_on_fixed_net() {
    let net = test_net();
    let (naive_pre, naive_post) = naive_interval_bounds(&net, &BOX);
    let mut scratch = Scratch::new();
    // Three rounds through the same pool: cold, then recycled buffers.
    for round in 0..3 {
        let got = interval_bounds_scratch(&net, &BOX, 1, &mut scratch).unwrap();
        for (li, (np, gp)) in naive_pre.iter().zip(got.pre_activation()).enumerate() {
            assert_eq!(pair_bits(np), pair_bits(gp), "round {round} layer {li} pre");
        }
        for (li, (np, gp)) in naive_post.iter().zip(got.post_activation()).enumerate() {
            assert_eq!(
                pair_bits(np),
                pair_bits(gp),
                "round {round} layer {li} post"
            );
        }
        got.recycle(&mut scratch);
    }
    // The allocating wrapper and the parallel sweep agree too.
    let wrapper = interval_bounds(&net, &BOX).unwrap();
    assert_eq!(
        pair_bits(wrapper.output()),
        pair_bits(naive_post.last().unwrap())
    );
    let par = interval_bounds_parallel(&net, &BOX, 4).unwrap();
    assert_eq!(
        pair_bits(par.output()),
        pair_bits(naive_post.last().unwrap())
    );
}

#[test]
fn crown_matches_pre_pr_reference_on_fixed_net() {
    let net = test_net();
    let ib = interval_bounds(&net, &BOX).unwrap();
    let spec = Specification {
        c: vec![1.0, -0.5],
        offset: 0.25,
    };
    let (want_lower, want_const, want_coeffs) =
        naive_crown_lower(&net, &BOX, &spec, ib.pre_activation());

    let allocating = crown_lower_with_bounds(&net, &BOX, &spec, &ib).unwrap();
    assert_eq!(allocating.lower.to_bits(), want_lower.to_bits());
    assert_eq!(allocating.constant.to_bits(), want_const.to_bits());
    assert_eq!(bits(&allocating.input_coeffs), bits(&want_coeffs));

    let mut scratch = Scratch::new();
    for round in 0..3 {
        let cb = crown_lower_with_bounds_scratch(&net, &BOX, &spec, &ib, &mut scratch).unwrap();
        assert_eq!(cb.lower.to_bits(), want_lower.to_bits(), "round {round}");
        assert_eq!(bits(&cb.input_coeffs), bits(&want_coeffs), "round {round}");
        scratch.give_f64(cb.input_coeffs);
        let v = crown_lower_value_scratch(&net, &BOX, &spec, &ib, &mut scratch).unwrap();
        assert_eq!(v.to_bits(), want_lower.to_bits(), "round {round} value");
    }
}

#[test]
fn warm_scratch_rounds_do_not_allocate() {
    let net = test_net();
    let spec = Specification {
        c: vec![1.0, -0.5],
        offset: 0.25,
    };
    let mut scratch = Scratch::new();
    // Warm-up: populate the pool.
    for _ in 0..2 {
        let ib = interval_bounds_scratch(&net, &BOX, 1, &mut scratch).unwrap();
        let _ = crown_lower_value_scratch(&net, &BOX, &spec, &ib, &mut scratch).unwrap();
        ib.recycle(&mut scratch);
    }
    let cold_before = scratch.cold_allocs();
    for _ in 0..50 {
        let ib = interval_bounds_scratch(&net, &BOX, 1, &mut scratch).unwrap();
        let _ = crown_lower_value_scratch(&net, &BOX, &spec, &ib, &mut scratch).unwrap();
        ib.recycle(&mut scratch);
    }
    assert_eq!(
        scratch.cold_allocs(),
        cold_before,
        "steady-state IBP+CROWN rounds must be served entirely from the pool"
    );
}

fn net_from(weights: &[f64], biases: &[f64]) -> AffineReluNet {
    // 2-4-1 ReLU net: 8 + 4 weights, 4 + 1 biases.
    let w1 = Matrix::from_vec(4, 2, weights[..8].to_vec()).unwrap();
    let w2 = Matrix::from_vec(1, 4, weights[8..12].to_vec()).unwrap();
    AffineReluNet::new(vec![(w1, biases[..4].to_vec()), (w2, vec![biases[4]])]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scratch_paths_match_naive_on_random_nets(
        ws in prop::collection::vec(-1.5f64..1.5, 12),
        bs in prop::collection::vec(-0.5f64..0.5, 5),
        cx in -0.5f64..0.5,
        cy in -0.5f64..0.5,
        eps in 0.05f64..0.4,
        c0 in -2.0f64..2.0,
        offset in -1.0f64..1.0,
    ) {
        let net = net_from(&ws, &bs);
        let bx = [(cx - eps, cx + eps), (cy - eps, cy + eps)];
        let spec = Specification { c: vec![c0], offset };

        let (naive_pre, naive_post) = naive_interval_bounds(&net, &bx);
        let mut scratch = Scratch::new();
        let ib = interval_bounds_scratch(&net, &bx, 1, &mut scratch).unwrap();
        for (np, gp) in naive_pre.iter().zip(ib.pre_activation()) {
            prop_assert_eq!(pair_bits(np), pair_bits(gp));
        }
        for (np, gp) in naive_post.iter().zip(ib.post_activation()) {
            prop_assert_eq!(pair_bits(np), pair_bits(gp));
        }

        let (want_lower, want_const, want_coeffs) =
            naive_crown_lower(&net, &bx, &spec, ib.pre_activation());
        let cb = crown_lower_with_bounds_scratch(&net, &bx, &spec, &ib, &mut scratch).unwrap();
        prop_assert_eq!(cb.lower.to_bits(), want_lower.to_bits());
        prop_assert_eq!(cb.constant.to_bits(), want_const.to_bits());
        prop_assert_eq!(bits(&cb.input_coeffs), bits(&want_coeffs));
        let v = crown_lower_value_scratch(&net, &bx, &spec, &ib, &mut scratch).unwrap();
        prop_assert_eq!(v.to_bits(), want_lower.to_bits());
    }
}
