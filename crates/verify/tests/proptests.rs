//! Property-based invariants of the verification stack: soundness of
//! every bound against concrete evaluations, and agreement between the
//! relaxed and exact verdicts on verified instances.

use proptest::prelude::*;
use rcr_linalg::Matrix;
use rcr_verify::bounds::interval_bounds;
use rcr_verify::crown::crown_lower;
use rcr_verify::exact::{verify_complete, BnbSettings, Verdict};
use rcr_verify::net::{AffineReluNet, Specification};

fn net_from(weights: &[f64], biases: &[f64]) -> AffineReluNet {
    // 2-4-1 ReLU net: 8 + 4 weights, 4 + 1 biases.
    let w1 = Matrix::from_vec(4, 2, weights[..8].to_vec()).unwrap();
    let w2 = Matrix::from_vec(1, 4, weights[8..12].to_vec()).unwrap();
    AffineReluNet::new(vec![(w1, biases[..4].to_vec()), (w2, vec![biases[4]])]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_bounds_sound_against_grid(
        weights in prop::collection::vec(-1.5f64..1.5, 12),
        biases in prop::collection::vec(-0.5f64..0.5, 5),
        cx in -0.5f64..0.5,
        cy in -0.5f64..0.5,
        eps in 0.05f64..0.4,
    ) {
        let net = net_from(&weights, &biases);
        let spec = Specification { c: vec![1.0], offset: 0.0 };
        let bx = [(cx - eps, cx + eps), (cy - eps, cy + eps)];

        let ibp = interval_bounds(&net, &bx).unwrap().output()[0].0;
        let crown = crown_lower(&net, &bx, &spec).unwrap().lower;

        let mut grid_min = f64::INFINITY;
        for i in 0..=8 {
            for j in 0..=8 {
                let x = [
                    bx[0].0 + (bx[0].1 - bx[0].0) * i as f64 / 8.0,
                    bx[1].0 + (bx[1].1 - bx[1].0) * j as f64 / 8.0,
                ];
                grid_min = grid_min.min(net.eval(&x).unwrap()[0]);
            }
        }
        prop_assert!(ibp <= grid_min + 1e-9, "ibp {ibp} > grid {grid_min}");
        prop_assert!(crown <= grid_min + 1e-9, "crown {crown} > grid {grid_min}");
    }

    #[test]
    fn exact_verdict_consistent_with_concrete_margins(
        weights in prop::collection::vec(-1.5f64..1.5, 12),
        biases in prop::collection::vec(-0.5f64..0.5, 5),
        offset in -1.0f64..1.0,
    ) {
        let net = net_from(&weights, &biases);
        let spec = Specification { c: vec![1.0], offset };
        let bx = [(-0.3, 0.3), (-0.3, 0.3)];
        let settings = BnbSettings { max_nodes: 20_000, epsilon: 1e-5, ..Default::default() };
        let Ok(report) = verify_complete(&net, &bx, &spec, &settings) else {
            // Budget exhaustion on a degenerate margin: acceptable.
            return Ok(());
        };
        match report.verdict {
            Verdict::Verified { lower_bound } => {
                // Every sampled point must satisfy the spec.
                for i in 0..=6 {
                    for j in 0..=6 {
                        let x = [-0.3 + 0.6 * i as f64 / 6.0, -0.3 + 0.6 * j as f64 / 6.0];
                        let m = spec.eval(&net.eval(&x).unwrap());
                        prop_assert!(m >= lower_bound - 1e-6, "margin {m} < bound {lower_bound}");
                    }
                }
            }
            Verdict::Falsified { margin } => {
                let cex = report.counterexample.expect("falsified carries a witness");
                let m = spec.eval(&net.eval(&cex).unwrap());
                prop_assert!((m - margin).abs() < 1e-9);
                prop_assert!(m <= 0.0);
                // Witness inside the box.
                prop_assert!(cex.iter().all(|&v| (-0.3..=0.3).contains(&v)));
            }
        }
    }
}
