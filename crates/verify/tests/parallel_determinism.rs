//! The whole verifier ladder — IBP, CROWN, and complete branch-and-bound
//! — must produce bit-identical results for every worker count. Rows,
//! output nodes, and wave subproblems are data-parallel with unchanged
//! per-item accumulation order, and all merges run serially in
//! deterministic order, so parallelism is purely a throughput knob.

use rcr_linalg::Matrix;
use rcr_verify::bounds::interval_bounds_parallel;
use rcr_verify::crown::crown_output_bounds_parallel;
use rcr_verify::exact::{verify_complete, BnbSettings, Verdict};
use rcr_verify::net::{AffineReluNet, Specification};

/// Deterministic pseudo-random weights (splitmix64 folded to [-1, 1]).
fn weights(n: usize, mut state: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// A 3-16-16-2 ReLU net with fixed pseudo-random parameters.
fn test_net() -> AffineReluNet {
    let w1 = Matrix::from_vec(16, 3, weights(48, 1)).unwrap();
    let w2 = Matrix::from_vec(16, 16, weights(256, 2)).unwrap();
    let w3 = Matrix::from_vec(2, 16, weights(32, 3)).unwrap();
    AffineReluNet::new(vec![
        (w1, weights(16, 4)),
        (w2, weights(16, 5)),
        (w3, weights(2, 6)),
    ])
    .unwrap()
}

const BOX: [(f64, f64); 3] = [(-0.6, 0.4), (-0.5, 0.5), (-0.2, 0.8)];

#[test]
fn interval_bounds_bit_identical_across_worker_counts() {
    let net = test_net();
    let serial = interval_bounds_parallel(&net, &BOX, 1).unwrap();
    for workers in [2usize, 4, 7] {
        let par = interval_bounds_parallel(&net, &BOX, workers).unwrap();
        assert_eq!(
            serial.pre_activation(),
            par.pre_activation(),
            "{workers} workers: pre"
        );
        assert_eq!(
            serial.post_activation(),
            par.post_activation(),
            "{workers} workers: post"
        );
        assert_eq!(serial.output(), par.output(), "{workers} workers: output");
    }
}

#[test]
fn crown_bounds_bit_identical_across_worker_counts() {
    let net = test_net();
    let serial = crown_output_bounds_parallel(&net, &BOX, 1).unwrap();
    for workers in [2usize, 4, 7] {
        let par = crown_output_bounds_parallel(&net, &BOX, workers).unwrap();
        assert_eq!(serial.len(), par.len());
        for (j, ((slo, shi), (plo, phi))) in serial.iter().zip(&par).enumerate() {
            assert_eq!(
                slo.to_bits(),
                plo.to_bits(),
                "{workers} workers: output {j} lower"
            );
            assert_eq!(
                shi.to_bits(),
                phi.to_bits(),
                "{workers} workers: output {j} upper"
            );
        }
    }
}

#[test]
fn branch_and_bound_bit_identical_across_worker_counts() {
    let net = test_net();
    // An offset that forces real branching without exhausting the budget.
    let spec = Specification {
        c: vec![1.0, -0.5],
        offset: 0.9,
    };
    let run = |workers: usize| {
        let settings = BnbSettings {
            max_nodes: 50_000,
            epsilon: 1e-6,
            workers,
            wave: 8,
        };
        verify_complete(&net, &BOX, &spec, &settings).unwrap()
    };
    let serial = run(1);
    for workers in [2usize, 4, 7] {
        let par = run(workers);
        assert_eq!(serial.nodes, par.nodes, "{workers} workers: node count");
        assert_eq!(
            serial.lower_bound.to_bits(),
            par.lower_bound.to_bits(),
            "{workers} workers: lower bound"
        );
        assert_eq!(
            serial.upper_bound.to_bits(),
            par.upper_bound.to_bits(),
            "{workers} workers: upper bound"
        );
        match (&serial.verdict, &par.verdict) {
            (Verdict::Verified { lower_bound: a }, Verdict::Verified { lower_bound: b }) => {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{workers} workers: verified bound"
                )
            }
            (Verdict::Falsified { margin: a }, Verdict::Falsified { margin: b }) => {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{workers} workers: falsified margin"
                )
            }
            (a, b) => panic!("{workers} workers: verdicts diverge: {a:?} vs {b:?}"),
        }
        assert_eq!(
            serial.counterexample, par.counterexample,
            "{workers} workers: witness"
        );
    }
}

#[test]
fn wave_size_is_the_schedule_knob_not_workers() {
    // Changing the wave size may legitimately change the exploration
    // order (and thus node counts), but for a FIXED wave size every
    // worker count must agree — that's the documented contract.
    let net = test_net();
    let spec = Specification {
        c: vec![1.0, -0.5],
        offset: 0.9,
    };
    for wave in [1usize, 4, 16] {
        let run = |workers: usize| {
            let settings = BnbSettings {
                max_nodes: 50_000,
                epsilon: 1e-6,
                workers,
                wave,
            };
            verify_complete(&net, &BOX, &spec, &settings).unwrap()
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.nodes, par.nodes, "wave {wave}: node count");
        assert_eq!(
            serial.lower_bound.to_bits(),
            par.lower_bound.to_bits(),
            "wave {wave}: lower bound"
        );
    }
}
