//! Branch-and-bound for mixed-integer nonlinear programs over convex
//! relaxations.
//!
//! §II of the paper: "Obtaining the globally optimal solution to an MINLP
//! problem requires exploring a vast search space. This can be done
//! through robust mixed-integer convex relaxations of the MINLP … it is
//! necessary to identify those key combinatorial substructures, induced
//! by integral variables, which can be leveraged so as to improve the
//! involved bound tightening and global optimization algorithms."
//!
//! The solver is generic over [`RelaxableProblem`]: a problem supplies
//! (a) a convex relaxation solvable for any sub-box of its integer
//! variables — the *bound*, and (b) an exact continuous solve for a fixed
//! integer assignment — the *incumbent*. The driver owns the tree:
//! best-bound node selection, most-fractional branching, rounding
//! heuristics, and gap-based termination with a certificate.
//!
//! # Example
//!
//! ```
//! use rcr_minlp::{solve, BnbSettings, SeparableQuadratic};
//!
//! # fn main() -> Result<(), rcr_minlp::MinlpError> {
//! // min (x₀ − 1.4)² + (x₁ − 2.7)²  s.t.  x ∈ {0..5}², x₀ + x₁ = 4
//! let p = SeparableQuadratic::new(vec![1.4, 2.7], (0, 5), Some(4))?;
//! let r = solve(&p, &BnbSettings::default())?;
//! assert_eq!(r.assignment, vec![1, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Errors produced by the MINLP driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MinlpError {
    /// The problem reported inconsistent dimensions or malformed data.
    InvalidProblem(String),
    /// No feasible integer assignment exists.
    Infeasible,
    /// The node budget was exhausted before proving optimality; the
    /// incumbent (if any) is returned inside the error for salvage.
    BudgetExhausted {
        /// Best feasible objective found, if any.
        incumbent: Option<f64>,
        /// Nodes explored.
        nodes: usize,
    },
    /// A relaxation or subproblem solve failed.
    SubproblemFailure(String),
}

impl fmt::Display for MinlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinlpError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            MinlpError::Infeasible => write!(f, "no feasible integer assignment"),
            MinlpError::BudgetExhausted { incumbent, nodes } => write!(
                f,
                "node budget exhausted after {nodes} nodes (incumbent: {incumbent:?})"
            ),
            MinlpError::SubproblemFailure(msg) => write!(f, "subproblem failure: {msg}"),
        }
    }
}

impl std::error::Error for MinlpError {}

/// Result of solving a convex relaxation on an integer sub-box.
#[derive(Debug, Clone)]
pub struct Relaxation {
    /// A valid lower bound on the optimum within the sub-box (+∞ when the
    /// relaxation itself is infeasible).
    pub lower_bound: f64,
    /// The relaxed (possibly fractional) values of the integer variables.
    pub values: Vec<f64>,
}

/// A minimization MINLP exposing its convex-relaxation structure.
pub trait RelaxableProblem {
    /// Number of integer decision variables.
    fn num_integers(&self) -> usize;

    /// Global bounds `(lo, hi)` of each integer variable.
    fn integer_bounds(&self) -> Vec<(i64, i64)>;

    /// Solves the convex relaxation with the integer variables confined
    /// to `bounds` (continuous inside the box). Returns a valid lower
    /// bound for the sub-tree.
    ///
    /// # Errors
    /// Implementations report solver failures; an infeasible relaxation
    /// should return `lower_bound = f64::INFINITY` rather than an error.
    fn solve_relaxation(&self, bounds: &[(i64, i64)]) -> Result<Relaxation, MinlpError>;

    /// Solves the residual continuous problem for a fixed integer
    /// assignment. Returns `None` when the assignment is infeasible.
    ///
    /// # Errors
    /// Implementations report solver failures.
    fn evaluate_assignment(&self, assignment: &[i64]) -> Result<Option<f64>, MinlpError>;
}

/// Branch-and-bound settings.
#[derive(Debug, Clone)]
pub struct BnbSettings {
    /// Node budget.
    pub max_nodes: usize,
    /// Absolute optimality gap for termination.
    pub gap: f64,
    /// Run the rounding heuristic at every node (cheap incumbents).
    pub rounding_heuristic: bool,
}

impl Default for BnbSettings {
    fn default() -> Self {
        BnbSettings {
            max_nodes: 50_000,
            gap: 1e-6,
            rounding_heuristic: true,
        }
    }
}

/// Solution report.
#[derive(Debug, Clone)]
pub struct MinlpReport {
    /// Optimal (or best proven) objective value.
    pub objective: f64,
    /// Optimal integer assignment.
    pub assignment: Vec<i64>,
    /// Nodes explored.
    pub nodes: usize,
    /// Final lower bound (optimality certificate: `objective − lower ≤ gap`).
    pub lower_bound: f64,
    /// True when the gap was proven (false never escapes [`solve`]; kept
    /// for symmetry with salvage paths).
    pub proven_optimal: bool,
}

#[derive(Debug)]
struct TreeNode {
    lower: f64,
    bounds: Vec<(i64, i64)>,
    relaxed: Vec<f64>,
}

impl PartialEq for TreeNode {
    fn eq(&self, other: &Self) -> bool {
        self.lower == other.lower
    }
}
impl Eq for TreeNode {}
impl PartialOrd for TreeNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TreeNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap → reverse for best-(lowest-)bound-first.
        other
            .lower
            .partial_cmp(&self.lower)
            .unwrap_or(Ordering::Equal)
    }
}

/// Optimality-based bound tightening (OBBT-lite) — the "bound tightening"
/// leg of the paper's §II quote ("identify those key combinatorial
/// substructures … leveraged so as to improve the involved bound
/// tightening and global optimization algorithms").
///
/// For each integer variable in turn, probe pinning it to its current
/// extreme values: if the relaxation bound with `x_i = lo_i` already
/// meets or exceeds `incumbent − gap`, no optimal solution lives there
/// and the lower bound rises (symmetrically for the upper bound).
/// Returns the tightened bounds and the number of domain values removed.
///
/// # Errors
/// Propagates relaxation-solve failures.
pub fn tighten_bounds<P: RelaxableProblem + ?Sized>(
    problem: &P,
    mut bounds: Vec<(i64, i64)>,
    incumbent: f64,
    gap: f64,
) -> Result<(Vec<(i64, i64)>, usize), MinlpError> {
    let n = bounds.len();
    let mut removed = 0usize;
    for i in 0..n {
        // Raise the lower bound while the pinned-low relaxation is
        // dominated by the incumbent.
        while bounds[i].0 < bounds[i].1 {
            let mut probe = bounds.clone();
            probe[i] = (bounds[i].0, bounds[i].0);
            let rel = problem.solve_relaxation(&probe)?;
            if rel.lower_bound >= incumbent - gap {
                bounds[i].0 += 1;
                removed += 1;
            } else {
                break;
            }
        }
        // Lower the upper bound symmetrically.
        while bounds[i].1 > bounds[i].0 {
            let mut probe = bounds.clone();
            probe[i] = (bounds[i].1, bounds[i].1);
            let rel = problem.solve_relaxation(&probe)?;
            if rel.lower_bound >= incumbent - gap {
                bounds[i].1 -= 1;
                removed += 1;
            } else {
                break;
            }
        }
    }
    Ok((bounds, removed))
}

/// Solves the MINLP to proven optimality (within `settings.gap`).
///
/// # Errors
/// * [`MinlpError::Infeasible`] when no integer assignment is feasible.
/// * [`MinlpError::BudgetExhausted`] when `max_nodes` is reached first.
/// * Propagates problem-reported failures.
pub fn solve<P: RelaxableProblem + ?Sized>(
    problem: &P,
    settings: &BnbSettings,
) -> Result<MinlpReport, MinlpError> {
    let n = problem.num_integers();
    if n == 0 {
        return Err(MinlpError::InvalidProblem("no integer variables".into()));
    }
    let root_bounds = problem.integer_bounds();
    if root_bounds.len() != n {
        return Err(MinlpError::InvalidProblem(format!(
            "integer_bounds returned {} entries for {n} variables",
            root_bounds.len()
        )));
    }
    for &(lo, hi) in &root_bounds {
        if lo > hi {
            return Err(MinlpError::Infeasible);
        }
    }

    let mut incumbent: Option<(f64, Vec<i64>)> = None;
    let mut nodes = 0usize;
    let mut heap = BinaryHeap::new();

    let root = problem.solve_relaxation(&root_bounds)?;
    nodes += 1;
    if root.lower_bound.is_finite() {
        heap.push(TreeNode {
            lower: root.lower_bound,
            bounds: root_bounds,
            relaxed: root.values,
        });
    }

    let try_assignment =
        |assignment: &[i64], incumbent: &mut Option<(f64, Vec<i64>)>| -> Result<(), MinlpError> {
            if let Some(obj) = problem.evaluate_assignment(assignment)? {
                match incumbent {
                    Some((best, _)) if *best <= obj => {}
                    _ => *incumbent = Some((obj, assignment.to_vec())),
                }
            }
            Ok(())
        };

    while let Some(node) = heap.pop() {
        // Prune against the incumbent.
        if let Some((best, _)) = &incumbent {
            if node.lower >= *best - settings.gap {
                // Best-bound order: every remaining node is at least as
                // bad — the incumbent is optimal.
                break;
            }
        }
        if nodes >= settings.max_nodes {
            return Err(MinlpError::BudgetExhausted {
                incumbent: incumbent.map(|(v, _)| v),
                nodes,
            });
        }

        // Rounding heuristic on the relaxed values.
        if settings.rounding_heuristic {
            let rounded: Vec<i64> = node
                .relaxed
                .iter()
                .zip(&node.bounds)
                .map(|(&v, &(lo, hi))| (v.round() as i64).clamp(lo, hi))
                .collect();
            try_assignment(&rounded, &mut incumbent)?;
        }

        // Pick the most fractional variable to branch on. An *integral*
        // relaxation does NOT close the node: the relaxation may have
        // dropped coupling constraints (that is its job), so a feasible
        // completion better than the relaxed point can still hide in the
        // sub-box — we evaluate the candidate, then keep partitioning.
        let frac = |v: f64| (v - v.round()).abs();
        let branch_var = node
            .relaxed
            .iter()
            .enumerate()
            .filter(|(i, _)| node.bounds[*i].0 < node.bounds[*i].1)
            // total_cmp: a NaN relaxed coordinate (frac(NaN) = NaN)
            // ranks most-fractional and is branched on first, rather
            // than tying with everything and leaving the pick to
            // position — strict order, deterministic.
            .max_by(|a, b| frac(*a.1).total_cmp(&frac(*b.1)))
            .map(|(i, _)| i);

        let Some(bv) = branch_var else {
            // Every variable is fixed: exact evaluation closes the node.
            let assignment: Vec<i64> = node.bounds.iter().map(|&(lo, _)| lo).collect();
            try_assignment(&assignment, &mut incumbent)?;
            continue;
        };
        if frac(node.relaxed[bv]) < 1e-9 {
            let assignment: Vec<i64> = node
                .relaxed
                .iter()
                .zip(&node.bounds)
                .map(|(&v, &(lo, hi))| (v.round() as i64).clamp(lo, hi))
                .collect();
            try_assignment(&assignment, &mut incumbent)?;
            // The candidate may have raised the incumbent enough to prune.
            if let Some((best, _)) = &incumbent {
                if node.lower >= *best - settings.gap {
                    continue;
                }
            }
        }

        // Branch: x_bv ≤ split and x_bv ≥ split + 1, with the split point
        // clamped so both children are non-empty.
        let split =
            (node.relaxed[bv].floor() as i64).clamp(node.bounds[bv].0, node.bounds[bv].1 - 1);
        let children = [(node.bounds[bv].0, split), (split + 1, node.bounds[bv].1)];
        for &(lo, hi) in &children {
            if lo > hi {
                continue;
            }
            let mut b = node.bounds.clone();
            b[bv] = (lo, hi);
            nodes += 1;
            let rel = problem.solve_relaxation(&b)?;
            if !rel.lower_bound.is_finite() {
                continue; // infeasible sub-box
            }
            // Prune immediately when dominated.
            if let Some((best, _)) = &incumbent {
                if rel.lower_bound >= *best - settings.gap {
                    continue;
                }
            }
            heap.push(TreeNode {
                lower: rel.lower_bound,
                bounds: b,
                relaxed: rel.values,
            });
        }
    }

    match incumbent {
        Some((objective, assignment)) => {
            let lower_bound = heap.peek().map(|n| n.lower).unwrap_or(objective);
            Ok(MinlpReport {
                objective,
                assignment,
                nodes,
                lower_bound: lower_bound.min(objective),
                proven_optimal: true,
            })
        }
        None => Err(MinlpError::Infeasible),
    }
}

// ---------------------------------------------------------------------
// A reference problem for tests, docs and benchmarks.
// ---------------------------------------------------------------------

/// `min Σ (x_i − c_i)²` over integer `x_i ∈ [lo, hi]`, optionally subject
/// to `Σ x_i = budget` — a separable integer least-squares problem with a
/// closed-form convex relaxation (clamped projection onto the budget
/// hyperplane, found by bisection on the multiplier).
#[derive(Debug, Clone)]
pub struct SeparableQuadratic {
    targets: Vec<f64>,
    range: (i64, i64),
    budget: Option<i64>,
}

impl SeparableQuadratic {
    /// Creates the problem.
    ///
    /// # Errors
    /// Returns [`MinlpError::InvalidProblem`] for empty targets or a
    /// reversed range.
    pub fn new(
        targets: Vec<f64>,
        range: (i64, i64),
        budget: Option<i64>,
    ) -> Result<Self, MinlpError> {
        if targets.is_empty() {
            return Err(MinlpError::InvalidProblem("no variables".into()));
        }
        if range.0 > range.1 {
            return Err(MinlpError::InvalidProblem("reversed range".into()));
        }
        Ok(SeparableQuadratic {
            targets,
            range,
            budget,
        })
    }

    fn objective(&self, x: &[f64]) -> f64 {
        self.targets
            .iter()
            .zip(x)
            .map(|(c, v)| (v - c) * (v - c))
            .sum()
    }

    /// Continuous minimizer of `Σ (x_i − c_i)²` with `x_i ∈ [lo_i, hi_i]`
    /// and (optionally) `Σ x_i = budget`: `x_i = clamp(c_i + λ)` with λ
    /// found by bisection.
    fn project(&self, bounds: &[(i64, i64)]) -> Option<Vec<f64>> {
        let clamp = |lambda: f64| -> Vec<f64> {
            self.targets
                .iter()
                .zip(bounds)
                .map(|(&c, &(lo, hi))| (c + lambda).clamp(lo as f64, hi as f64))
                .collect()
        };
        match self.budget {
            None => Some(clamp(0.0)),
            Some(s) => {
                let s = s as f64;
                let total = |l: f64| clamp(l).iter().sum::<f64>();
                let (min_sum, max_sum) = (
                    bounds.iter().map(|b| b.0 as f64).sum::<f64>(),
                    bounds.iter().map(|b| b.1 as f64).sum::<f64>(),
                );
                if s < min_sum - 1e-9 || s > max_sum + 1e-9 {
                    return None;
                }
                let (mut lo, mut hi) = (-1e6, 1e6);
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if total(mid) < s {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Some(clamp(0.5 * (lo + hi)))
            }
        }
    }
}

impl RelaxableProblem for SeparableQuadratic {
    fn num_integers(&self) -> usize {
        self.targets.len()
    }

    fn integer_bounds(&self) -> Vec<(i64, i64)> {
        vec![self.range; self.targets.len()]
    }

    fn solve_relaxation(&self, bounds: &[(i64, i64)]) -> Result<Relaxation, MinlpError> {
        match self.project(bounds) {
            Some(x) => Ok(Relaxation {
                lower_bound: self.objective(&x),
                values: x,
            }),
            None => Ok(Relaxation {
                lower_bound: f64::INFINITY,
                values: Vec::new(),
            }),
        }
    }

    fn evaluate_assignment(&self, assignment: &[i64]) -> Result<Option<f64>, MinlpError> {
        if assignment.len() != self.targets.len() {
            return Err(MinlpError::InvalidProblem("assignment length".into()));
        }
        if assignment
            .iter()
            .any(|&v| v < self.range.0 || v > self.range.1)
        {
            return Ok(None);
        }
        if let Some(s) = self.budget {
            if assignment.iter().sum::<i64>() != s {
                return Ok(None);
            }
        }
        let x: Vec<f64> = assignment.iter().map(|&v| v as f64).collect();
        Ok(Some(self.objective(&x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_rounds_each_coordinate() {
        let p = SeparableQuadratic::new(vec![1.2, -0.6, 3.7], (-5, 5), None).unwrap();
        let r = solve(&p, &BnbSettings::default()).unwrap();
        assert_eq!(r.assignment, vec![1, -1, 4]);
        assert!(r.proven_optimal);
        // Certificate: gap closed.
        assert!(r.objective - r.lower_bound <= 1e-6 + 1e-12);
    }

    #[test]
    fn budget_constraint_forces_tradeoff() {
        // Targets (1.4, 2.7) sum to 4.1; budget 4 forces the cheapest
        // integer split: (1, 3) costs 0.16+0.09 = 0.25.
        let p = SeparableQuadratic::new(vec![1.4, 2.7], (0, 5), Some(4)).unwrap();
        let r = solve(&p, &BnbSettings::default()).unwrap();
        assert_eq!(r.assignment, vec![1, 3]);
        assert!((r.objective - 0.25).abs() < 1e-9);
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        let p = SeparableQuadratic::new(vec![0.3, 1.9, -1.2, 2.2], (-3, 3), Some(3)).unwrap();
        let r = solve(&p, &BnbSettings::default()).unwrap();
        // Brute force.
        let mut best = f64::INFINITY;
        let mut best_x = vec![];
        let rng = -3i64..=3;
        for a in rng.clone() {
            for b in rng.clone() {
                for c in rng.clone() {
                    for d in rng.clone() {
                        if a + b + c + d != 3 {
                            continue;
                        }
                        let obj = p.objective(&[a as f64, b as f64, c as f64, d as f64]);
                        if obj < best {
                            best = obj;
                            best_x = vec![a, b, c, d];
                        }
                    }
                }
            }
        }
        assert!(
            (r.objective - best).abs() < 1e-9,
            "bnb {} vs brute {best}",
            r.objective
        );
        assert_eq!(r.assignment, best_x);
    }

    #[test]
    fn infeasible_budget_detected() {
        let p = SeparableQuadratic::new(vec![0.0, 0.0], (0, 1), Some(5)).unwrap();
        assert!(matches!(
            solve(&p, &BnbSettings::default()),
            Err(MinlpError::Infeasible)
        ));
    }

    #[test]
    fn budget_exhaustion_salvages_incumbent() {
        let p = SeparableQuadratic::new(
            (0..12).map(|i| i as f64 * 0.37 + 0.4).collect(),
            (0, 10),
            Some(25),
        )
        .unwrap();
        let s = BnbSettings {
            max_nodes: 2,
            rounding_heuristic: false,
            ..Default::default()
        };
        match solve(&p, &s) {
            Err(MinlpError::BudgetExhausted { nodes, .. }) => assert!(nodes >= 2),
            Ok(r) => {
                // A 2-node budget may still suffice when the root
                // relaxation is integral; accept a proven solve.
                assert!(r.proven_optimal);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rounding_heuristic_accelerates() {
        let p = SeparableQuadratic::new(
            (0..8).map(|i| (i as f64 * 0.77).sin() * 3.0).collect(),
            (-4, 4),
            Some(2),
        )
        .unwrap();
        let with = solve(
            &p,
            &BnbSettings {
                rounding_heuristic: true,
                ..Default::default()
            },
        )
        .unwrap();
        let without = solve(
            &p,
            &BnbSettings {
                rounding_heuristic: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((with.objective - without.objective).abs() < 1e-9);
        assert!(
            with.nodes <= without.nodes,
            "with {} vs without {}",
            with.nodes,
            without.nodes
        );
    }

    #[test]
    fn validation() {
        assert!(SeparableQuadratic::new(vec![], (0, 1), None).is_err());
        assert!(SeparableQuadratic::new(vec![1.0], (2, 1), None).is_err());
        let p = SeparableQuadratic::new(vec![1.0], (0, 1), None).unwrap();
        assert!(p.evaluate_assignment(&[0, 1]).is_err());
    }

    #[test]
    fn tight_range_single_point() {
        let p = SeparableQuadratic::new(vec![0.7, 0.2], (1, 1), None).unwrap();
        let r = solve(&p, &BnbSettings::default()).unwrap();
        assert_eq!(r.assignment, vec![1, 1]);
    }

    #[test]
    fn obbt_shrinks_domains_without_cutting_the_optimum() {
        // Unconstrained separable quadratic: optimum is the rounded
        // targets; any incumbent near it lets OBBT carve away the far
        // lattice values.
        let p = SeparableQuadratic::new(vec![1.2, -0.6], (-10, 10), None).unwrap();
        let opt = solve(&p, &BnbSettings::default()).unwrap();
        let (tight, removed) =
            tighten_bounds(&p, p.integer_bounds(), opt.objective + 0.5, 1e-9).unwrap();
        assert!(removed > 0, "expected some domain reduction");
        // The optimum survives inside the tightened box.
        for (x, (lo, hi)) in opt.assignment.iter().zip(&tight) {
            assert!(x >= lo && x <= hi, "optimum {x} cut from [{lo}, {hi}]");
        }
        // And the tightened box is strictly smaller than the original.
        let orig_size: i64 = p.integer_bounds().iter().map(|(l, h)| h - l + 1).sum();
        let new_size: i64 = tight.iter().map(|(l, h)| h - l + 1).sum();
        assert!(new_size < orig_size);
        // Brute force inside the tightened box still finds the optimum.
        let mut best = f64::INFINITY;
        let mut best_x = vec![];
        for a in tight[0].0..=tight[0].1 {
            for b in tight[1].0..=tight[1].1 {
                let v = p.objective(&[a as f64, b as f64]);
                if v < best {
                    best = v;
                    best_x = vec![a, b];
                }
            }
        }
        assert_eq!(best_x, opt.assignment);
        assert!((best - opt.objective).abs() < 1e-12);
    }
}
