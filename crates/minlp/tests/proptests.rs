//! Property-based check: branch-and-bound equals brute force on random
//! separable integer quadratics.

use proptest::prelude::*;
use rcr_minlp::{solve, BnbSettings, SeparableQuadratic};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bnb_matches_brute_force(
        targets in prop::collection::vec(-3.0f64..3.0, 2..4),
        use_budget in any::<bool>(),
        budget in -4i64..8,
    ) {
        let range = (-4i64, 4i64);
        let n = targets.len();
        let budget_opt = if use_budget { Some(budget) } else { None };
        let p = SeparableQuadratic::new(targets.clone(), range, budget_opt).unwrap();
        let objective = |x: &[i64]| -> f64 {
            targets.iter().zip(x).map(|(c, &v)| (v as f64 - c) * (v as f64 - c)).sum()
        };

        // Brute force over the full lattice.
        let mut best: Option<(f64, Vec<i64>)> = None;
        let size = (range.1 - range.0 + 1) as usize;
        for idx in 0..size.pow(n as u32) {
            let mut x = Vec::with_capacity(n);
            let mut rem = idx;
            for _ in 0..n {
                x.push(range.0 + (rem % size) as i64);
                rem /= size;
            }
            if let Some(s) = budget_opt {
                if x.iter().sum::<i64>() != s {
                    continue;
                }
            }
            let v = objective(&x);
            match &best {
                Some((bv, _)) if *bv <= v => {}
                _ => best = Some((v, x)),
            }
        }

        match (solve(&p, &BnbSettings::default()), best) {
            (Ok(report), Some((bv, _))) => {
                prop_assert!(
                    (report.objective - bv).abs() < 1e-9,
                    "bnb {} vs brute {bv}",
                    report.objective
                );
                prop_assert!(report.proven_optimal);
            }
            (Err(rcr_minlp::MinlpError::Infeasible), None) => {} // agree: infeasible
            (got, want) => prop_assert!(false, "bnb {got:?} vs brute {want:?}"),
        }
    }
}
