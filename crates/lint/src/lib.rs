//! `rcr-lint` — in-repo static analysis for numerical-robustness and
//! determinism invariants.
//!
//! The paper's Fig. 3 catalogs the defect classes this tool guards
//! against at the source level: silently divergent primitives, NaN
//! panics hiding in float orderings, platform-dependent behavior. The
//! workspace stakes its identity on bit-identical serial-vs-parallel
//! solves; these rules machine-check the source idioms that invariant
//! rests on, so it stays true as the codebase grows.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p rcr-lint            # human file:line diagnostics
//! cargo run -p rcr-lint -- --format=json
//! ```
//!
//! Suppress a finding only with a justified pragma (the reason is
//! mandatory and reason-less pragmas are themselves errors):
//!
//! ```text
//! // rcr-lint: allow(float-literal-eq, reason = "one-hot labels are exactly 0.0/1.0")
//! ```
//!
//! See `DESIGN.md` ("Static analysis") for the rule-by-rule mapping to
//! the Fig. 3 defect classes.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod cache;
pub mod diag;
pub mod engine;
pub mod jsonio;
pub mod pragma;
pub mod rules;
pub mod sem;
pub mod tokenizer;
pub mod workspace;

pub use baseline::Baseline;
pub use diag::{render_json, render_sarif, Diagnostic};
pub use engine::{analyze_source, FileReport};
pub use workspace::{find_workspace_root, lint_workspace, lint_workspace_with, Options, Report};
