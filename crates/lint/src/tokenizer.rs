//! A small, comment- and string-aware Rust tokenizer.
//!
//! The lint rules only need a faithful *lexical* view of a source file:
//! identifiers, punctuation, and literals — with comments and string
//! contents cleanly separated so that a rule never fires on text inside
//! a doc comment or a string literal (the classic grep false positive).
//! This is deliberately not a full Rust lexer: it covers the token
//! shapes that occur in this workspace (raw strings, byte strings,
//! lifetimes vs. char literals, float vs. integer literals, nested
//! block comments) and nothing more.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`partial_cmp`, `fn`, `HashMap`, ...).
    Ident,
    /// Integer literal, including hex/octal/binary and int suffixes.
    Int,
    /// Float literal: has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix.
    Float,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Operator / punctuation. Multi-char operators (`::`, `==`, `!=`,
    /// `->`, ...) are single tokens.
    Punct,
    /// `// ...` comment, text includes the slashes. Doc line comments
    /// (`///`, `//!`) are classified as [`TokKind::DocComment`].
    LineComment,
    /// `/* ... */` comment (nesting handled), non-doc.
    BlockComment,
    /// Doc comment of any flavor (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl Token<'_> {
    /// `true` for comment tokens of any flavor.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        )
    }
}

/// Multi-char operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "...", "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Tokenizes `src`, never failing: unrecognized bytes become one-char
/// punct tokens so the rule passes degrade gracefully on exotic input.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // A shebang (`#!/usr/bin/env ...`) is legal on line 1 of a crate
    // root and is not Rust tokens: skip the whole line. `#![...]` is an
    // inner attribute, not a shebang.
    if src.starts_with("#!") && !src.starts_with("#![") {
        while i < bytes.len() && bytes[i] != b'\n' {
            i += 1;
        }
    }
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Comments.
        if b == b'/' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                b'/' => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let kind = if text.starts_with("///") || text.starts_with("//!") {
                        TokKind::DocComment
                    } else {
                        TokKind::LineComment
                    };
                    toks.push(Token {
                        kind,
                        text,
                        line: start_line,
                    });
                    continue;
                }
                b'*' => {
                    let mut depth = 1usize;
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'\n' {
                            line += 1;
                            i += 1;
                        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    let text = &src[start..i];
                    let kind = if text.starts_with("/**") || text.starts_with("/*!") {
                        TokKind::DocComment
                    } else {
                        TokKind::BlockComment
                    };
                    toks.push(Token {
                        kind,
                        text,
                        line: start_line,
                    });
                    continue;
                }
                _ => {}
            }
        }
        // Raw strings and byte strings: r"", r#""#, br"", b"".
        if (b == b'r' || b == b'b') && raw_or_byte_string(bytes, i).is_some() {
            let end = scan_string_like(bytes, i, &mut line);
            toks.push(Token {
                kind: TokKind::Str,
                text: &src[start..end],
                line: start_line,
            });
            i = end;
            continue;
        }
        // Byte char b'x'.
        if b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
            let end = scan_char(bytes, i + 1);
            toks.push(Token {
                kind: TokKind::Char,
                text: &src[start..end],
                line: start_line,
            });
            i = end;
            continue;
        }
        if b == b'"' {
            let end = scan_string_like(bytes, i, &mut line);
            toks.push(Token {
                kind: TokKind::Str,
                text: &src[start..end],
                line: start_line,
            });
            i = end;
            continue;
        }
        if b == b'\'' {
            // Lifetime `'a` vs char literal `'a'`: an identifier start
            // not followed by a closing quote is a lifetime.
            let is_lifetime = i + 1 < bytes.len()
                && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
                && !(i + 2 < bytes.len() && bytes[i + 2] == b'\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text: &src[start..j],
                    line: start_line,
                });
                i = j;
                continue;
            }
            let end = scan_char(bytes, i);
            toks.push(Token {
                kind: TokKind::Char,
                text: &src[start..end],
                line: start_line,
            });
            i = end;
            continue;
        }
        if b.is_ascii_digit() {
            let (end, is_float) = scan_number(bytes, i);
            toks.push(Token {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: &src[start..end],
                line: start_line,
            });
            i = end;
            continue;
        }
        // Identifiers: ASCII fast path, with non-ASCII alphabetic chars
        // accepted as starts/continuations so Unicode identifiers
        // (`λ`, `überschuss`) lex as one Ident instead of a spray of
        // one-char punct tokens.
        let ident_start = b.is_ascii_alphabetic()
            || b == b'_'
            || (b >= 0x80 && src[i..].chars().next().is_some_and(char::is_alphabetic));
        if ident_start {
            let mut j = i;
            while j < bytes.len() {
                let c = bytes[j];
                if c.is_ascii_alphanumeric() || c == b'_' {
                    j += 1;
                } else if c >= 0x80 {
                    let Some(ch) = src[j..].chars().next() else {
                        break;
                    };
                    if ch.is_alphanumeric() {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: &src[start..j],
                line: start_line,
            });
            i = j;
            continue;
        }
        // Punctuation: maximal munch over the multi-char table.
        let rest = &src[i..];
        let mut matched = 1usize;
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                matched = op.len();
                break;
            }
        }
        // Guard against splitting a multi-byte UTF-8 char.
        while matched < rest.len() && !rest.is_char_boundary(matched) {
            matched += 1;
        }
        toks.push(Token {
            kind: TokKind::Punct,
            text: &src[i..i + matched],
            line: start_line,
        });
        i += matched;
    }
    toks
}

/// Returns `Some(prefix_len)` when position `i` starts a raw or byte
/// string literal (`r"`, `r#`+`"`, `b"`, `br"`, `br#`+`"`).
fn raw_or_byte_string(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        // `r#ident` is a raw identifier, not a string.
        if j < bytes.len() && bytes[j] == b'"' {
            return Some(j - i + 1);
        }
        let _ = hashes;
        return None;
    }
    if j < bytes.len() && bytes[j] == b'"' && j > i {
        return Some(j - i + 1);
    }
    None
}

/// Scans any string literal starting at `i` (plain, raw, or byte),
/// updating `line` for embedded newlines; returns the end offset.
fn scan_string_like(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    let mut raw = false;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < bytes.len() && bytes[j] == b'"');
    j += 1; // opening quote
    while j < bytes.len() {
        match bytes[j] {
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'\\' if !raw => {
                j += 2;
            }
            b'"' => {
                j += 1;
                if !raw {
                    return j;
                }
                let mut h = 0usize;
                while h < hashes && j + h < bytes.len() && bytes[j + h] == b'#' {
                    h += 1;
                }
                if h == hashes {
                    return j + hashes;
                }
            }
            _ => j += 1,
        }
    }
    j
}

/// Scans a char/byte-char literal starting at the opening quote.
fn scan_char(bytes: &[u8], quote: usize) -> usize {
    let mut j = quote + 1;
    while j < bytes.len() {
        match bytes[j] {
            // A trailing escape can step past the end; clamp below.
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j.min(bytes.len())
}

/// Scans a numeric literal; returns `(end, is_float)`.
fn scan_number(bytes: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    // Hex / octal / binary: always integers (suffix consumed below).
    if bytes[j] == b'0' && j + 1 < bytes.len() && matches!(bytes[j + 1], b'x' | b'o' | b'b') {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j, false);
    }
    let mut is_float = false;
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    // Fractional part: a dot NOT followed by another dot (range `1..2`)
    // or an identifier start (method call `1.max(x)`, tuple `.0` handled
    // elsewhere) is part of the float.
    if j < bytes.len() && bytes[j] == b'.' {
        let next = bytes.get(j + 1).copied();
        let next_is_ident = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_');
        if next != Some(b'.') && !next_is_ident {
            is_float = true;
            j += 1;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < bytes.len() && matches!(bytes[j], b'e' | b'E') {
        let mut k = j + 1;
        if k < bytes.len() && matches!(bytes[k], b'+' | b'-') {
            k += 1;
        }
        if k < bytes.len() && bytes[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (`f64`, `u32`, ...). An `f32`/`f64` suffix makes the
    // literal a float even without a dot.
    if j < bytes.len() && (bytes[j].is_ascii_alphabetic() || bytes[j] == b'_') {
        let s = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if matches!(&bytes[s..j], b"f32" | b"f64") {
            is_float = true;
        }
    }
    (j, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_isolated() {
        let toks = kinds("let x = \"partial_cmp\"; // partial_cmp\n/* unwrap */ y");
        assert!(toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .all(|(_, t)| *t != "partial_cmp" && *t != "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokKind::LineComment | TokKind::BlockComment))
                .count(),
            2
        );
    }

    #[test]
    fn doc_comments_classified() {
        let toks = kinds("/// a.unwrap()\n//! b\n/** c */\nfn f() {}");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::DocComment)
                .count(),
            3
        );
    }

    #[test]
    fn float_vs_int_literals() {
        let toks = kinds("1 1.0 1. 1e5 2f64 0x1f 3u32 1..2 x.0 1_000.5");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(floats, vec!["1.0", "1.", "1e5", "2f64", "1_000.5"]);
        let ints: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(ints, vec!["1", "0x1f", "3u32", "1", "2", "0"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("<'a> 'x' b'\\n' '\\''");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            1
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let toks = kinds("r#\"a \" unwrap() \"#; x");
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "x"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn multichar_punct_single_tokens() {
        let toks = kinds("a::b == c != d -> e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(puncts, vec!["::", "==", "!=", "->"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\"x\ny\"\nc");
        let c = toks.iter().find(|t| t.text == "c").map(|t| t.line);
        assert_eq!(c, Some(5));
    }

    #[test]
    fn nested_raw_strings_with_multiple_hashes() {
        // The body contains `"#` which must not terminate an r##
        // string; only `"##` does.
        let toks = kinds("r##\"inner \"# still.unwrap() inside\"## ; tail");
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks[0].1.ends_with("\"##"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "tail"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn byte_string_escapes_do_not_leak() {
        // `\"` inside a byte string must not close it; `\\` must not
        // escape the real closing quote.
        let toks = kinds(r#"b"a\"b\\" x b"\x7f\n" y"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(strs, vec![r#"b"a\"b\\""#, r#"b"\x7f\n""#]);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(idents, vec!["x", "y"]);
    }

    #[test]
    fn shebang_line_is_skipped() {
        let toks = kinds("#!/usr/bin/env rust-script\nfn main() {}");
        assert_eq!(toks[0], (TokKind::Ident, "fn"));
        // An inner attribute is NOT a shebang and must still lex.
        let attr = kinds("#![forbid(unsafe_code)]\nfn f() {}");
        assert_eq!(attr[0], (TokKind::Punct, "#"));
        assert!(attr.iter().any(|(_, t)| *t == "forbid"));
    }

    #[test]
    fn non_ascii_identifiers_lex_as_single_idents() {
        let toks = kinds("let übergröße = λ + μ2;");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(idents, vec!["let", "übergröße", "λ", "μ2"]);
    }

    #[test]
    fn exotic_bytes_never_panic() {
        // Tokenization must degrade gracefully, not panic, on any input.
        for src in [
            "\u{1F600} fn ?? ' \\",
            "r#\"unterminated",
            "b'",
            "\"open",
            "0x 1e+ 'a",
            "#!",
        ] {
            let _ = tokenize(src);
        }
    }
}
