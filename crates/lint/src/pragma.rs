//! Inline suppression and contract pragmas.
//!
//! A violation is suppressed by a line comment of the form
//!
//! ```text
//! // rcr-lint: allow(rule-name, reason = "why this site is sound")
//! ```
//!
//! either trailing the offending line or on its own line directly
//! above it. The `reason` is **mandatory**: an `allow` without a
//! non-empty reason is itself a diagnostic (`bad-pragma`), as is an
//! `allow` naming a rule the tool does not know. This keeps every
//! suppression auditable — `grep -rn 'rcr-lint: allow'` is the
//! workspace's exception ledger.
//!
//! The unit-flow layer ([`crate::sem::units`]) adds a second form, a
//! *contract* rather than a suppression, placed directly above (or
//! trailing) a `fn` item:
//!
//! ```text
//! // rcr-lint: unit(bandwidth_hz = Hz, return = BitsPerSec, reason = "Shannon rate")
//! ```
//!
//! Each binding names a parameter (or `return`) and a dimension from
//! [`crate::sem::units::DIM_NAMES`]. The reason is mandatory here too:
//! a contract is a claim about physics, and the ledger should say whose
//! physics.

use crate::tokenizer::{TokKind, Token};

/// A parsed, well-formed `allow` pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    pub line: u32,
    /// `true` when the pragma shares its line with code (trailing
    /// form): it then applies to that line; otherwise to the next.
    pub trailing: bool,
}

/// A parsed, well-formed `unit(...)` contract pragma.
#[derive(Debug, Clone)]
pub struct UnitPragma {
    /// `(binding name, dimension name)` pairs; the binding name is a
    /// parameter name or the keyword `return`.
    pub bindings: Vec<(String, String)>,
    pub reason: String,
    pub line: u32,
    /// Same trailing/standalone semantics as [`Allow`].
    pub trailing: bool,
}

/// A malformed pragma — reported as a `bad-pragma` diagnostic and
/// never honored as a suppression or contract.
#[derive(Debug, Clone)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

/// Everything [`collect`] extracts from one file's token stream.
#[derive(Debug, Clone, Default)]
pub struct Pragmas {
    pub allows: Vec<Allow>,
    pub units: Vec<UnitPragma>,
    pub bad: Vec<BadPragma>,
}

/// Extracts pragmas from the token stream. `has_code_on_line` must
/// report whether a source line holds any non-comment token (to
/// classify trailing vs. standalone pragmas).
pub fn collect(tokens: &[Token<'_>], has_code_on_line: &dyn Fn(u32) -> bool) -> Pragmas {
    let mut out = Pragmas::default();
    for t in tokens {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("rcr-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest.starts_with("unit") {
            match parse_unit(rest) {
                Ok((bindings, reason)) => out.units.push(UnitPragma {
                    bindings,
                    reason,
                    line: t.line,
                    trailing: has_code_on_line(t.line),
                }),
                Err(message) => out.bad.push(BadPragma {
                    line: t.line,
                    message,
                }),
            }
            continue;
        }
        match parse_allow(rest) {
            Ok((rule, reason)) => out.allows.push(Allow {
                rule,
                reason,
                line: t.line,
                trailing: has_code_on_line(t.line),
            }),
            Err(message) => out.bad.push(BadPragma {
                line: t.line,
                message,
            }),
        }
    }
    out
}

/// Parses `allow(<rule>, reason = "...")`; returns `(rule, reason)`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let Some(inner) = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
    else {
        return Err(format!(
            "unrecognized pragma {s:?}: expected `allow(<rule>, reason = \"...\")` \
             or `unit(<param> = <Dim>, ..., reason = \"...\")`"
        ));
    };
    let Some((rule_part, reason_part)) = inner.split_once(',') else {
        return Err("allow(...) is missing the mandatory `reason = \"...\"` clause".into());
    };
    let rule = rule_part.trim().to_string();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return Err(format!("invalid rule name {rule:?} in allow(...)"));
    }
    let reason_part = reason_part.trim();
    let Some(q) = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
    else {
        return Err("allow(...) is missing the mandatory `reason = \"...\"` clause".into());
    };
    let Some(reason) = q.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
        return Err("allow(...) reason must be a double-quoted string".into());
    };
    if reason.trim().is_empty() {
        return Err("allow(...) reason must not be empty".into());
    }
    Ok((rule, reason.trim().to_string()))
}

/// Parses `unit(<name> = <Dim>, ..., reason = "...")`; returns the
/// bindings and the reason. Dimension names are validated against
/// [`crate::sem::units::DIM_NAMES`] so a typo'd dimension is a
/// `bad-pragma`, not a silently dead contract.
fn parse_unit(s: &str) -> Result<(Vec<(String, String)>, String), String> {
    let Some(inner) = s
        .strip_prefix("unit")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
    else {
        return Err(format!(
            "unrecognized pragma {s:?}: expected `unit(<param> = <Dim>, ..., reason = \"...\")`"
        ));
    };
    let mut bindings = Vec::new();
    let mut reason: Option<String> = None;
    for part in split_top(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((k, v)) = part.split_once('=') else {
            return Err(format!(
                "unit(...) clause {part:?} is not of the form `<name> = <Dim>`"
            ));
        };
        let (k, v) = (k.trim(), v.trim());
        if k == "reason" {
            let Some(r) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                return Err("unit(...) reason must be a double-quoted string".into());
            };
            if r.trim().is_empty() {
                return Err("unit(...) reason must not be empty".into());
            }
            reason = Some(r.trim().to_string());
            continue;
        }
        if k.is_empty() || !k.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            return Err(format!("invalid binding name {k:?} in unit(...)"));
        }
        if !crate::sem::units::DIM_NAMES.contains(&v) {
            return Err(format!(
                "unknown dimension {v:?} in unit(...): expected one of {}",
                crate::sem::units::DIM_NAMES.join(", ")
            ));
        }
        bindings.push((k.to_string(), v.to_string()));
    }
    if bindings.is_empty() {
        return Err("unit(...) must bind at least one parameter or `return`".into());
    }
    let Some(reason) = reason else {
        return Err("unit(...) is missing the mandatory `reason = \"...\"` clause".into());
    };
    Ok((bindings, reason))
}

/// Splits on top-level commas, respecting double-quoted strings (with
/// `\"` escapes) so a reason containing a comma stays intact.
fn split_top(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_allow() {
        let (rule, reason) =
            parse_allow(r#"allow(float-literal-eq, reason = "one-hot encoding")"#).unwrap();
        assert_eq!(rule, "float-literal-eq");
        assert_eq!(reason, "one-hot encoding");
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(parse_allow("allow(float-literal-eq)").is_err());
        assert!(parse_allow(r#"allow(float-literal-eq, reason = "")"#).is_err());
        assert!(parse_allow(r#"allow(float-literal-eq, reason = "  ")"#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_allow("deny(x)").is_err());
        assert!(parse_allow(r#"allow(bad rule!, reason = "r")"#).is_err());
    }

    #[test]
    fn parses_well_formed_unit_contract() {
        let (bindings, reason) = parse_unit(
            r#"unit(bandwidth_hz = Hz, snr = GainLinear, return = BitsPerSec, reason = "Shannon rate, Hz × log2(1 + SNR)")"#,
        )
        .unwrap();
        assert_eq!(
            bindings,
            vec![
                ("bandwidth_hz".to_string(), "Hz".to_string()),
                ("snr".to_string(), "GainLinear".to_string()),
                ("return".to_string(), "BitsPerSec".to_string()),
            ]
        );
        assert_eq!(reason, "Shannon rate, Hz × log2(1 + SNR)");
    }

    #[test]
    fn unit_reason_may_contain_commas_and_escapes() {
        let (bindings, reason) = parse_unit(r#"unit(x = Hz, reason = "a, b, and \"c\"")"#).unwrap();
        assert_eq!(bindings.len(), 1);
        assert_eq!(reason, r#"a, b, and \"c\""#);
    }

    #[test]
    fn unit_rejects_unknown_dimension_and_bad_names() {
        assert!(parse_unit(r#"unit(x = Hertz, reason = "r")"#).is_err());
        assert!(parse_unit(r#"unit(x = Unknown, reason = "r")"#).is_err());
        assert!(parse_unit(r#"unit(bad name = Hz, reason = "r")"#).is_err());
        assert!(parse_unit(r#"unit(x: Hz, reason = "r")"#).is_err());
    }

    #[test]
    fn unit_rejects_missing_reason_or_bindings() {
        assert!(parse_unit("unit(x = Hz)").is_err());
        assert!(parse_unit(r#"unit(x = Hz, reason = "")"#).is_err());
        assert!(parse_unit(r#"unit(reason = "r")"#).is_err());
        assert!(parse_unit("unit()").is_err());
    }

    #[test]
    fn split_top_respects_quoted_commas() {
        assert_eq!(split_top(r#"a = Hz, reason = "x, y""#).len(), 2);
        assert_eq!(split_top("a, b, c").len(), 3);
        assert_eq!(split_top("").len(), 1);
    }
}
