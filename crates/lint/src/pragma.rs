//! Inline suppression pragmas.
//!
//! A violation is suppressed by a line comment of the form
//!
//! ```text
//! // rcr-lint: allow(rule-name, reason = "why this site is sound")
//! ```
//!
//! either trailing the offending line or on its own line directly
//! above it. The `reason` is **mandatory**: an `allow` without a
//! non-empty reason is itself a diagnostic (`bad-pragma`), as is an
//! `allow` naming a rule the tool does not know. This keeps every
//! suppression auditable — `grep -rn 'rcr-lint: allow'` is the
//! workspace's exception ledger.

use crate::tokenizer::{TokKind, Token};

/// A parsed, well-formed `allow` pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    pub line: u32,
    /// `true` when the pragma shares its line with code (trailing
    /// form): it then applies to that line; otherwise to the next.
    pub trailing: bool,
}

/// A malformed pragma — reported as a `bad-pragma` diagnostic and
/// never honored as a suppression.
#[derive(Debug, Clone)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

/// Extracts pragmas from the token stream. `code_lines` must report
/// whether a source line holds any non-comment token (to classify
/// trailing vs. standalone pragmas).
pub fn collect(
    tokens: &[Token<'_>],
    has_code_on_line: &dyn Fn(u32) -> bool,
) -> (Vec<Allow>, Vec<BadPragma>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("rcr-lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => allows.push(Allow {
                rule,
                reason,
                line: t.line,
                trailing: has_code_on_line(t.line),
            }),
            Err(message) => bad.push(BadPragma {
                line: t.line,
                message,
            }),
        }
    }
    (allows, bad)
}

/// Parses `allow(<rule>, reason = "...")`; returns `(rule, reason)`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let Some(inner) = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
    else {
        return Err(format!(
            "unrecognized pragma {s:?}: expected `allow(<rule>, reason = \"...\")`"
        ));
    };
    let Some((rule_part, reason_part)) = inner.split_once(',') else {
        return Err("allow(...) is missing the mandatory `reason = \"...\"` clause".into());
    };
    let rule = rule_part.trim().to_string();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return Err(format!("invalid rule name {rule:?} in allow(...)"));
    }
    let reason_part = reason_part.trim();
    let Some(q) = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
    else {
        return Err("allow(...) is missing the mandatory `reason = \"...\"` clause".into());
    };
    let Some(reason) = q.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
        return Err("allow(...) reason must be a double-quoted string".into());
    };
    if reason.trim().is_empty() {
        return Err("allow(...) reason must not be empty".into());
    }
    Ok((rule, reason.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_allow() {
        let (rule, reason) =
            parse_allow(r#"allow(float-literal-eq, reason = "one-hot encoding")"#).unwrap();
        assert_eq!(rule, "float-literal-eq");
        assert_eq!(reason, "one-hot encoding");
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(parse_allow("allow(float-literal-eq)").is_err());
        assert!(parse_allow(r#"allow(float-literal-eq, reason = "")"#).is_err());
        assert!(parse_allow(r#"allow(float-literal-eq, reason = "  ")"#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_allow("deny(x)").is_err());
        assert!(parse_allow(r#"allow(bad rule!, reason = "r")"#).is_err());
    }
}
