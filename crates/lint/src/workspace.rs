//! Workspace discovery and the whole-tree lint run.
//!
//! Crates are found by scanning `crates/*/Cargo.toml` plus the root
//! package; `vendor/` (hermetic shims for external crates) and build
//! output are never linted. Only `src/` trees are scanned — the rules
//! with test exemptions already skip `tests/`, `benches/`, and
//! `examples/`, and the determinism rules care about library code.
//!
//! A full run has two layers:
//!
//! 1. **per-file** — tokenize, lexical rules, semantic extraction;
//!    cacheable by content hash ([`crate::cache`]);
//! 2. **workspace** — build the call graph over all extractions and run
//!    the inter-procedural passes ([`crate::sem::passes`]), then apply
//!    the ratchet baseline ([`crate::baseline`]).
//!
//! `--changed-only` runs layer 1 on files changed vs
//! `git merge-base HEAD main` only. Layer 2 is whole-workspace by
//! nature, so it is *reused* from the cache when no changed file
//! altered its inputs (the semantic extraction), and re-run over a
//! full extraction sweep when one did; outside a git repo the mode
//! falls back to a full scan.

use crate::baseline::{Baseline, STALE_BASELINE};
use crate::cache::{self, Cache};
use crate::diag::Diagnostic;
use crate::engine::{analyze_source, RuleStats};
use crate::rules::registry;
use crate::sem::{passes, FileSem, Graph};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One discovered workspace member.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (e.g. `rcr-qos`).
    pub name: String,
    /// Directory containing the crate's `Cargo.toml`.
    pub dir: PathBuf,
}

/// Knobs for one lint run. `Default` is a full, uncached run with the
/// workspace's committed baseline (when present) applied.
#[derive(Debug, Default)]
pub struct Options {
    /// Persist and reuse the per-file analysis cache under `target/`.
    pub use_cache: bool,
    /// Lexical-only scan of files changed vs `merge-base HEAD main`.
    pub changed_only: bool,
    /// Explicit baseline path; `None` auto-loads
    /// `<root>/lint-baseline.json` when it exists.
    pub baseline_path: Option<PathBuf>,
    /// Skip baseline application, leaving raw semantic findings in the
    /// report (used by `--write-baseline`).
    pub no_baseline: bool,
}

/// The full run's outcome.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule totals for the lexical layer, keyed by slug.
    pub stats: BTreeMap<&'static str, RuleStats>,
    /// Per-rule totals for the semantic passes: `violations` counts
    /// findings that survived the baseline, `suppressed` counts
    /// baselined ones.
    pub sem_stats: BTreeMap<&'static str, RuleStats>,
    pub files_scanned: usize,
    pub crates_scanned: usize,
    /// Call-graph size, for the summary line.
    pub graph_fns: usize,
    pub graph_edges: usize,
    /// Sites removed by semantic allow-pragmas (graph cut points).
    pub sem_cut_sites: usize,
    pub stale_baseline: usize,
    pub cache_hits: usize,
    pub cache_misses: usize,
    /// `true` when the run was restricted to changed files.
    pub changed_only: bool,
    /// `true` when the semantic passes were served from the cache
    /// because no changed file altered the call-graph inputs.
    pub sem_reused: bool,
}

impl Report {
    /// `true` when the workspace is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The CI-visible rule summary: which rules ran, over how many
    /// files, and what they found.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rcr-lint: {} crates, {} files scanned{}\n",
            self.crates_scanned,
            self.files_scanned,
            if self.changed_only {
                " (changed-only: lexical rules on changed files)"
            } else {
                ""
            }
        ));
        for rule in registry() {
            let s = self.stats.get(rule.slug).cloned().unwrap_or_default();
            out.push_str(&format!(
                "  {:<26} {:>3} violation(s), {:>2} suppressed  — {}\n",
                rule.slug, s.violations, s.suppressed, rule.summary
            ));
        }
        let bad = self
            .diagnostics
            .iter()
            .filter(|d| d.rule == crate::rules::BAD_PRAGMA)
            .count();
        if bad > 0 {
            out.push_str(&format!(
                "  {:<26} {:>3} malformed pragma(s)\n",
                "bad-pragma", bad
            ));
        }
        let sem_note = if !self.changed_only {
            ""
        } else if self.sem_reused {
            " (changed-only: semantic passes reused from cache)"
        } else {
            " (changed-only: extraction changed, semantic passes re-run)"
        };
        out.push_str(&format!(
            "  semantic: call graph over {} fns, {} edges; {} pragma cut point(s){}\n",
            self.graph_fns, self.graph_edges, self.sem_cut_sites, sem_note
        ));
        for slug in passes::SEMANTIC_RULES {
            let s = self.sem_stats.get(slug).cloned().unwrap_or_default();
            out.push_str(&format!(
                "  {:<26} {:>3} finding(s), {:>2} baselined\n",
                slug, s.violations, s.suppressed
            ));
        }
        if self.stale_baseline > 0 {
            out.push_str(&format!(
                "  {:<26} {:>3} stale entry(ies) — baseline may only shrink\n",
                STALE_BASELINE, self.stale_baseline
            ));
        }
        if self.cache_hits + self.cache_misses > 0 {
            out.push_str(&format!(
                "  cache: {} hit(s), {} miss(es)\n",
                self.cache_hits, self.cache_misses
            ));
        }
        out
    }
}

/// Walks up from `start` to the workspace root: the first ancestor
/// holding both a `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Discovers lintable workspace members (excludes `vendor/*`).
pub fn discover_crates(root: &Path) -> io::Result<Vec<CrateInfo>> {
    let mut crates = Vec::new();
    if let Some(name) = package_name(&root.join("Cargo.toml"))? {
        crates.push(CrateInfo {
            name,
            dir: root.to_path_buf(),
        });
    }
    let crates_dir = root.join("crates");
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for dir in entries {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        if let Some(name) = package_name(&manifest)? {
            crates.push(CrateInfo { name, dir });
        }
    }
    Ok(crates)
}

/// First `name = "..."` under `[package]` — enough for this workspace's
/// hand-written manifests; no TOML parser needed.
fn package_name(manifest: &Path) -> io::Result<Option<String>> {
    let text = fs::read_to_string(manifest)?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    return Ok(Some(v.to_string()));
                }
            }
        }
    }
    Ok(None)
}

/// Full-default run: every file, no cache, committed baseline applied.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    lint_workspace_with(root, &Options::default())
}

/// Lints every `src/**/*.rs` of every discovered crate, per `opts`.
pub fn lint_workspace_with(root: &Path, opts: &Options) -> io::Result<Report> {
    let crates = discover_crates(root)?;
    let changed = if opts.changed_only {
        changed_files(root)
    } else {
        None
    };
    let mut cache = if opts.use_cache {
        Cache::load(root)
    } else {
        Cache::disabled()
    };
    let mut report = Report {
        crates_scanned: crates.len(),
        changed_only: opts.changed_only && changed.is_some(),
        ..Report::default()
    };
    let mut sems: Vec<FileSem> = Vec::new();
    let mut scanned: Vec<String> = Vec::new();
    // Unchanged files in a changed-only run: scanned for semantic
    // extraction only (no lexical diagnostics) iff a changed file
    // altered the call-graph inputs. `(crate, path, rel, src_dir)`.
    let mut deferred: Vec<(String, PathBuf, String, PathBuf)> = Vec::new();
    let mut sem_changed = false;
    for info in &crates {
        let src_dir = info.dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Some(set) = &changed {
                if !set.contains(&rel) {
                    deferred.push((info.name.clone(), path, rel, src_dir.clone()));
                    continue;
                }
            }
            let source = fs::read_to_string(&path)?;
            let key = cache::content_key(&info.name, &rel, &source);
            let old_sem = cache.cached_sem(&rel);
            let file_report = match cache.get(&rel, key) {
                Some(r) => r,
                None => {
                    let is_root = path
                        .file_name()
                        .is_some_and(|f| f == "lib.rs" || f == "main.rs")
                        && path.parent().is_some_and(|p| p == src_dir);
                    let r = analyze_source(&info.name, &rel, &source, is_root);
                    cache.put(&rel, key, &r);
                    r
                }
            };
            sem_changed |= old_sem.unwrap_or_default() != file_report.sem;
            scanned.push(rel);
            report.files_scanned += 1;
            report.diagnostics.extend(file_report.diagnostics);
            for (slug, s) in file_report.stats {
                let agg = report.stats.entry(slug).or_default();
                agg.violations += s.violations;
                agg.suppressed += s.suppressed;
            }
            report.sem_cut_sites += file_report.sem.cut_panics
                + file_report.sem.cut_taints
                + file_report.sem.cut_risky
                + file_report.sem.cut_time_ops
                + file_report.sem.cut_allocs
                + file_report.sem.cut_reductions
                + file_report.sem.cut_units;
            sems.push(file_report.sem);
        }
    }
    // A changed `.rs` path that no longer exists in the scan set but
    // has a non-trivial cached extraction was deleted: its fns left
    // the graph, so the cached pass results are stale.
    if let Some(set) = &changed {
        for rel in set {
            if rel.ends_with(".rs")
                && !scanned.contains(rel)
                && cache
                    .cached_sem(rel)
                    .is_some_and(|s| s != FileSem::default())
            {
                sem_changed = true;
            }
        }
    }

    if report.changed_only && !sem_changed {
        if let Some((fns, edges, diags)) = cache.load_passes() {
            report.graph_fns = fns;
            report.graph_edges = edges;
            report.sem_reused = true;
            let survivors = apply_baseline(root, opts, diags, &mut report)?;
            report.diagnostics.extend(survivors);
        }
    }
    if !report.sem_reused {
        // Full pass run: extract the deferred (unchanged) files too so
        // the graph covers the whole workspace, then rebuild.
        for (crate_name, path, rel, src_dir) in &deferred {
            let source = fs::read_to_string(path)?;
            let key = cache::content_key(crate_name, rel, &source);
            let file_report = match cache.get(rel, key) {
                Some(r) => r,
                None => {
                    let is_root = path
                        .file_name()
                        .is_some_and(|f| f == "lib.rs" || f == "main.rs")
                        && path.parent().is_some_and(|p| p == *src_dir);
                    let r = analyze_source(crate_name, rel, &source, is_root);
                    cache.put(rel, key, &r);
                    r
                }
            };
            sems.push(file_report.sem);
        }
        let graph = Graph::build(&sems);
        report.graph_fns = graph.fns.len();
        report.graph_edges = graph.callees.iter().map(Vec::len).sum();
        let sem_diags = passes::run_all(&graph);
        cache.store_passes(report.graph_fns, report.graph_edges, &sem_diags);
        let survivors = apply_baseline(root, opts, sem_diags, &mut report)?;
        report.diagnostics.extend(survivors);
    }

    if report.changed_only {
        cache.prune_missing(root);
    } else {
        cache.retain_files(&scanned);
    }
    cache.save();
    report.cache_hits = cache.hits;
    report.cache_misses = cache.misses;
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Applies the governing baseline to pre-baseline pass diagnostics,
/// filling `report.sem_stats`/`stale_baseline`, and returns the
/// surviving diagnostics.
fn apply_baseline(
    root: &Path,
    opts: &Options,
    sem_diags: Vec<Diagnostic>,
    report: &mut Report,
) -> io::Result<Vec<Diagnostic>> {
    let baseline = load_baseline(root, opts)?;
    Ok(match &baseline {
        Some(b) => {
            let pre = count_by_rule(&sem_diags);
            let (survivors, stats) = b.apply(sem_diags, "lint-baseline.json");
            report.stale_baseline = stats.stale;
            let post = count_by_rule(&survivors);
            for slug in passes::SEMANTIC_RULES {
                let before = pre.get(slug).copied().unwrap_or(0);
                let after = post.get(slug).copied().unwrap_or(0);
                report.sem_stats.insert(
                    slug,
                    RuleStats {
                        violations: after,
                        suppressed: before - after,
                    },
                );
            }
            survivors
        }
        None => {
            for slug in passes::SEMANTIC_RULES {
                let count = sem_diags.iter().filter(|d| d.rule == *slug).count();
                report.sem_stats.insert(
                    slug,
                    RuleStats {
                        violations: count,
                        suppressed: 0,
                    },
                );
            }
            sem_diags
        }
    })
}

fn count_by_rule(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_default() += 1;
    }
    counts
}

/// Resolves which baseline (if any) governs this run. An explicit path
/// that fails to load is an error; the implicit workspace baseline is
/// only used when present.
fn load_baseline(root: &Path, opts: &Options) -> io::Result<Option<Baseline>> {
    if opts.no_baseline {
        return Ok(None);
    }
    let path = match &opts.baseline_path {
        Some(p) => p.clone(),
        None => {
            let implicit = root.join("lint-baseline.json");
            if !implicit.is_file() {
                return Ok(None);
            }
            implicit
        }
    };
    Baseline::load(&path)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Files changed vs `merge-base HEAD main` plus untracked files, as
/// workspace-relative paths. `None` when git is unavailable or the
/// repo/branch layout doesn't cooperate — callers fall back to a full
/// scan.
fn changed_files(root: &Path) -> Option<BTreeSet<String>> {
    let git = |args: &[&str]| -> Option<String> {
        let out = Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        Some(String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let base = git(&["merge-base", "HEAD", "main"])?;
    let base = base.trim();
    if base.is_empty() {
        return None;
    }
    let mut set = BTreeSet::new();
    for line in git(&["diff", "--name-only", base])?.lines() {
        if !line.is_empty() {
            set.insert(line.trim().to_string());
        }
    }
    if let Some(untracked) = git(&["ls-files", "--others", "--exclude-standard"]) {
        for line in untracked.lines() {
            if !line.is_empty() {
                set.insert(line.trim().to_string());
            }
        }
    }
    Some(set)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
