//! Workspace discovery and the whole-tree lint run.
//!
//! Crates are found by scanning `crates/*/Cargo.toml` plus the root
//! package; `vendor/` (hermetic shims for external crates) and build
//! output are never linted. Only `src/` trees are scanned — the rules
//! with test exemptions already skip `tests/`, `benches/`, and
//! `examples/`, and the determinism rules care about library code.

use crate::diag::Diagnostic;
use crate::engine::{analyze_source, RuleStats};
use crate::rules::registry;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One discovered workspace member.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (e.g. `rcr-qos`).
    pub name: String,
    /// Directory containing the crate's `Cargo.toml`.
    pub dir: PathBuf,
}

/// The full run's outcome.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule totals across all files, keyed by slug.
    pub stats: BTreeMap<&'static str, RuleStats>,
    pub files_scanned: usize,
    pub crates_scanned: usize,
}

impl Report {
    /// `true` when the workspace is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The CI-visible rule summary: which rules ran, over how many
    /// files, and what they found.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rcr-lint: {} crates, {} files scanned\n",
            self.crates_scanned, self.files_scanned
        ));
        for rule in registry() {
            let s = self.stats.get(rule.slug).cloned().unwrap_or_default();
            out.push_str(&format!(
                "  {:<26} {:>3} violation(s), {:>2} suppressed  — {}\n",
                rule.slug, s.violations, s.suppressed, rule.summary
            ));
        }
        let bad = self
            .diagnostics
            .iter()
            .filter(|d| d.rule == crate::rules::BAD_PRAGMA)
            .count();
        if bad > 0 {
            out.push_str(&format!(
                "  {:<26} {:>3} malformed pragma(s)\n",
                "bad-pragma", bad
            ));
        }
        out
    }
}

/// Walks up from `start` to the workspace root: the first ancestor
/// holding both a `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Discovers lintable workspace members (excludes `vendor/*`).
pub fn discover_crates(root: &Path) -> io::Result<Vec<CrateInfo>> {
    let mut crates = Vec::new();
    if let Some(name) = package_name(&root.join("Cargo.toml"))? {
        crates.push(CrateInfo {
            name,
            dir: root.to_path_buf(),
        });
    }
    let crates_dir = root.join("crates");
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for dir in entries {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        if let Some(name) = package_name(&manifest)? {
            crates.push(CrateInfo { name, dir });
        }
    }
    Ok(crates)
}

/// First `name = "..."` under `[package]` — enough for this workspace's
/// hand-written manifests; no TOML parser needed.
fn package_name(manifest: &Path) -> io::Result<Option<String>> {
    let text = fs::read_to_string(manifest)?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    return Ok(Some(v.to_string()));
                }
            }
        }
    }
    Ok(None)
}

/// Lints every `src/**/*.rs` of every discovered crate.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let crates = discover_crates(root)?;
    let mut report = Report {
        crates_scanned: crates.len(),
        ..Report::default()
    };
    for info in &crates {
        let src_dir = info.dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let source = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let is_root = path
                .file_name()
                .is_some_and(|f| f == "lib.rs" || f == "main.rs")
                && path.parent().is_some_and(|p| p == src_dir);
            let file_report = analyze_source(&info.name, &rel, &source, is_root);
            report.files_scanned += 1;
            report.diagnostics.extend(file_report.diagnostics);
            for (slug, s) in file_report.stats {
                let agg = report.stats.entry(slug).or_default();
                agg.violations += s.violations;
                agg.suppressed += s.suppressed;
            }
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
