//! Minimal JSON reading/writing for the ratchet baseline and the
//! incremental cache.
//!
//! The tool is std-only, so this is a small hand-rolled JSON value
//! model: enough to round-trip the two on-disk artifacts `rcr-lint`
//! owns (`lint-baseline.json`, the per-file analysis cache) and nothing
//! more. Numbers are kept as `f64` — both artifacts only store small
//! integers (lines, hashes serialized as strings), so no precision is
//! lost.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use a `BTreeMap` so serialization is
/// deterministic — cache and baseline files diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_json_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructors used by the cache/baseline writers.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

pub fn n(v: u64) -> Value {
    Value::Num(v as f64)
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Errors carry a byte offset for context.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match b {
        b'n' => expect_lit(bytes, pos, "null", Value::Null),
        b't' => expect_lit(bytes, pos, "true", Value::Bool(true)),
        b'f' => expect_lit(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(src, bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(src, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(src, bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(src, bytes, pos),
        other => Err(format!("unexpected byte {other:#04x} at {pos}")),
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = src
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "short \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogate pairs don't occur in our artifacts;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Copy one UTF-8 char verbatim.
                let ch = src[*pos..]
                    .chars()
                    .next()
                    .ok_or_else(|| "invalid UTF-8".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    src[start..*pos]
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"version":1,"entries":[{"file":"a.rs","line":3,"ok":true},{"file":"b \"q\" \\ rs","note":null}]}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
        let entries = v.get("entries").and_then(Value::as_arr).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[1].get("file").and_then(Value::as_str),
            Some("b \"q\" \\ rs")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""Aµ\n""#).unwrap();
        assert_eq!(v, Value::Str("Aµ\n".into()));
    }
}
